"""Architecture exploration: the design-space questions of §II-C.

Uses the simulator as the paper's designers used their measurement
system — to ask *what if*: how many marker units per cluster, which
partitioning policy, how much does the hypercube's burst absorption
matter.  Prints one table per question.

Run:  python examples/architecture_exploration.py
"""

from dataclasses import replace

from repro.apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from repro.experiments import make_alpha_workload
from repro.machine import MachineConfig, SnapMachine


SENTENCE = sentences()[1]


def mu_count_sweep():
    print("== marker units per cluster (resource sharing, §II-C) ==")
    print(f"{'MUs/cluster':>12}{'PEs':>6}{'parse ms':>10}{'MU util':>9}")
    for mus in (1, 2, 3, 4):
        kb = build_domain_kb(total_nodes=2000)
        config = MachineConfig(num_clusters=16, mus_per_cluster=mus,
                               partition_policy="semantic")
        machine = SnapMachine(kb.network, config)
        parser = MemoryBasedParser(machine, kb)
        result = parser.parse(SENTENCE)
        report = machine.last_report
        print(f"{mus:>12}{config.total_pes:>6}"
              f"{result.mb_time_us / 1e3:>10.2f}"
              f"{report.mu_utilization():>9.2f}")


def partition_policy_sweep():
    print("\n== knowledge-base allocation policy (§II-A) ==")
    print(f"{'policy':>12}{'parse ms':>10}{'messages':>10}{'mean hops':>10}")
    for policy in ("sequential", "round-robin", "semantic"):
        kb = build_domain_kb(total_nodes=2000)
        config = MachineConfig(num_clusters=16, mus_per_cluster=3,
                               partition_policy=policy)
        machine = SnapMachine(kb.network, config)
        parser = MemoryBasedParser(machine, kb, keep_trace=True)
        result = parser.parse(SENTENCE)
        messages = sum(
            r.icn_stats.messages for _p, r in parser.trace_log
        )
        hops = [
            r.icn_stats.mean_hops for _p, r in parser.trace_log
            if r.icn_stats.messages
        ]
        mean_hops = sum(hops) / len(hops) if hops else 0.0
        print(f"{policy:>12}{result.mb_time_us / 1e3:>10.2f}"
              f"{messages:>10}{mean_hops:>10.2f}")


def network_pressure():
    print("\n== interconnect pressure under bursts (Fig. 8 discussion) ==")
    print(f"{'alpha':>7}{'messages':>10}{'peak queue':>11}{'overflows':>10}")
    for alpha in (32, 128, 512):
        workload = make_alpha_workload(alpha, path_length=8)
        config = MachineConfig(num_clusters=16, mus_per_cluster=3)
        machine = SnapMachine(workload.network, config)
        report = machine.run(workload.program)
        peak = max(c["activation_peak"] for c in report.cluster_busy)
        overflows = sum(
            c["activation_overflows"] for c in report.cluster_busy
        )
        print(f"{alpha:>7}{report.icn_stats.messages:>10}"
              f"{peak:>11}{overflows:>10}")


if __name__ == "__main__":
    mu_count_sweep()
    partition_policy_sweep()
    network_pressure()
