"""Newswire NLU: the paper's primary application (§IV / MUC-4).

Builds the "terrorism in Latin America" knowledge base, then parses a
newswire passage with the two-stage parser: the serial phrasal parser
on the controller, and the memory-based parser passing markers through
the array.  Prints, per sentence, the winning event hypothesis, its
cost, the attached auxiliary constituents (time/location), and the
P.P./M.B. timing split of Table IV.

Run:  python examples/newswire_parsing.py [--kb-nodes 5000]
"""

import argparse

from repro.apps.nlu import (
    MemoryBasedParser,
    NEWSWIRE_PASSAGE,
    build_domain_kb,
    extract_template,
)
from repro.machine import SnapMachine, snap1_16cluster


def main():
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--kb-nodes", type=int, default=3000,
                     help="knowledge base size (paper: 5K/9K/12K)")
    cli.add_argument("--sentence", help="parse this sentence instead")
    args = cli.parse_args()

    print(f"building knowledge base ({args.kb_nodes} nodes)...")
    kb = build_domain_kb(total_nodes=args.kb_nodes)
    print(f"  {kb.num_nodes} nodes, {kb.num_links} links, "
          f"{len(kb.cs_roots)} concept sequences "
          f"({len(kb.core_roots)} core)")

    machine = SnapMachine(kb.network, snap1_16cluster())
    parser = MemoryBasedParser(machine, kb)
    sentences = [args.sentence] if args.sentence else list(NEWSWIRE_PASSAGE)

    total_time = 0.0
    for sentence in sentences:
        result = parser.parse(sentence)
        total_time += result.total_time_us
        print(f"\n> {sentence}")
        template = extract_template(result, kb)
        if template is not None:
            for line in template.render().splitlines():
                print(f"  {line}")
        else:
            print("  (no completed hypothesis)")
        losing = [c for c in result.candidates[1:4]]
        if losing:
            shown = ", ".join(f"{n}@{c}" for n, c in losing)
            print(f"  cancelled hypotheses: {shown}"
                  + (" ..." if len(result.candidates) > 4 else ""))
        if result.oov:
            print(f"  out of vocabulary: {', '.join(result.oov)}")
        print(f"  P.P. {result.pp_time_us / 1e3:.2f} ms + "
              f"M.B. {result.mb_time_us / 1e3:.2f} ms  "
              f"({result.instruction_count} SNAP instructions, "
              f"{result.propagation_events} marker propagations)")

    words = sum(len(s.split()) for s in sentences)
    print(f"\npassage: {words} words understood in "
          f"{total_time / 1e6:.3f} s simulated time "
          f"({words / (total_time / 1e6):.0f} words/s — the paper's "
          f"'faster than a human can read them')")


if __name__ == "__main__":
    main()
