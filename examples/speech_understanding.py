"""Speech understanding: the PASS-style workload (β-parallelism demo).

Synthesizes word lattices — competing recognition hypotheses per time
slot with acoustic costs — and lets the array evaluate all
alternatives of each slot in parallel against the concept-sequence
knowledge base.  Each slot's alternatives are marker-independent, so
the controller overlaps their propagations: this is where the paper's
higher speech-workload β (2.8–6 for PASS vs 2.3–5 for DMSNAP) comes
from.

Run:  python examples/speech_understanding.py
"""

from repro.apps import SpeechParser, synthesize_lattice
from repro.apps.nlu import build_domain_kb
from repro.machine import SnapMachine, snap1_16cluster

UTTERANCES = (
    "terrorists attacked the mayor in bogota",
    "guerrillas bombed the embassy",
    "soldiers reported the casualties in the city",
    "unidentified men kidnapped the judge yesterday",
)


def main():
    kb = build_domain_kb(total_nodes=3000)
    machine = SnapMachine(kb.network, snap1_16cluster())
    parser = SpeechParser(machine, kb)

    for utterance in UTTERANCES:
        lattice = synthesize_lattice(utterance, confusability=0.9)
        result = parser.understand(lattice)
        print(f"\nreference : {utterance}")
        noisy = [
            "/".join(h.word for h in slot) for slot in lattice.slots
        ]
        print(f"lattice   : {' '.join(noisy)}")
        print(f"meaning   : {result.winner}  (cost {result.cost})")
        runners = result.candidates[1:3]
        if runners:
            print(f"rejected  : "
                  + ", ".join(f"{n}@{c}" for n, c in runners))
        print(f"measured  : {result.time_us / 1e3:.2f} ms simulated, "
              f"{result.instruction_count} instructions, "
              f"beta max {result.beta_max:.0f} / "
              f"mean {result.beta_mean:.2f} "
              f"(lattice branching {lattice.mean_branching:.1f})")


if __name__ == "__main__":
    main()
