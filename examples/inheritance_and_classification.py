"""Basic inferencing: property inheritance and concept classification.

The two knowledge-processing operations the paper used to validate the
instruction set (§II-B) and to compare against the CM-2 (Fig. 15).
Runs root-to-leaf inheritance across machine models and answers
classification queries by marker intersection.

Run:  python examples/inheritance_and_classification.py
"""

from repro.apps import (
    classify,
    inheritance_program,
    install_property,
    property_lookup_program,
)
from repro.baselines import SerialMachine, SimdMachine
from repro.machine import SnapMachine, snap1_full
from repro.network import generate_hierarchy_kb


def inheritance_demo():
    print("== property inheritance (Fig. 15 workload) ==")
    for nodes in (400, 1600, 6400):
        snap = SnapMachine(generate_hierarchy_kb(nodes), snap1_full())
        snap_report = snap.run(inheritance_program())
        simd = SimdMachine(generate_hierarchy_kb(nodes))
        simd_report = simd.run(inheritance_program())
        inherited = len(snap_report.results()[-1])
        print(f"  {nodes:>5} nodes: {inherited} concepts inherit "
              f"4 attributes | SNAP-1 {snap_report.total_time_us/1e3:8.2f} ms"
              f" | CM-2 {simd_report.total_time_us/1e6:6.2f} s")


def lookup_demo():
    print("\n== inherited-property lookup ==")
    network = generate_hierarchy_kb(500, properties_at_root=2)
    queries = (("c123", "attr0"), ("c123", "nothing"))
    for _concept, prop in queries:
        network.ensure_node(f"p:{prop}")
    machine = SerialMachine(network)
    for concept, prop in queries:
        report = machine.run(property_lookup_program(concept, prop))
        has = bool(report.results()[-1])
        print(f"  does {concept} inherit {prop!r}?  {has}")


def classification_demo():
    print("\n== concept classification by property intersection ==")
    network = generate_hierarchy_kb(500, properties_at_root=0)
    # The root's four children are c1..c4; give them distinguishable
    # properties that their subtrees inherit.
    install_property(network, "c1", "armed")
    install_property(network, "c2", "armed")
    install_property(network, "c1", "mobile")
    install_property(network, "c3", "mobile")
    machine = SnapMachine(network, snap1_full())
    for query in (["armed"], ["mobile"], ["armed", "mobile"]):
        result = classify(machine, query)
        roots = [m for m in result.matches if m in ("c1", "c2", "c3", "c4")]
        print(f"  properties {query}: {len(result.matches)} concepts "
              f"(subtree roots: {roots}) in "
              f"{result.time_us / 1e3:.2f} ms simulated")


if __name__ == "__main__":
    inheritance_demo()
    lookup_demo()
    classification_demo()
