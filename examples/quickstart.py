"""Quickstart: the paper's Fig. 1/Fig. 5 example on a simulated SNAP-1.

Builds the *seeing-event* mini knowledge base, assembles a
marker-propagation program in the Table II instruction set, runs it on
the full 144-PE machine simulator, and prints the results plus the
measurement report.

Run:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.machine import SnapMachine, snap1_full
from repro.network import KnowledgeBaseBuilder


def build_knowledge_base():
    """Fig. 1: words, syntax/semantic classes, one concept sequence."""
    builder = KnowledgeBaseBuilder()
    builder.add_class("animate", ["thing"])
    builder.add_syntax_class("noun-phrase")
    builder.add_syntax_class("verb-phrase")
    builder.add_word("we", ["animate", "noun-phrase"])
    builder.add_word("saw", ["verb-phrase"])
    builder.add_concept_sequence(
        "seeing-event",
        [
            ("experiencer", ["animate", "noun-phrase"]),
            ("see", ["verb-phrase"]),
            ("object", ["thing"]),
        ],
        cost=1.0,
    )
    return builder.build(physical=False)


#: A Fig. 5-style program: configure markers, propagate in parallel,
#: intersect, retrieve.  m1/m2 are set by the controller; m3/m4 travel
#: through the network; m5 holds the intersection.
PROGRAM = """
SEARCH-NODE w:we m1 0.0
SEARCH-NODE w:saw m2 0.0
PROPAGATE m1 m3 spread(is-a,last) add-weight     ; climb is-a, jump last
PROPAGATE m2 m4 chain(is-a) add-weight           ; overlaps with the above
OR-MARKER m3 m4 m5 add
COLLECT-NODE m5
"""


def main():
    network = build_knowledge_base()
    print(f"knowledge base: {network.num_nodes} nodes, "
          f"{network.num_links} links")

    machine = SnapMachine(network, snap1_full())
    print(f"machine: {machine.num_clusters} clusters, "
          f"{machine.total_pes} processing elements")

    report = machine.run(assemble(PROGRAM))

    print("\nnodes reached by the markers (COLLECT-NODE m5):")
    for _gid, name in report.results()[-1]:
        print(f"  {name}")

    print(f"\nsimulated execution time: {report.total_time_us:.1f} us")
    print(f"instructions executed: {len(report.traces)}")
    print(f"cross-cluster activation messages: {report.icn_stats.messages}")
    print("per-instruction latency:")
    for trace in report.traces:
        print(f"  {trace.opcode:<14} {trace.latency:8.1f} us "
              f"(alpha={trace.alpha})")


if __name__ == "__main__":
    main()
