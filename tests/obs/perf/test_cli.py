"""``python -m repro perf`` CLI: profile artifacts and check gating."""

import json

import pytest

from repro.obs.perf.cli import main
from repro.obs.perf.history import HISTORY_KIND

from .test_history import history, make_record


def write_history(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


NOISE_RATES = [100_000, 98_500, 103_000, 101_000, 97_000, 102_000]


class TestPerfProfile:
    def test_profile_emits_folded_report_and_json(self, tmp_path, capsys):
        folded = tmp_path / "propagate.folded"
        report = tmp_path / "propagate.md"
        record = tmp_path / "propagate.json"
        code = main([
            "profile", "propagate", "--smoke", "--hz", "797",
            "--folded-out", str(folded),
            "--report", str(report),
            "--json", str(record),
        ])
        assert code == 0
        # Folded stacks: every line is "frame;frame;... count".
        for line in folded.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert stack
        text = report.read_text()
        assert "# Wall-clock profile — propagate --smoke" in text
        assert "## Subsystem rollup" in text
        document = json.loads(record.read_text())
        assert document["kind"] == "repro-perf-profile"
        assert document["workload"] == "propagate"
        assert document["lane"]["events"] > 0
        printed = capsys.readouterr().out
        assert str(folded) in printed

    def test_profile_propagate_vec_rolls_up_backends_bucket(
        self, tmp_path
    ):
        """The acceptance check: the propagate-vec lane's wall time
        lands in the repro.core.backends bucket (the propagation
        kernels), visible in the rollup's top buckets."""
        record = tmp_path / "pv.json"
        code = main([
            "profile", "propagate-vec", "--smoke", "--hz", "797",
            "--json", str(record),
        ])
        assert code == 0
        document = json.loads(record.read_text())
        top = [row["bucket"] for row in document["buckets"][:3]]
        assert "repro.core.backends" in top

    def test_trace_join_section_present_on_des_lane(self, tmp_path):
        report = tmp_path / "p.md"
        code = main([
            "profile", "propagate", "--smoke", "--hz", "397",
            "--trace-join", "--report", str(report),
        ])
        assert code == 0
        text = report.read_text()
        assert "## Wall vs simulated time" in text
        assert "PROPAGATE" in text

    def test_report_prints_to_stdout_by_default(self, capsys):
        assert main(["profile", "dispatch", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "# Wall-clock profile — dispatch --smoke" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "no-such-lane"])


class TestPerfCheck:
    def test_noise_history_passes(self, tmp_path, capsys):
        path = write_history(
            tmp_path / "h.jsonl", history(NOISE_RATES, newest_rate=101_000)
        )
        assert main(["check", "--history", path]) == 0
        out = capsys.readouterr().out
        assert "noise" in out
        assert "perf check: ok" in out

    def test_injected_regression_fails(self, tmp_path, capsys):
        path = write_history(
            tmp_path / "h.jsonl", history(NOISE_RATES, newest_rate=65_000)
        )
        assert main(["check", "--history", path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "regression detected" in out

    def test_check_writes_json_verdicts(self, tmp_path):
        path = write_history(
            tmp_path / "h.jsonl", history(NOISE_RATES, newest_rate=65_000)
        )
        out = tmp_path / "check.json"
        assert main(["check", "--history", path, "--json", str(out)]) == 1
        document = json.loads(out.read_text())
        assert document["kind"] == "repro-perf-check"
        assert document["ok"] is False
        assert document["lanes"][0]["verdict"] == "regression"

    def test_bootstrap_band_selectable(self, tmp_path):
        path = write_history(
            tmp_path / "h.jsonl", history(NOISE_RATES, newest_rate=65_000)
        )
        assert main(["check", "--history", path, "--band", "bootstrap"]) == 1

    def test_missing_history_exits_2(self, tmp_path, capsys):
        code = main(["check", "--history", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "no history" in capsys.readouterr().err

    def test_malformed_history_exits_2(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text("{broken\n")
        assert main(["check", "--history", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_insufficient_history_is_ok(self, tmp_path, capsys):
        path = write_history(
            tmp_path / "h.jsonl",
            [make_record(rate=100_000), make_record(rate=40_000)],
        )
        assert main(["check", "--history", path]) == 0
        assert "insufficient-history" in capsys.readouterr().out

    def test_empty_history_is_ok(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\n")
        assert main(["check", "--history", str(path)]) == 0
        assert "no lane records" in capsys.readouterr().out


class TestGoldenFixture:
    """The checked-in noise fixture CI gates with must stay green."""

    def test_goldens_noise_fixture_passes(self):
        import pathlib

        fixture = (
            pathlib.Path(__file__).resolve().parents[3]
            / "goldens" / "perf" / "history-noise.jsonl"
        )
        assert fixture.exists()
        assert main(["check", "--history", str(fixture)]) == 0

    def test_goldens_fixture_records_are_history_kind(self):
        import pathlib

        fixture = (
            pathlib.Path(__file__).resolve().parents[3]
            / "goldens" / "perf" / "history-noise.jsonl"
        )
        for line in fixture.read_text().splitlines():
            assert json.loads(line)["kind"] == HISTORY_KIND
