"""Sampling profiler: sampler lifecycle, folded stacks, rollups, join."""

import time

import pytest

from repro.obs.perf.profiler import (
    Profile,
    SamplingProfiler,
    bucket_of,
    frame_label,
    module_of,
    normalize_phase,
    wall_simulated_join,
)


def _burn(seconds: float) -> int:
    """Pure-Python busy loop the sampler can catch in the act."""
    deadline = time.perf_counter() + seconds
    count = 0
    while time.perf_counter() < deadline:
        count += sum(range(50))
    return count


def _profile(samples):
    total = sum(samples.values())
    return Profile(
        samples=dict(samples), sample_count=total,
        duration_s=float(total) / 100.0, hz=100.0,
    )


class TestModuleResolution:
    def test_repro_source_path(self):
        assert (
            module_of("/root/repo/src/repro/core/backends.py")
            == "repro.core.backends"
        )

    def test_package_init_collapses_to_package(self):
        assert module_of("/x/src/repro/obs/__init__.py") == "repro.obs"

    def test_site_packages_path(self):
        path = "/usr/lib/python3.11/site-packages/numpy/core/numeric.py"
        assert module_of(path) == "numpy.core.numeric"

    def test_stdlib_falls_back_to_basename(self):
        assert module_of("/usr/lib/python3.11/threading.py") == "threading"

    def test_frame_label_joins_module_and_function(self):
        label = frame_label("/x/src/repro/machine/des.py", "run")
        assert label == "repro.machine.des:run"


class TestBuckets:
    @pytest.mark.parametrize("label, bucket", [
        ("repro.core.backends:propagate", "repro.core.backends"),
        ("repro.core.engine:execute", "repro.core"),
        ("repro.machine.des:run", "repro.machine.des"),
        ("repro.machine.simulator:_deliver", "repro.machine"),
        ("repro.host.host:serve", "repro.host"),
        ("repro.bench:bench_propagate", "repro"),
        ("numpy.core.numeric:dot", "numpy"),
        ("threading:wait", "other"),
    ])
    def test_longest_prefix_wins(self, label, bucket):
        assert bucket_of(label) == bucket


class TestFoldedStacks:
    def test_format_and_determinism(self):
        profile = _profile({
            ("a:f", "b:g"): 3,
            ("a:f",): 2,
            ("a:f", "b:g", "c:h"): 1,
        })
        assert profile.folded() == (
            "a:f 2\n"
            "a:f;b:g 3\n"
            "a:f;b:g;c:h 1\n"
        )

    def test_empty_profile_folds_to_empty_string(self):
        assert Profile().folded() == ""

    def test_every_line_parses_as_stack_and_count(self):
        profile = _profile({("m:f", "m:g"): 4, ("m:f",): 1})
        for line in profile.folded().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert all(";" not in frame for frame in stack.split(";"))


class TestCounts:
    def test_exclusive_counts_leaves_only(self):
        profile = _profile({("a:f", "b:g"): 3, ("a:f",): 2})
        assert profile.exclusive_counts() == {"b:g": 3, "a:f": 2}

    def test_inclusive_counts_anywhere_on_stack(self):
        profile = _profile({("a:f", "b:g"): 3, ("a:f",): 2})
        assert profile.inclusive_counts() == {"a:f": 5, "b:g": 3}

    def test_recursive_frames_count_once_per_sample(self):
        profile = _profile({("a:f", "a:f", "a:f"): 4})
        assert profile.inclusive_counts() == {"a:f": 4}
        assert profile.inclusive_counts()["a:f"] <= profile.sample_count

    def test_bucket_rollup_sorted_by_exclusive(self):
        profile = _profile({
            ("repro.bench:main", "repro.core.backends:propagate"): 5,
            ("repro.bench:main", "repro.core.engine:execute"): 2,
        })
        rollup = profile.bucket_rollup()
        assert rollup[0]["bucket"] == "repro.core.backends"
        assert rollup[0]["exclusive"] == 5
        assert rollup[0]["inclusive"] == 5
        # The bench frame is on every stack, so its bucket is fully
        # inclusive but has no exclusive samples.
        repro_row = next(r for r in rollup if r["bucket"] == "repro")
        assert repro_row["exclusive"] == 0
        assert repro_row["inclusive"] == 7


class TestReport:
    def test_report_structure(self):
        profile = _profile({("repro.core.backends:propagate",): 10})
        text = profile.report(label="unit")
        assert "# Wall-clock profile — unit" in text
        assert "## Subsystem rollup" in text
        assert "## Hottest frames" in text
        assert "repro.core.backends" in text

    def test_empty_profile_report(self):
        text = Profile().report(label="empty")
        assert "no samples captured" in text

    def test_join_section_rendered_when_rows_given(self):
        profile = _profile({("repro.core.backends:propagate",): 10})
        rows = wall_simulated_join(profile, {"PROPAGATE #1": 100.0})
        text = profile.report(label="unit", join_rows=rows)
        assert "## Wall vs simulated time" in text
        assert "PROPAGATE" in text

    def test_as_dict_round_trips_to_json_types(self):
        import json

        profile = _profile({("a:f",): 1})
        record = profile.as_dict()
        assert record["kind"] == "repro-perf-profile"
        json.dumps(record)  # must be JSON-serializable


class TestSamplerLifecycle:
    def test_samples_a_busy_loop(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        _burn(0.25)
        profile = profiler.stop()
        assert profile.sample_count > 0
        assert profile.duration_s >= 0.2
        labels = set()
        for stack in profile.samples:
            labels.update(stack)
        assert any("_burn" in label for label in labels)

    def test_start_is_idempotent(self):
        profiler = SamplingProfiler(hz=500)
        assert profiler.start() is profiler
        assert profiler.start() is profiler  # no second thread
        _burn(0.05)
        profile = profiler.stop()
        assert profile.sample_count >= 0
        assert not profiler.running

    def test_stop_without_start_returns_empty_profile(self):
        profile = SamplingProfiler().stop()
        assert profile.sample_count == 0
        assert profile.folded() == ""

    def test_stop_twice_is_safe_and_stable(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        _burn(0.05)
        first = profiler.stop()
        second = profiler.stop()
        assert second.sample_count == first.sample_count
        assert second.duration_s == first.duration_s

    def test_context_manager(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            assert profiler.running
            _burn(0.05)
        assert not profiler.running

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestWallSimulatedJoin:
    def test_join_attributes_wall_to_matching_phases(self):
        profile = _profile({
            ("repro.bench:main", "repro.core.backends:propagate"): 8,
            ("repro.bench:main", "repro.core.engine:collect"): 2,
        })
        rows = wall_simulated_join(
            profile, {"PROPAGATE #3": 300.0, "COLLECT-NODE #4": 700.0}
        )
        by_phase = {row["phase"]: row for row in rows}
        # Sorted by simulated duration, descending.
        assert rows[0]["phase"] == "COLLECT-NODE"
        assert by_phase["PROPAGATE"]["simulated_share"] == 0.3
        assert by_phase["PROPAGATE"]["wall_share"] == 0.8
        assert by_phase["PROPAGATE"]["wall_s"] == pytest.approx(
            0.8 * profile.duration_s
        )

    def test_phase_with_no_matching_frames_reports_zero_wall(self):
        profile = _profile({("repro.core.backends:propagate",): 5})
        rows = wall_simulated_join(profile, {"dma": 100.0})
        assert rows[0]["wall_share"] == 0.0

    def test_empty_phase_table_yields_no_rows(self):
        assert wall_simulated_join(_profile({("a:f",): 1}), {}) == []

    def test_normalize_phase_strips_instance_suffix(self):
        assert normalize_phase("PROPAGATE #12") == "propagate"
        assert normalize_phase("des.run") == "desrun"
