"""Bench history + regression detector: fixtures, flags, invariance."""

import json
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.perf.history import (
    HISTORY_KIND,
    append_history,
    check_history,
    check_lane,
    environment_fingerprint,
    load_history,
    record_rate,
    records_from_bench,
)


def make_record(
    lane="propagate",
    rate=100_000.0,
    runs=4,
    events_per_run=2_500.0,
    unreliable=False,
    smoke=True,
    backend=None,
):
    """A history record whose median-of-runs rate is exactly ``rate``."""
    wall = events_per_run / rate
    walls = [wall] * runs
    return {
        "kind": HISTORY_KIND,
        "lane": lane,
        "events": events_per_run * runs,
        "runs": runs,
        "events_per_sec": rate,
        "wall_s": sum(walls),
        "wall_runs": walls,
        "wall_median_s": wall,
        "unreliable": unreliable,
        "smoke": smoke,
        "backend": backend,
        "environment": {"python": "3.11.7", "cpu_count": 4},
    }


def history(rates, newest_rate, **kwargs):
    records = [make_record(rate=rate) for rate in rates]
    records.append(make_record(rate=newest_rate, **kwargs))
    return records


NOISE_RATES = [100_000, 98_500, 103_000, 101_000, 97_000, 102_000]


class TestEnvironmentFingerprint:
    def test_fields(self):
        env = environment_fingerprint(backend="vectorized", smoke=True)
        assert env["backend"] == "vectorized"
        assert env["smoke"] is True
        assert isinstance(env["python"], str)
        assert env["cpu_count"] is None or env["cpu_count"] >= 1
        # Inside this repo's checkout the sha resolves; elsewhere None.
        assert env["git_sha"] is None or len(env["git_sha"]) == 40


class TestRecordsFromBench:
    def bench_record(self):
        return {
            "bench": "snap1-hot-path",
            "smoke": True,
            "backend": None,
            "environment": {"python": "3.11.7"},
            "workloads": {
                "propagate": {
                    "events": 100, "runs": 4, "wall_s": 0.5,
                    "events_per_sec": 200.0, "wall_runs": [0.1, 0.4],
                    "wall_median_s": 0.25,
                },
                "overload": {
                    "events": 50, "wall_s": 0.1, "events_per_sec": 500.0,
                    "unreliable": True,
                },
            },
        }

    def test_one_record_per_lane_with_environment(self):
        rows = records_from_bench(self.bench_record())
        assert {row["lane"] for row in rows} == {"propagate", "overload"}
        for row in rows:
            assert row["kind"] == HISTORY_KIND
            assert row["environment"]["python"] == "3.11.7"
            assert row["smoke"] is True
        by_lane = {row["lane"]: row for row in rows}
        assert by_lane["propagate"]["wall_runs"] == [0.1, 0.4]
        assert by_lane["overload"]["unreliable"] is True
        assert by_lane["propagate"]["unreliable"] is False

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        assert append_history(self.bench_record(), str(path)) == 2
        assert append_history(self.bench_record(), str(path)) == 2
        records = load_history(str(path))
        assert len(records) == 4
        assert records[0]["lane"] == "propagate"

    def test_load_skips_blanks_and_foreign_kinds(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            "\n"
            + json.dumps({"kind": "something-else"}) + "\n"
            + json.dumps(make_record()) + "\n"
        )
        records = load_history(str(path))
        assert len(records) == 1

    def test_load_raises_on_malformed_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="history.jsonl:1"):
            load_history(str(path))


class TestRecordRate:
    def test_median_of_runs_preferred(self):
        record = make_record(rate=100_000.0, runs=5)
        # One catastrophically slow run must not move the rate: the
        # median per-run wall is unchanged.
        record["wall_runs"] = list(record["wall_runs"])
        record["wall_runs"][0] *= 50
        assert record_rate(record) == pytest.approx(100_000.0)

    def test_falls_back_to_aggregate_rate(self):
        assert record_rate({"events_per_sec": 42.0}) == 42.0
        assert record_rate({}) == 0.0


class TestDetectorVerdicts:
    def test_injected_regression_detected(self):
        records = history(NOISE_RATES, newest_rate=65_000)  # -35%
        check = check_lane(records)
        assert check.verdict == "regression"
        assert check.gating
        assert check.change < -0.30

    def test_improvement_detected_and_not_gating(self):
        records = history(NOISE_RATES, newest_rate=140_000)
        check = check_lane(records)
        assert check.verdict == "improvement"
        assert not check.gating

    def test_pure_noise_passes(self):
        records = history(NOISE_RATES, newest_rate=101_500)
        check = check_lane(records)
        assert check.verdict == "noise"
        assert not check.gating

    def test_bootstrap_band_agrees_on_clear_cases(self):
        assert check_lane(
            history(NOISE_RATES, newest_rate=65_000), band="bootstrap"
        ).verdict == "regression"
        assert check_lane(
            history(NOISE_RATES, newest_rate=101_500), band="bootstrap"
        ).verdict == "noise"

    def test_insufficient_history(self):
        records = history(NOISE_RATES[:2], newest_rate=50_000)
        check = check_lane(records)
        assert check.verdict == "insufficient-history"
        assert not check.gating

    def test_unreliable_newest_not_gated(self):
        records = history(NOISE_RATES, newest_rate=10_000, unreliable=True)
        check = check_lane(records)
        assert check.verdict == "unreliable"
        assert not check.gating

    def test_unreliable_window_records_excluded(self):
        records = [make_record(rate=1.0, unreliable=True)] * 5
        records += history(NOISE_RATES, newest_rate=101_000)
        check = check_lane(records)
        assert check.verdict == "noise"
        assert check.window == len(NOISE_RATES)

    def test_mismatched_shape_records_excluded(self):
        # Full-size history must not judge a smoke run (and vice versa).
        records = [make_record(rate=r, smoke=False) for r in NOISE_RATES]
        records.append(make_record(rate=50_000, smoke=True))
        check = check_lane(records)
        assert check.verdict == "insufficient-history"

    def test_window_limits_trailing_records(self):
        # Ancient fast records outside the window must not drag the
        # baseline up.
        records = [make_record(rate=1_000_000.0)] * 10
        records += history(NOISE_RATES, newest_rate=99_000)
        check = check_lane(records, window=len(NOISE_RATES))
        assert check.verdict == "noise"

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            check_lane(history(NOISE_RATES, newest_rate=1.0), band="vibes")


class TestCheckHistory:
    def test_groups_lanes_and_reports_overall_ok(self):
        records = []
        for rate in NOISE_RATES + [101_000]:
            records.append(make_record(lane="propagate", rate=rate))
        for rate in NOISE_RATES + [60_000]:
            records.append(make_record(lane="overload", rate=rate))
        ok, checks = check_history(records)
        assert not ok
        by_lane = {check.lane: check for check in checks}
        assert by_lane["propagate"].verdict == "noise"
        assert by_lane["overload"].verdict == "regression"

    def test_all_noise_is_ok(self):
        records = [
            make_record(lane=lane, rate=rate)
            for lane in ("a", "b")
            for rate in NOISE_RATES + [100_500]
        ]
        ok, checks = check_history(records)
        assert ok
        assert all(check.verdict == "noise" for check in checks)

    def test_empty_history_is_ok_with_no_checks(self):
        ok, checks = check_history([])
        assert ok
        assert checks == []


class TestOrderInvariance:
    """Permuting the trailing window can never change a verdict."""

    @settings(max_examples=60, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=50_000, max_value=200_000),
            min_size=3, max_size=8,
        ),
        newest=st.floats(min_value=10_000, max_value=400_000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        band=st.sampled_from(["mad", "bootstrap"]),
    )
    def test_window_permutation_preserves_verdict(
        self, rates, newest, seed, band
    ):
        import random

        baseline = history(rates, newest_rate=newest)
        shuffled_window = baseline[:-1]
        random.Random(seed).shuffle(shuffled_window)
        permuted = shuffled_window + [baseline[-1]]
        original = check_lane(baseline, band=band)
        reordered = check_lane(permuted, band=band)
        assert original.verdict == reordered.verdict
        assert original.baseline_rate == reordered.baseline_rate
        assert original.allowed == reordered.allowed

    @settings(max_examples=30, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=50_000, max_value=200_000),
            min_size=4, max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_per_run_wall_permutation_preserves_rate(self, rates, seed):
        import random

        record = make_record(rate=100_000.0, runs=len(rates))
        record["wall_runs"] = [2_500.0 / rate for rate in rates]
        shuffled = dict(record)
        shuffled["wall_runs"] = list(record["wall_runs"])
        random.Random(seed).shuffle(shuffled["wall_runs"])
        assert record_rate(shuffled) == pytest.approx(record_rate(record))


class TestStatisticalSanity:
    def test_mad_band_widens_with_noisier_windows(self):
        tight = history([100_000 + d for d in (-500, 0, 500, -250, 250)],
                        newest_rate=100_000)
        loose = history([100_000 + d for d in
                         (-15_000, 0, 15_000, -8_000, 8_000)],
                        newest_rate=100_000)
        assert (
            check_lane(loose).allowed > check_lane(tight).allowed
        )

    def test_rel_floor_is_a_floor(self):
        # A perfectly quiet window still allows the relative floor.
        records = history([100_000.0] * 5, newest_rate=95_000)
        check = check_lane(records, rel_floor=0.10)
        assert check.verdict == "noise"
        assert check.allowed == pytest.approx(0.10)

    def test_baseline_is_window_median(self):
        records = history(NOISE_RATES, newest_rate=100_000)
        check = check_lane(records)
        assert check.baseline_rate == pytest.approx(
            statistics.median(NOISE_RATES)
        )
