"""Tests for trace ingestion (`repro.obs.analyze.reader`)."""

import pytest

from repro.obs.analyze import TraceModel, from_tracer, read_document
from repro.obs.chrome import export_chrome_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.obs.validate import TraceValidationError


def _nested_capture():
    tracer = Tracer()
    track = tracer.track("host", "replica 00")
    tracer.span(track, "outer", 0.0, 100.0)      # 0..100
    tracer.span(track, "inner-a", 10.0, 30.0)    # 10..40
    tracer.span(track, "inner-b", 50.0, 40.0)    # 50..90
    tracer.span(track, "leaf", 20.0, 10.0)       # 20..30
    tracer.instant(track, "ping", 55.0, n=1)
    tracer.counter(track, "depth", 5.0, 1)
    tracer.counter(track, "depth", 60.0, 2)
    return tracer


class TestReader:
    def test_forest_nesting_by_containment(self):
        model = read_document(export_chrome_json(_nested_capture()))
        track = model.track("host", "replica 00")
        assert track is not None
        (outer,) = track.spans
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        assert outer.self_time_us() == pytest.approx(30.0)

    def test_instants_and_counters(self):
        model = read_document(export_chrome_json(_nested_capture()))
        track = model.track("host", "replica 00")
        assert [(i.name, i.ts_us) for i in track.instants] == [("ping", 55.0)]
        assert track.counters["depth"] == [(5.0, 1), (60.0, 2)]

    def test_multi_series_counters_split(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.counter(track, "occupancy", 1.0, {"busy": 2, "idle": 3})
        model = read_document(export_chrome_json(tracer))
        counters = model.track("p", "t").counters
        assert counters == {
            "occupancy.busy": [(1.0, 2)],
            "occupancy.idle": [(1.0, 3)],
        }

    def test_model_accessors(self):
        tracer = _nested_capture()
        other = tracer.track("queries", "query 00001")
        tracer.span(other, "query 1", 0.0, 10.0)
        model = read_document(export_chrome_json(tracer))
        assert model.processes() == ["host", "queries"]
        assert [t.thread for t in model.tracks_of("host")] == ["replica 00"]
        assert model.end_us == pytest.approx(100.0)
        assert model.num_spans == 5

    def test_metrics_and_capture_ride_along(self):
        metrics = MetricsRegistry()
        metrics.counter("host.queries").inc(3)
        document = export_chrome_json(_nested_capture(), metrics=metrics)
        document["capture"] = {"workload": "unit"}
        model = read_document(document)
        assert model.metrics["counters"]["host.queries"] == 3
        assert model.capture == {"workload": "unit"}

    def test_from_tracer_marks_open_spans(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.begin(track, "unfinished", 1.0)
        tracer.instant(track, "later", 9.0)
        model = from_tracer(tracer)
        (span,) = model.track("p", "t").spans
        assert span.open_at_eof
        assert span.end_us == pytest.approx(9.0)

    def test_invalid_document_raises_validation_error(self):
        bad = [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1,
                "dur": 2}]
        with pytest.raises(TraceValidationError):
            read_document(bad)

    def test_bare_array_and_unnamed_tracks(self):
        events = [
            {"ph": "X", "name": "a", "pid": 7, "tid": 3, "ts": 0,
             "dur": 5, "args": {}},
        ]
        model = read_document(events)
        assert isinstance(model, TraceModel)
        (track,) = model.tracks
        assert (track.process, track.thread) == ("pid 7", "tid 3")
