"""Tests for critical-path extraction (`repro.obs.analyze.critpath`).

The load-bearing invariant (also a hypothesis property here): the
segments exactly partition the root interval — no overlaps, no holes —
so the path duration equals the root duration and can never exceed it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.analyze import (
    Span,
    critical_path,
    path_duration_us,
    summarize_path,
)


def _span(name, start, end, children=()):
    return Span(name, start, end, children=list(children))


class TestKnownPaths:
    def test_leaf_span_is_its_own_path(self):
        (segment,) = critical_path(_span("root", 0.0, 10.0))
        assert (segment.name, segment.start_us, segment.end_us) == \
            ("root", 0.0, 10.0)

    def test_latest_ending_child_wins(self):
        # Two children; the later-ending one determined the end time.
        root = _span("root", 0.0, 100.0, [
            _span("short", 5.0, 20.0),
            _span("long", 10.0, 80.0),
        ])
        segments = critical_path(root)
        assert [(s.name, s.start_us, s.end_us) for s in segments] == [
            ("root", 0.0, 5.0),      # before any child ran
            ("short", 5.0, 10.0),    # waiting on `short` until `long` took over
            ("long", 10.0, 80.0),
            ("root", 80.0, 100.0),   # tail after the last child
        ]
        # `short`'s overlap with `long` is credited to `long` (it ends later).
        assert path_duration_us(segments) == pytest.approx(100.0)

    def test_sequential_children_chain(self):
        root = _span("root", 0.0, 30.0, [
            _span("a", 0.0, 10.0),
            _span("b", 10.0, 30.0),
        ])
        assert [(s.name, s.start_us, s.end_us)
                for s in critical_path(root)] == [
            ("a", 0.0, 10.0), ("b", 10.0, 30.0),
        ]

    def test_recursion_descends_into_on_path_child(self):
        root = _span("root", 0.0, 50.0, [
            _span("child", 10.0, 40.0, [_span("grand", 30.0, 40.0)]),
        ])
        segments = critical_path(root)
        assert [(s.name, s.depth) for s in segments] == [
            ("root", 0), ("child", 1), ("grand", 2), ("root", 0),
        ]
        assert path_duration_us(segments) == pytest.approx(50.0)

    def test_overlapping_children_covered_sibling_skipped(self):
        # `inner` is entirely covered by `outerlap` from the walk's
        # point of view (it starts after the cursor has moved past it).
        root = _span("root", 0.0, 20.0, [
            _span("outerlap", 2.0, 18.0),
            _span("inner", 5.0, 15.0),
        ])
        segments = critical_path(root)
        assert {s.name for s in segments} == {"root", "outerlap"}
        assert path_duration_us(segments) == pytest.approx(20.0)

    def test_cross_track_children_clamped(self):
        # A grafted child poking outside the root is clamped.
        root = _span("root", 10.0, 20.0)
        extra = [_span("attempt", 5.0, 25.0)]
        segments = critical_path(
            root, children_of=lambda s: extra if s is root else []
        )
        assert [(s.name, s.start_us, s.end_us) for s in segments] == [
            ("attempt", 10.0, 20.0),
        ]

    def test_summarize_groups_and_renames(self):
        root = _span("query 7", 0.0, 30.0, [
            _span("attempt q7", 5.0, 15.0),
            _span("attempt q7", 15.0, 25.0),
        ])
        summary = summarize_path(
            critical_path(root),
            rename=lambda n: "self" if n == "query 7" else n.split()[0],
        )
        assert summary == {"attempt": 20.0, "self": 10.0}
        # Largest share first.
        assert list(summary) == ["attempt", "self"]


# ----------------------------------------------------------------------
# Property: the path partitions the root interval exactly.
# ----------------------------------------------------------------------
@st.composite
def span_trees(draw, depth=0):
    start = draw(st.floats(0, 1000, allow_nan=False))
    length = draw(st.floats(0.1, 500, allow_nan=False))
    end = start + length
    children = []
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            lo = draw(st.floats(0, 1, allow_nan=False))
            hi = draw(st.floats(0, 1, allow_nan=False))
            lo, hi = min(lo, hi), max(lo, hi)
            child = draw(span_trees(depth=depth + 1))
            # Scale the child into the parent's interval (containment,
            # as the reader guarantees for same-track children).
            span = length
            child = Span(
                f"n{depth}",
                start + lo * span,
                start + hi * span,
                children=child.children,
            )
            if child.duration_us > 0:
                children.append(child)
    return Span(f"n{depth}", start, end, children=children)


class TestPathProperties:
    @given(span_trees())
    @settings(max_examples=200, deadline=None)
    def test_path_partitions_root_exactly(self, root):
        segments = critical_path(root)
        # Never exceeds the root duration...
        assert path_duration_us(segments) <= root.duration_us + 1e-6
        # ...and in fact equals it: contiguous, in order, no holes.
        assert segments[0].start_us == pytest.approx(root.start_us)
        assert segments[-1].end_us == pytest.approx(root.end_us)
        for a, b in zip(segments, segments[1:]):
            assert a.end_us == pytest.approx(b.start_us)
        assert all(s.duration_us > 0 for s in segments)
