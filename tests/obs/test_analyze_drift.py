"""Tests for drift gating and anomaly detection
(`repro.obs.analyze.drift`)."""

import pytest

from repro.obs.analyze import (
    compare_snapshots,
    find_anomalies,
    flatten_numeric,
    from_tracer,
    is_snapshot,
    make_snapshot,
    snapshot_from_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = flatten_numeric(
            {"a": {"b": 1, "c": [10, 20]}, "d": 2.5}
        )
        assert flat == {"a.b": 1.0, "a.c.0": 10.0, "a.c.1": 20.0, "d": 2.5}

    def test_non_numeric_leaves_dropped(self):
        flat = flatten_numeric(
            {"s": "text", "n": None, "b": True, "x": 3}
        )
        assert flat == {"x": 3.0}


class TestSnapshots:
    def test_make_and_sniff(self):
        snapshot = make_snapshot({"k": 1}, workload="unit")
        assert is_snapshot(snapshot)
        assert not is_snapshot({"traceEvents": []})
        assert snapshot["workload"] == "unit"
        assert snapshot["values"] == {"k": 1.0}

    def test_snapshot_from_metrics_drops_series_and_bounds(self):
        metrics = MetricsRegistry()
        metrics.counter("host.queries").inc(5)
        gauge = metrics.gauge("queue.depth")
        gauge.set(1.0, 3)
        gauge.set(2.0, 7)
        metrics.histogram("latency_us", bounds=[10, 100]).observe(42)
        snapshot = snapshot_from_metrics(
            metrics.as_dict(), workload="unit"
        )
        values = snapshot["values"]
        assert values["counters.host.queries"] == 5.0
        assert values["gauges.queue.depth.last"] == 7.0
        assert values["gauges.queue.depth.peak"] == 7.0
        assert not any("samples" in key for key in values)
        assert not any("bounds" in key for key in values)
        assert values["histograms.latency_us.total"] == 1.0


class TestCompare:
    def _golden(self, **overrides):
        return make_snapshot(
            {"a": 100.0, "b": 10.0}, workload="unit",
            overrides=overrides or None,
        )

    def test_identical_is_ok(self):
        golden = self._golden()
        report = compare_snapshots(golden, golden)
        assert report.ok
        assert report.checked == 2

    def test_within_default_tolerance_ok(self):
        current = make_snapshot({"a": 101.0, "b": 10.0})
        report = compare_snapshots(current, self._golden())
        assert report.ok  # 1% move < 2% default band

    def test_beyond_tolerance_fails(self):
        current = make_snapshot({"a": 110.0, "b": 10.0})
        report = compare_snapshots(current, self._golden())
        assert not report.ok
        (finding,) = report.failures
        assert finding.key == "a"
        assert finding.verdict == "drift"
        assert "golden 100" in finding.describe()

    def test_missing_key_fails(self):
        current = make_snapshot({"a": 100.0})
        report = compare_snapshots(current, self._golden())
        assert not report.ok
        assert report.failures[0].verdict == "missing"

    def test_new_key_is_informational(self):
        current = make_snapshot({"a": 100.0, "b": 10.0, "new": 1.0})
        report = compare_snapshots(current, self._golden())
        assert report.ok
        assert [f.key for f in report.new_keys] == ["new"]

    def test_longest_prefix_override_wins(self):
        golden = make_snapshot(
            {"host.queue.depth": 100.0},
            overrides={"host": 0.0, "host.queue": 0.5},
        )
        current = make_snapshot({"host.queue.depth": 140.0})
        assert compare_snapshots(current, golden).ok  # 40% < 50% band
        tight = make_snapshot(
            {"host.queue.depth": 100.0},
            overrides={"host": 0.5, "host.queue": 0.0},
        )
        assert not compare_snapshots(current, tight).ok

    def test_abs_floor_widens_band(self):
        golden = make_snapshot({"count": 2.0})
        current = make_snapshot({"count": 3.0})
        assert not compare_snapshots(current, golden).ok
        assert compare_snapshots(current, golden, abs_floor=1.5).ok

    def test_golden_tolerance_governs(self):
        golden = make_snapshot({"a": 100.0}, default_rel=0.5)
        # The current snapshot's (tight) policy must be ignored.
        current = make_snapshot({"a": 140.0}, default_rel=0.0)
        assert compare_snapshots(current, golden).ok


class TestAnomalies:
    def test_open_span_at_eof(self):
        tracer = Tracer()
        track = tracer.track("host", "replica 00")
        tracer.begin(track, "attempt q3", 1.0)
        tracer.instant(track, "tick", 50.0)
        anomalies = find_anomalies(from_tracer(tracer))
        (anomaly,) = [a for a in anomalies if a.kind == "open-span"]
        assert anomaly.where == "host/replica 00"
        assert "attempt q3" in anomaly.detail

    def test_breaker_flapping(self):
        tracer = Tracer()
        track = tracer.track("host", "replica 01")
        for i in range(3):
            tracer.instant(track, "breaker-open", float(i * 10))
        anomalies = find_anomalies(from_tracer(tracer))
        assert any(a.kind == "breaker-flapping" for a in anomalies)
        # Two opens: below the flap threshold.
        tracer2 = Tracer()
        track2 = tracer2.track("host", "replica 01")
        for i in range(2):
            tracer2.instant(track2, "breaker-open", float(i * 10))
        assert not find_anomalies(from_tracer(tracer2))

    def test_failover_flapping(self):
        tracer = Tracer()
        track = tracer.track("fleet", "shard 00")
        for i in range(3):
            tracer.instant(track, "failover", float(i * 10))
        anomalies = find_anomalies(from_tracer(tracer))
        (anomaly,) = [
            a for a in anomalies if a.kind == "failover-flapping"
        ]
        assert anomaly.where == "fleet/shard 00"
        assert "3 times" in anomaly.detail

    def test_clean_outage_cycle_is_not_flapping(self):
        # Away from home and back home: two moves, below threshold.
        tracer = Tracer()
        track = tracer.track("fleet", "shard 00")
        tracer.instant(track, "failover", 10.0)
        tracer.instant(track, "failover", 90.0)
        assert not find_anomalies(from_tracer(tracer))

    def test_monotone_queue_growth(self):
        tracer = Tracer()
        track = tracer.track("host", "queue")
        for i in range(10):
            tracer.counter(track, "queue_depth", float(i), i + 1)
        anomalies = find_anomalies(from_tracer(tracer))
        (anomaly,) = anomalies
        assert anomaly.kind == "queue-growth"
        assert "queue_depth" in anomaly.detail

    def test_draining_queue_is_fine(self):
        tracer = Tracer()
        track = tracer.track("host", "queue")
        depths = [1, 3, 5, 7, 6, 4, 2, 0, 1, 0]
        for i, depth in enumerate(depths):
            tracer.counter(track, "queue_depth", float(i), depth)
        assert not find_anomalies(from_tracer(tracer))
