"""Window-semantics edge cases: boundaries, empty windows, merges."""

import pytest

from repro.obs.live.events import TelemetryEvent, TelemetrySink
from repro.obs.live.windows import (
    WindowConfig, WindowError, aggregate_windows, merge_windows,
    percentile,
)


def _event(ts, kind, seq=0, **fields):
    return TelemetryEvent(ts_us=ts, kind=kind, seq=seq, fields=fields)


def _query(ts, seq=0, ok=True, latency=100.0, status="served"):
    return _event(
        ts, "query", seq=seq, status=status, ok=ok, latency_us=latency
    )


class TestWindowConfig:
    def test_tumbling_step_is_width(self):
        assert WindowConfig(10.0).step_us == 10.0

    def test_sliding_step_is_slide(self):
        assert WindowConfig(10.0, slide_us=5.0).step_us == 5.0

    @pytest.mark.parametrize("width", [0.0, -1.0])
    def test_bad_width_raises(self, width):
        with pytest.raises(WindowError):
            WindowConfig(width)

    @pytest.mark.parametrize("slide", [0.0, -1.0, 11.0])
    def test_bad_slide_raises(self, slide):
        with pytest.raises(WindowError):
            WindowConfig(10.0, slide_us=slide)

    def test_non_multiple_slide_raises(self):
        with pytest.raises(WindowError, match="integer multiple"):
            WindowConfig(10.0, slide_us=4.0)


class TestHalfOpenBoundary:
    def test_event_on_boundary_lands_in_next_window(self):
        windows = aggregate_windows(
            [_event(10.0, "arrival")], WindowConfig(10.0), horizon_us=20.0
        )
        assert [w.arrivals for w in windows] == [0, 1, 0]

    def test_event_at_zero_lands_in_first_window(self):
        windows = aggregate_windows(
            [_event(0.0, "arrival")], WindowConfig(10.0), horizon_us=10.0
        )
        assert windows[0].arrivals == 1

    def test_event_just_under_boundary_stays(self):
        windows = aggregate_windows(
            [_event(9.999, "arrival")], WindowConfig(10.0),
            horizon_us=20.0,
        )
        assert windows[0].arrivals == 1

    def test_event_exactly_at_horizon_has_a_window(self):
        windows = aggregate_windows(
            [_event(20.0, "arrival")], WindowConfig(10.0), horizon_us=20.0
        )
        assert windows[-1].start_us == 20.0
        assert windows[-1].arrivals == 1


class TestEmptyWindows:
    def test_gapless_series_with_quiet_middle(self):
        events = [_event(1.0, "arrival"), _event(45.0, "arrival", seq=1)]
        windows = aggregate_windows(events, WindowConfig(10.0))
        assert [w.arrivals for w in windows] == [1, 0, 0, 0, 1]
        assert [w.index for w in windows] == [0, 1, 2, 3, 4]

    def test_no_events_at_all_still_covers_horizon(self):
        windows = aggregate_windows([], WindowConfig(10.0), horizon_us=35.0)
        assert len(windows) == 4
        assert all(w.finished == 0 for w in windows)
        # Empty window percentiles are 0.0, never an exception.
        assert windows[0].latency_pct(99) == 0.0
        assert windows[0].error_rate() == 0.0
        assert windows[0].qps() == 0.0
        assert windows[0].stale_fraction() == 0.0

    def test_horizon_extends_but_never_truncates(self):
        events = [_event(25.0, "arrival")]
        windows = aggregate_windows(
            events, WindowConfig(10.0), horizon_us=5.0
        )
        assert len(windows) == 3  # the late event keeps its window

    def test_event_before_t_start_raises(self):
        with pytest.raises(WindowError, match="precedes t_start"):
            aggregate_windows(
                [_event(1.0, "arrival")], WindowConfig(10.0), t_start=5.0
            )


class TestSlidingWindows:
    def test_event_appears_in_every_covering_window(self):
        # width 20, slide 10: ts=25 is covered by starts 10 and 20.
        windows = aggregate_windows(
            [_event(25.0, "arrival")],
            WindowConfig(20.0, slide_us=10.0),
            horizon_us=40.0,
        )
        hits = [w.index for w in windows if w.arrivals]
        assert hits == [1, 2]

    def test_early_event_not_double_counted_before_start(self):
        windows = aggregate_windows(
            [_event(5.0, "arrival")],
            WindowConfig(20.0, slide_us=10.0),
            horizon_us=30.0,
        )
        assert [w.arrivals for w in windows] == [1, 0, 0, 0]

    def test_order_independence(self):
        events = [
            _query(3.0, seq=0, latency=50.0),
            _query(17.0, seq=1, latency=150.0),
            _event(9.0, "arrival", seq=2),
        ]
        config = WindowConfig(20.0, slide_us=10.0)
        forward = aggregate_windows(events, config, horizon_us=30.0)
        backward = aggregate_windows(
            list(reversed(events)), config, horizon_us=30.0
        )
        assert [w.as_dict() for w in forward] == [
            w.as_dict() for w in backward
        ]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_sample(self):
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 100) == 42.0

    def test_linear_interpolation(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 50) == pytest.approx(25.0)
        assert percentile(samples, 100) == 40.0
        assert percentile(samples, 0) == 10.0

    def test_out_of_range_raises(self):
        with pytest.raises(WindowError):
            percentile([1.0], 101)


class TestMerge:
    @staticmethod
    def _shard_windows():
        shard_a = [
            _query(1.0, seq=0, latency=100.0),
            _event(2.0, "leg", seq=1, shard=0, status="fresh", region=0),
        ]
        shard_b = [
            _query(3.0, seq=0, latency=300.0),
            _event(4.0, "leg", seq=1, shard=1, status="stale", region=1),
        ]
        config = WindowConfig(10.0)
        return (
            aggregate_windows(shard_a, config, horizon_us=9.0)[0],
            aggregate_windows(shard_b, config, horizon_us=9.0)[0],
        )

    def test_merged_percentiles_are_order_independent(self):
        a, b = self._shard_windows()
        ab, ba = merge_windows([a, b]), merge_windows([b, a])
        assert ab.latencies == sorted(ab.latencies)
        assert ab.as_dict() == ba.as_dict()
        assert ab.latency_pct(50) == pytest.approx(200.0)

    def test_merge_sums_counts(self):
        a, b = self._shard_windows()
        merged = merge_windows([a, b])
        assert merged.ok == 2
        assert merged.legs_fresh == {0: 1}
        assert merged.legs_stale == {1: 1}
        assert merged.stale_fraction() == pytest.approx(0.5)

    def test_merge_interval_mismatch_raises(self):
        a, _ = self._shard_windows()
        other = aggregate_windows(
            [_event(12.0, "arrival")], WindowConfig(10.0)
        )[1]
        with pytest.raises(WindowError, match="different intervals"):
            merge_windows([a, other])

    def test_merge_nothing_raises(self):
        with pytest.raises(WindowError, match="nothing to merge"):
            merge_windows([])


class TestIngestKinds:
    def test_query_ok_defaults_to_served_status(self):
        events = [
            _event(1.0, "query", seq=0, status="served", latency_us=5.0),
            _event(2.0, "query", seq=1, status="shed"),
        ]
        (window,) = aggregate_windows(
            events, WindowConfig(10.0), horizon_us=9.0
        )
        assert window.ok == 1
        assert window.errors == 1
        assert window.outcomes == {"served": 1, "shed": 1}
        assert window.error_rate() == pytest.approx(0.5)

    def test_lifecycle_signals_counted(self):
        events = [
            _event(1.0, "health", seq=0, to_state="quarantined"),
            _event(2.0, "health", seq=1, to_state="active"),
            _event(3.0, "breaker", seq=2, to_state="open"),
            _event(4.0, "breaker", seq=3, to_state="closed"),
            _event(5.0, "audit", seq=4, ok=False),
            _event(6.0, "audit", seq=5, ok=True),
        ]
        (window,) = aggregate_windows(
            events, WindowConfig(10.0), horizon_us=9.0
        )
        assert window.health_transitions == 2
        assert window.quarantines == 1
        assert window.breaker_opens == 1
        assert window.audit_checks == 2
        assert window.audit_mismatches == 1

    def test_fault_labels(self):
        events = [
            _event(1.0, "fault", seq=0, event="region-fail", region=0),
            _event(
                2.0, "fault", seq=1, event="region-slowdown", region=2,
                value=3.0,
            ),
        ]
        (window,) = aggregate_windows(
            events, WindowConfig(10.0), horizon_us=9.0
        )
        assert window.faults == ["region-fail r0", "region-slowdown r2 x3"]


class TestSink:
    def test_emit_orders_by_time_then_seq(self):
        sink = TelemetrySink()
        sink.emit(5.0, "arrival")
        sink.emit(1.0, "arrival")
        sink.emit(1.0, "query", status="served")
        assert len(sink) == 3
        ordered = sink.ordered()
        assert [e.ts_us for e in ordered] == [1.0, 1.0, 5.0]
        # Ties break by emission order (seq).
        assert [e.kind for e in ordered] == ["arrival", "query", "arrival"]
