"""Detection-scoring tests: matching, ttd/ttr, gates, ground truth."""

import pytest

from repro.host import ReplicaFaultEvent
from repro.machine.faults import (
    FaultConfig, FaultEvent, FaultSchedule, FaultWindow,
)
from repro.obs.live.alerts import Alert
from repro.obs.live.score import (
    ScoreConfig, score_detection, truth_from_replica_timeline,
)

HORIZON = 1_000.0


def _truth(start, end, target="replica:1", kind="gray"):
    return FaultWindow(start_us=start, end_us=end, kind=kind,
                       target=target)


def _alert(fired, resolved=None, rule="page"):
    return Alert(rule=rule, severity="page", fired_at_us=fired,
                 ack_at_us=fired + 5.0, resolved_at_us=resolved)


class TestMatching:
    def test_overlap_detects(self):
        score = score_detection(
            [_truth(100.0, 300.0)], [_alert(150.0, 250.0)],
            ScoreConfig(ttd_bound_us=100.0), HORIZON,
        )
        (match,) = score.matches
        assert match.detected
        assert match.ttd_us == 50.0
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_alert_open_at_onset_detects_instantly(self):
        score = score_detection(
            [_truth(100.0, 300.0)], [_alert(50.0, 400.0)],
            ScoreConfig(ttd_bound_us=100.0), HORIZON,
        )
        assert score.matches[0].ttd_us == 0.0  # clamped, never negative

    def test_grace_extends_the_truth_window(self):
        truth = [_truth(100.0, 300.0)]
        late = [_alert(320.0, 400.0)]
        missed = score_detection(
            truth, late, ScoreConfig(ttd_bound_us=500.0), HORIZON
        )
        assert not missed.matches[0].detected
        caught = score_detection(
            truth, late,
            ScoreConfig(ttd_bound_us=500.0, grace_us=50.0), HORIZON,
        )
        assert caught.matches[0].detected

    def test_ttr_needs_repair_and_resolution(self):
        config = ScoreConfig(ttd_bound_us=500.0)
        resolved = score_detection(
            [_truth(100.0, 300.0)], [_alert(150.0, 380.0)], config,
            HORIZON,
        )
        assert resolved.matches[0].ttr_us == pytest.approx(80.0)
        still_open = score_detection(
            [_truth(100.0, 300.0)], [_alert(150.0)], config, HORIZON
        )
        assert still_open.matches[0].ttr_us is None
        never_repaired = score_detection(
            [_truth(100.0, None)], [_alert(150.0, 380.0)], config,
            HORIZON,
        )
        assert never_repaired.matches[0].ttr_us is None

    def test_one_alert_can_cover_correlated_faults(self):
        score = score_detection(
            [_truth(100.0, 300.0), _truth(200.0, 400.0, "replica:2")],
            [_alert(250.0, 500.0)],
            ScoreConfig(ttd_bound_us=500.0), HORIZON,
        )
        assert all(m.detected for m in score.matches)
        assert not score.false_alerts

    def test_false_alert_counted(self):
        score = score_detection(
            [_truth(100.0, 200.0)],
            [_alert(150.0, 180.0), _alert(800.0, 900.0, rule="noisy")],
            ScoreConfig(ttd_bound_us=500.0), HORIZON,
        )
        assert len(score.false_alerts) == 1
        assert score.false_alerts[0].rule == "noisy"
        assert score.precision == pytest.approx(0.5)

    def test_no_truth_no_alerts_is_perfect(self):
        score = score_detection(
            [], [], ScoreConfig(ttd_bound_us=1.0), HORIZON
        )
        assert score.recall == 1.0
        assert score.precision == 1.0
        assert score.max_ttd_us is None


class TestGate:
    def test_missed_fault_named(self):
        score = score_detection(
            [_truth(100.0, 200.0)], [],
            ScoreConfig(ttd_bound_us=50.0), HORIZON,
        )
        (problem,) = score.gate_problems(ScoreConfig(ttd_bound_us=50.0))
        assert "missed fault replica:1" in problem

    def test_slow_detection_named(self):
        config = ScoreConfig(ttd_bound_us=50.0)
        score = score_detection(
            [_truth(100.0, 400.0)], [_alert(200.0, 500.0)], config,
            HORIZON,
        )
        (problem,) = score.gate_problems(config)
        assert "slow detection" in problem
        assert "ttd 100us" in problem

    def test_warmup_fires_fail_the_gate(self):
        config = ScoreConfig(ttd_bound_us=500.0)
        score = score_detection(
            [_truth(100.0, 400.0)], [_alert(50.0, 500.0)], config,
            HORIZON,
        )
        # The early alert still detects the fault, but firing before
        # any fault existed is a false page by construction.
        assert score.fired_in_warmup == 1
        assert any("warmup" in p for p in score.gate_problems(config))

    def test_clean_run_passes(self):
        config = ScoreConfig(ttd_bound_us=500.0)
        score = score_detection(
            [_truth(100.0, 400.0)], [_alert(150.0, 500.0)], config,
            HORIZON,
        )
        assert score.gate_problems(config) == []


class TestTruthFromReplicaTimeline:
    def test_gray_and_outage_windows(self):
        gray = FaultConfig(seed=1, mu_slowdown_factor=3.0)
        flap = FaultConfig(
            seed=2,
            schedule=FaultSchedule((
                FaultEvent(10.0, "cluster-fail", cluster=1),
                FaultEvent(20.0, "cluster-repair", cluster=1),
            )),
        )
        timeline = (
            ReplicaFaultEvent(100.0, 1, gray),
            ReplicaFaultEvent(300.0, 1, None),
            ReplicaFaultEvent(200.0, 2, flap),
            ReplicaFaultEvent(400.0, 2, None),
        )
        windows = truth_from_replica_timeline(timeline)
        assert [(w.target, w.start_us, w.end_us, w.kind)
                for w in windows] == [
            ("replica:1", 100.0, 300.0, "gray"),
            ("replica:2", 200.0, 400.0, "outage"),
        ]

    def test_never_repaired_clamps_to_horizon(self):
        timeline = (
            ReplicaFaultEvent(
                100.0, 1, FaultConfig(seed=1, marker_drop_prob=0.1)
            ),
        )
        (window,) = truth_from_replica_timeline(timeline, horizon_us=900.0)
        assert window.end_us == 900.0
        assert window.duration_us(2_000.0) == 800.0
