"""End-to-end monitor tests: pipeline, zero-overhead sinks, CLI."""

import json

import pytest

from repro.obs.analyze.drift import SNAPSHOT_KIND, compare_snapshots
from repro.obs.live.cli import main as monitor_main
from repro.obs.live.monitor import (
    events_from_trace, monitor_chaos, monitor_fleetchaos,
    monitor_snapshot, run_pipeline,
)
from repro.obs.live.report import render_monitor_report


@pytest.fixture(scope="module")
def chaos_run():
    return monitor_chaos(fast=True)


@pytest.fixture(scope="module")
def fleetchaos_run():
    return monitor_fleetchaos(fast=True)


class TestChaosMonitor:
    def test_detection_gate_passes(self, chaos_run):
        assert chaos_run.gate_problems() == []
        assert chaos_run.score.recall == 1.0
        assert chaos_run.score.precision == 1.0
        assert chaos_run.score.fired_in_warmup == 0

    def test_every_injected_fault_detected(self, chaos_run):
        targets = {m.truth.target for m in chaos_run.score.matches}
        assert targets == {"replica:1", "replica:2", "replica:3"}
        assert all(m.detected for m in chaos_run.score.matches)

    def test_window_series_is_gapless(self, chaos_run):
        step = chaos_run.spec.window.step_us
        starts = [w.start_us for w in chaos_run.windows]
        assert starts == [i * step for i in range(len(starts))]

    def test_snapshot_is_flat_numeric(self, chaos_run):
        snapshot = monitor_snapshot(chaos_run)
        assert snapshot["kind"] == SNAPSHOT_KIND
        assert snapshot["workload"] == "monitor-chaos"
        values = snapshot["values"]
        assert values["score.recall"] == 1.0
        assert values["truth.count"] == 3
        assert values["alerts.total"] >= 1
        assert all(isinstance(v, float) for v in values.values())
        # Snapshot documents must round-trip as JSON for the goldens.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_report_renders_gate_and_timeline(self, chaos_run):
        rendered = render_monitor_report(chaos_run)
        assert "## Gate: PASS" in rendered
        assert "FIRE" in rendered
        assert rendered == render_monitor_report(chaos_run)  # stable

    def test_muting_the_gray_detectors_fails_the_gate(self):
        run = monitor_chaos(
            fast=True, muted=("quarantine-page", "audit-ticket")
        )
        assert run.gate_problems()

    def test_unknown_mute_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            monitor_chaos(fast=True, muted=("no-such-rule",))


class TestFleetchaosMonitor:
    def test_detection_gate_passes(self, fleetchaos_run):
        assert fleetchaos_run.gate_problems() == []
        assert fleetchaos_run.score.recall == 1.0
        assert fleetchaos_run.score.precision == 1.0

    def test_freshness_rule_catches_the_region_outage(
        self, fleetchaos_run
    ):
        by_target = {
            m.truth.target: m for m in fleetchaos_run.score.matches
        }
        outage = by_target["region:0"]
        assert outage.first_rule == "freshness-page"
        gray = by_target["slowdown:region:2"]
        assert "quarantine-page" in gray.rules

    def test_muting_the_outage_detector_is_caught(self):
        # The CI missed-alert gate: availability stays perfect through
        # the failover, so freshness-page is the *only* timely outage
        # signal — muting it must collapse the detection score.
        run = monitor_fleetchaos(fast=True, muted=("freshness-page",))
        problems = run.gate_problems()
        assert any("region:0" in p for p in problems)


class TestZeroOverhead:
    """The acceptance pin: a sink must never change the run."""

    def test_host_report_identical_with_and_without_sink(self):
        from repro.experiments.chaos import build_scenario
        from repro.host import ServingHost
        from repro.obs.live import TelemetrySink

        network, config, queries, _ = build_scenario(fast=True)
        plain = ServingHost(network, config).serve(queries)
        sink = TelemetrySink()
        observed = ServingHost(network, config, sink=sink).serve(queries)
        assert len(sink.events) > 0
        assert json.dumps(plain.as_dict(), sort_keys=True) == json.dumps(
            observed.as_dict(), sort_keys=True
        )

    def test_fleet_report_identical_with_and_without_sink(self):
        from repro.experiments.fleetchaos import build_scenario
        from repro.fleet import FleetRouter
        from repro.obs.live import TelemetrySink

        network, config, queries, _ = build_scenario(fast=True)
        plain = FleetRouter(network, config).serve(queries)
        sink = TelemetrySink()
        observed = FleetRouter(network, config, sink=sink).serve(queries)
        assert len(sink.events) > 0
        assert json.dumps(plain.as_dict(), sort_keys=True) == json.dumps(
            observed.as_dict(), sort_keys=True
        )


class TestTraceIngestion:
    def test_events_reconstructed_from_capture(self):
        from repro.obs.capture import capture

        document = capture("chaos", smoke=True)
        events = events_from_trace(document)
        kinds = {e.kind for e in events}
        assert "arrival" in kinds
        assert "query" in kinds
        # Trace-fed runs carry no ground truth but still window cleanly.
        from repro.obs.live.monitor import chaos_spec

        horizon = max(e.ts_us for e in events)
        run = run_pipeline(
            chaos_spec(max(horizon / 22.0, 1.0)), events, truth=()
        )
        assert run.windows
        assert run.score.truth_count == 0


class TestMonitorCLI:
    def test_json_report_and_self_compare(self, tmp_path):
        golden = tmp_path / "golden.json"
        report = tmp_path / "report.md"
        assert monitor_main([
            "chaos", "--json", str(golden), "--report", str(report),
            "--check",
        ]) == 0
        document = json.loads(golden.read_text())
        assert document["kind"] == SNAPSHOT_KIND
        assert "## Gate: PASS" in report.read_text()
        # The same run drift-compared against itself is clean.
        assert monitor_main([
            "chaos", "--compare", str(golden),
        ]) == 0

    def test_check_fails_when_detector_muted(self, capsys):
        code = monitor_main([
            "fleetchaos", "--mute", "freshness-page", "--check",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "DETECTION GATE" in captured.err
        assert "region:0" in captured.err

    def test_drift_detected_against_doctored_golden(self, tmp_path):
        golden = tmp_path / "golden.json"
        assert monitor_main(["fleetchaos", "--json", str(golden)]) == 0
        document = json.loads(golden.read_text())
        document["values"]["alerts.total"] += 5
        snapshot = json.loads(golden.read_text())
        drift = compare_snapshots(snapshot, document)
        assert not drift.ok
