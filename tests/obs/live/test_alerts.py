"""Alert lifecycle tests: fire, ack, hysteresis resolve, mute, re-fire."""

import pytest

from repro.obs.live.alerts import Alert, AlertManager, AlertState
from repro.obs.live.slo import RuleEvaluation


def _stream(rule, flags, start_index=0, severity="page"):
    """Evaluations for one rule, one per window, from breach flags."""
    return [
        RuleEvaluation(
            window_index=start_index + i,
            at_us=(start_index + i + 1) * 10.0,
            rule=rule,
            severity=severity,
            breached=flag,
            value=2.0 if flag else 0.0,
        )
        for i, flag in enumerate(flags)
    ]


class TestLifecycle:
    def test_fire_ack_resolve(self):
        manager = AlertManager(ack_after_us=3.0, clear_windows=2)
        alerts = manager.process(
            _stream("page", [False, True, True, False, False])
        )
        (alert,) = alerts
        assert alert.fired_at_us == 20.0  # end of the breach window
        assert alert.ack_at_us == 23.0
        assert alert.resolved_at_us == 50.0  # 2nd consecutive clear
        assert alert.state is AlertState.RESOLVED
        assert alert.duration_us() == 30.0
        assert alert.breach_count == 2

    def test_hysteresis_single_clear_does_not_resolve(self):
        manager = AlertManager(clear_windows=2)
        alerts = manager.process(
            _stream("page", [True, False, True, False])
        )
        # One incident throughout: the lone clear window never closed it.
        (alert,) = alerts
        assert alert.resolved_at_us is None
        assert manager.open_alerts() == [alert]

    def test_refire_is_a_new_incident(self):
        manager = AlertManager(clear_windows=1)
        alerts = manager.process(
            _stream("page", [True, False, True, False])
        )
        assert len(alerts) == 2
        assert [a.fired_at_us for a in alerts] == [10.0, 30.0]
        assert all(a.resolved_at_us is not None for a in alerts)

    def test_peak_value_tracks_worst_breach(self):
        evaluations = _stream("page", [True, True])
        evaluations[1] = RuleEvaluation(
            window_index=1, at_us=20.0, rule="page", severity="page",
            breached=True, value=9.5,
        )
        (alert,) = AlertManager().process(evaluations)
        assert alert.peak_value == 9.5

    def test_open_alert_has_no_duration(self):
        (alert,) = AlertManager().process(_stream("page", [True]))
        assert alert.duration_us() is None
        assert alert.as_dict()["resolved_at_us"] is None


class TestMuting:
    def test_muted_rule_never_opens(self):
        manager = AlertManager(muted=("noisy",))
        alerts = manager.process(
            _stream("noisy", [True, True]) + _stream("live", [True])
        )
        assert [a.rule for a in alerts] == ["live"]

    def test_history_sorted_by_fire_time_then_rule(self):
        manager = AlertManager()
        evaluations = (
            _stream("b-rule", [False, True]) + _stream("a-rule", [True])
        )
        alerts = manager.process(evaluations)
        assert [(a.fired_at_us, a.rule) for a in alerts] == [
            (10.0, "a-rule"), (20.0, "b-rule"),
        ]


class TestValidation:
    def test_negative_ack_raises(self):
        with pytest.raises(ValueError):
            AlertManager(ack_after_us=-1.0)

    def test_zero_clear_windows_raises(self):
        with pytest.raises(ValueError):
            AlertManager(clear_windows=0)
