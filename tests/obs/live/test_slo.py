"""SLO engine tests: burn-rate math, event rules, budget accounting."""

import pytest

from repro.obs.live.slo import (
    BurnRateRule, EventRule, SLOEngine, SLOError, SLOSpec,
)
from repro.obs.live.windows import WindowSnapshot


def _window(i, ok=0, finished=0, latencies=(), quarantines=0, **kw):
    window = WindowSnapshot(
        index=i, start_us=i * 10.0, end_us=(i + 1) * 10.0,
        ok=ok, quarantines=quarantines, **kw
    )
    window.outcomes = {"served": ok, "failed": finished - ok}
    window.latencies = sorted(latencies)
    return window


class TestSLOSpec:
    def test_budget(self):
        assert SLOSpec("a", "availability", 0.99).budget == pytest.approx(
            0.01
        )

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_out_of_range_raises(self, objective):
        with pytest.raises(SLOError):
            SLOSpec("a", "availability", objective)

    def test_unknown_kind_raises(self):
        with pytest.raises(SLOError, match="unknown SLO kind"):
            SLOSpec("a", "throughput", 0.9)

    def test_latency_needs_threshold(self):
        with pytest.raises(SLOError, match="latency_threshold_us"):
            SLOSpec("l", "latency", 0.9)

    def test_good_total_availability(self):
        spec = SLOSpec("a", "availability", 0.9)
        assert spec.good_total(_window(0, ok=7, finished=10)) == (7, 10)

    def test_good_total_latency_counts_under_threshold(self):
        spec = SLOSpec("l", "latency", 0.9, latency_threshold_us=100.0)
        window = _window(
            0, ok=3, finished=3, latencies=[50.0, 100.0, 150.0]
        )
        # <= threshold is good (boundary counts).
        assert spec.good_total(window) == (2, 3)

    def test_good_total_freshness(self):
        spec = SLOSpec("f", "freshness", 0.95)
        window = _window(0)
        window.legs_fresh = {0: 3}
        window.legs_stale = {1: 1}
        assert spec.good_total(window) == (3, 4)


class TestBurnRateRule:
    def test_validation(self):
        with pytest.raises(SLOError):
            BurnRateRule("r", "a", threshold=0.0, long_windows=2,
                         short_windows=1)
        with pytest.raises(SLOError):
            BurnRateRule("r", "a", threshold=1.0, long_windows=1,
                         short_windows=2)
        with pytest.raises(SLOError, match="severity"):
            BurnRateRule("r", "a", threshold=1.0, long_windows=2,
                         short_windows=1, severity="email")

    def test_breach_requires_both_spans(self):
        # Objective 0.9 → budget 0.1.  A single fully-bad window burns
        # at 10x, but the long span dilutes it: with three prior
        # all-good windows the long burn is 10 * (1/4) = 2.5.
        engine = SLOEngine(
            [SLOSpec("a", "availability", 0.9)],
            [BurnRateRule("page", "a", threshold=5.0, long_windows=4,
                          short_windows=1)],
        )
        windows = [_window(i, ok=10, finished=10) for i in range(3)]
        windows.append(_window(3, ok=0, finished=10))
        last = engine.evaluate(windows)[-1]
        assert not last.breached
        assert last.value == pytest.approx(2.5)  # min(long, short)

    def test_sustained_burn_breaches(self):
        engine = SLOEngine(
            [SLOSpec("a", "availability", 0.9)],
            [BurnRateRule("page", "a", threshold=5.0, long_windows=4,
                          short_windows=1)],
        )
        windows = [_window(i, ok=0, finished=10) for i in range(4)]
        evaluations = engine.evaluate(windows)
        assert evaluations[-1].breached
        assert evaluations[-1].value == pytest.approx(10.0)

    def test_zero_traffic_never_breaches(self):
        engine = SLOEngine(
            [SLOSpec("a", "availability", 0.9)],
            [BurnRateRule("page", "a", threshold=1.0, long_windows=2,
                          short_windows=1)],
        )
        evaluations = engine.evaluate([_window(0), _window(1)])
        assert all(not e.breached for e in evaluations)
        assert all(e.value == 0.0 for e in evaluations)

    def test_empty_short_span_suppresses_breach(self):
        # All the damage is old: the short span has traffic but is
        # clean, so min(long, short) stays under threshold — the alert
        # resets once the system recovers.
        engine = SLOEngine(
            [SLOSpec("a", "availability", 0.9)],
            [BurnRateRule("page", "a", threshold=5.0, long_windows=3,
                          short_windows=1)],
        )
        windows = [
            _window(0, ok=0, finished=10),
            _window(1, ok=10, finished=10),
            _window(2, ok=10, finished=10),
        ]
        assert not engine.evaluate(windows)[-1].breached


class TestEventRule:
    def test_unknown_signal_raises(self):
        with pytest.raises(SLOError, match="unknown event signal"):
            EventRule("r", "explosions", threshold=1.0)

    def test_trailing_sum_breaches(self):
        engine = SLOEngine(
            [], [EventRule("quar", "quarantines", threshold=2.0,
                           windows=2)],
        )
        windows = [
            _window(0, quarantines=1),
            _window(1, quarantines=1),
            _window(2),
            _window(3),
        ]
        flags = [e.breached for e in engine.evaluate(windows)]
        # Only window 1's trailing-2 span (windows 0+1) sums to 2; by
        # window 2 the first quarantine has slid out of the span.
        assert flags == [False, True, False, False]


class TestEngineValidation:
    def test_duplicate_slo_raises(self):
        with pytest.raises(SLOError, match="duplicate SLO"):
            SLOEngine([
                SLOSpec("a", "availability", 0.9),
                SLOSpec("a", "availability", 0.99),
            ])

    def test_duplicate_rule_raises(self):
        with pytest.raises(SLOError, match="duplicate rule"):
            SLOEngine(
                [SLOSpec("a", "availability", 0.9)],
                [
                    BurnRateRule("r", "a", threshold=1.0, long_windows=1,
                                 short_windows=1),
                    EventRule("r", "errors", threshold=1.0),
                ],
            )

    def test_unknown_slo_reference_raises(self):
        with pytest.raises(SLOError, match="unknown SLO"):
            SLOEngine(
                [], [BurnRateRule("r", "ghost", threshold=1.0,
                                  long_windows=1, short_windows=1)],
            )

    def test_rule_names_ordered(self):
        engine = SLOEngine(
            [SLOSpec("a", "availability", 0.9)],
            [
                BurnRateRule("burn", "a", threshold=1.0, long_windows=1,
                             short_windows=1),
                EventRule("event", "errors", threshold=1.0),
            ],
        )
        assert engine.rule_names == ["burn", "event"]


class TestSLOStates:
    def test_budget_accounting(self):
        engine = SLOEngine([SLOSpec("a", "availability", 0.9)])
        windows = [
            _window(0, ok=9, finished=10),
            _window(1, ok=8, finished=10),
        ]
        state = engine.slo_states(windows)["a"]
        assert state.good == 17
        assert state.total == 20
        assert state.attained == pytest.approx(0.85)
        # 15% bad against a 10% budget: 150% of budget consumed.
        assert state.budget_consumed == pytest.approx(1.5)

    def test_no_traffic_is_innocent(self):
        engine = SLOEngine([SLOSpec("a", "availability", 0.9)])
        state = engine.slo_states([_window(0)])["a"]
        assert state.attained == 1.0
        assert state.budget_consumed == 0.0
