"""Tests for latency attribution and measured parallelism
(`repro.obs.analyze.attribution`).

Fixtures are hand-built traces with attributions known by
construction; the hypothesis property pins the partition invariant
(buckets sum to each query's end-to-end latency) over arbitrary
queued/attempt interval layouts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.analyze import (
    aggregate_buckets,
    attribute_queries,
    from_tracer,
    machine_processes,
    machine_profile,
    measured_parallelism,
    overlap_profile,
    track_utilization,
)
from repro.obs.tracer import Tracer


def _query_capture():
    """One query with a known layout::

        0        10             30        50          70   80
        |queued--|              |                     |    |
        arrival  attempt1(10..30, damaged)            |    |
                  retry attempt2(30..70)              |    |
                                hedge(50..80) ... wins at 80

    queued 0..10 = 10; service (first primary alone) 10..30 = 20;
    retry (second primary alone) 30..50 = 20; hedge (two racing
    50..70, then hedge alone 70..80) = 30.  Latency 80.
    """
    tracer = Tracer()
    q = tracer.track("queries", "query 00007")
    tracer.begin(q, "query 7", 0.0)
    tracer.span(q, "queued", 0.0, 10.0)
    r0 = tracer.track("host", "replica 00")
    r1 = tracer.track("host", "replica 01")
    tracer.span(r0, "attempt q7", 10.0, 20.0)   # 10..30 primary 1
    tracer.span(r0, "attempt q7", 30.0, 40.0)   # 30..70 primary 2 (retry)
    tracer.span(r1, "hedge q7", 50.0, 30.0)     # 50..80 hedge, wins
    # Close the root at the hedge's completion.
    for span in tracer.spans:
        if span[1] == "query 7":
            span[3] = 80.0
            span[4] = {"status": "served", "attempts": 2, "hedges": 1}
    return tracer


class TestQueryAttribution:
    def test_known_buckets(self):
        model = from_tracer(_query_capture())
        (record,) = attribute_queries(model)
        assert record.query_id == 7
        assert record.status == "served"
        assert record.latency_us == pytest.approx(80.0)
        assert record.buckets["queued"] == pytest.approx(10.0)
        assert record.buckets["service"] == pytest.approx(20.0)
        assert record.buckets["retry"] == pytest.approx(20.0)
        assert record.buckets["hedge"] == pytest.approx(30.0)
        assert record.buckets["other"] == pytest.approx(0.0)
        assert record.bucket_sum_us() == pytest.approx(record.latency_us)

    def test_critical_path_covers_latency(self):
        model = from_tracer(_query_capture())
        (record,) = attribute_queries(model)
        assert sum(record.critical_path.values()) == \
            pytest.approx(record.latency_us)
        # The winning hedge is the last on-path activity.
        assert record.critical_path["hedge"] == pytest.approx(30.0)

    def test_aggregate_buckets(self):
        model = from_tracer(_query_capture())
        totals = aggregate_buckets(attribute_queries(model))
        assert sum(totals.values()) == pytest.approx(80.0)

    def test_gap_between_attempts_is_other(self):
        tracer = Tracer()
        q = tracer.track("queries", "query 00002")
        tracer.span(q, "query 2", 0.0, 50.0)
        r = tracer.track("host", "replica 00")
        tracer.span(r, "attempt q2", 0.0, 20.0)
        # 20..50 covered by nothing: dispatch/finalize gap.
        (record,) = attribute_queries(from_tracer(tracer))
        assert record.buckets["service"] == pytest.approx(20.0)
        assert record.buckets["other"] == pytest.approx(30.0)


# ----------------------------------------------------------------------
# Property: buckets partition the latency for arbitrary layouts.
# ----------------------------------------------------------------------
intervals = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(0.5, 60, allow_nan=False),
        st.booleans(),
    ),
    min_size=0, max_size=5,
)


class TestAttributionProperty:
    @given(
        queued=st.floats(0, 40, allow_nan=False),
        latency=st.floats(1, 200, allow_nan=False),
        layout=intervals,
    )
    @settings(max_examples=150, deadline=None)
    def test_buckets_sum_to_latency(self, queued, latency, layout):
        tracer = Tracer()
        q = tracer.track("queries", "query 00001")
        tracer.span(q, "query 1", 0.0, latency)
        if queued > 0:
            tracer.span(q, "queued", 0.0, min(queued, latency))
        r = tracer.track("host", "replica 00")
        for start, length, hedged in layout:
            name = "hedge q1" if hedged else "attempt q1"
            tracer.span(r, name, start, length)
        # attribute_queries asserts the invariant internally; reaching
        # the return proves it held.
        (record,) = attribute_queries(from_tracer(tracer))
        assert record.bucket_sum_us() == pytest.approx(
            record.latency_us, rel=1e-9, abs=1e-6
        )


# ----------------------------------------------------------------------
# Overlap / utilization / measured parallelism
# ----------------------------------------------------------------------
class TestOverlap:
    def test_overlap_profile_depths(self):
        profile = overlap_profile([(0, 10), (5, 15), (20, 25)])
        assert profile == {1: pytest.approx(15.0), 2: pytest.approx(5.0)}

    def test_track_utilization(self):
        tracer = Tracer()
        t = tracer.track("p", "lane")
        tracer.span(t, "a", 0.0, 10.0)
        tracer.span(t, "b", 20.0, 20.0)
        model = from_tracer(tracer)
        (row,) = track_utilization(model)
        assert row.busy_us == pytest.approx(30.0)
        assert row.extent_us == pytest.approx(40.0)
        assert row.busy_fraction == pytest.approx(0.75)
        assert row.peak_overlap == 1


def _machine_capture():
    """Two pipeline lanes with overlapping PROPAGATEs (β = 2)."""
    tracer = Tracer()
    lane0 = tracer.track("machine", "pipe 0")
    lane1 = tracer.track("machine", "pipe 1")
    h0 = tracer.begin(lane0, "PROPAGATE #1", 0.0)
    tracer.span(lane0, "broadcast", 0.0, 4.0)
    tracer.span(lane0, "wave", 4.0, 10.0)
    tracer.end(h0, 20.0, opcode="PROPAGATE", alpha=12)
    h1 = tracer.begin(lane1, "PROPAGATE #2", 5.0)
    tracer.span(lane1, "wave", 5.0, 10.0)
    tracer.end(h1, 25.0, opcode="PROPAGATE", alpha=30)
    icn = tracer.track("machine", "icn")
    tracer.instant(icn, "msg-send", 3.0, latency_us=1.5)
    tracer.instant(icn, "msg-send", 7.0, latency_us=2.5)
    faults = tracer.track("machine", "faults")
    tracer.instant(faults, "scp-timeout", 9.0, penalty_us=100.0)
    tracer.instant(faults, "checkpoint-replay", 12.0)
    return tracer


class TestMachineProfile:
    def test_machine_process_detection(self):
        model = from_tracer(_machine_capture())
        assert machine_processes(model) == ["machine"]

    def test_phase_icn_and_fault_attribution(self):
        model = from_tracer(_machine_capture())
        profile = machine_profile(model, "machine")
        assert profile.instructions == 2
        assert profile.instruction_us == pytest.approx(40.0)
        assert profile.phase_us["broadcast"] == pytest.approx(4.0)
        assert profile.phase_us["wave"] == pytest.approx(20.0)  # 4..14 + 5..15
        assert profile.icn_transit_us == pytest.approx(4.0)
        assert profile.fault_penalty_us == pytest.approx(100.0)
        assert profile.fault_events == {
            "scp-timeout": 1, "checkpoint-replay": 1,
        }
        # Per-instruction critical paths cover both instructions.
        assert sum(profile.critical_path.values()) == pytest.approx(40.0)

    def test_measured_parallelism(self):
        model = from_tracer(_machine_capture())
        result = measured_parallelism(model, "machine")
        assert (result.alpha_min, result.alpha_max) == (12, 30)
        assert result.alpha_mean == pytest.approx(21.0)
        assert result.propagates == 2
        assert result.beta_max == 2       # lanes overlap 5..20
        # Time-weighted: depth 2 for 15 of 25 busy us.
        assert result.beta_mean == pytest.approx((10 * 1 + 15 * 2) / 25)


class TestAlphaBetaAgreement:
    """Measured α equals the engine-reported α on the same run; the
    overlap-depth β never exceeds the program's static β profile."""

    def test_agreement_on_live_run(self):
        from repro.analysis.parallelism import parallelism_stats
        from repro.isa import assemble
        from repro.machine import SnapMachine, snap1_16cluster
        from repro.network.generator import generate_hierarchy_kb
        from repro.obs.metrics import MetricsRegistry

        # Two independent PROPAGATE chains: statically overlappable.
        program = assemble(
            """
            SEARCH-NODE thing b0
            SEARCH-NODE c1 b2
            PROPAGATE b0 b1 chain(inverse:is-a)
            PROPAGATE b2 b3 chain(inverse:is-a)
            COLLECT-NODE b1
            COLLECT-NODE b3
            """
        )
        network = generate_hierarchy_kb(240, branching=3)
        machine = SnapMachine(network, snap1_16cluster())
        tracer, metrics = Tracer(), MetricsRegistry()
        report = machine.run(program, tracer=tracer, metrics=metrics)
        static = parallelism_stats([report], [program])
        model = from_tracer(tracer, metrics)
        (process,) = machine_processes(model)
        measured = measured_parallelism(model, process)
        # α: exact agreement, span args vs report traces.
        assert measured.alpha_min == static.alpha_min
        assert measured.alpha_max == static.alpha_max
        assert measured.alpha_mean == pytest.approx(static.alpha_mean)
        assert measured.propagates == static.propagates
        # β: realized overlap is bounded by the static profile.
        assert 1 <= measured.beta_max <= static.beta_max
