"""Tests for the one-command trace captures (`python -m repro trace`)."""

import json

import pytest

from repro.obs.capture import WORKLOADS, capture, main as capture_main
from repro.obs.validate import main as validate_main


class TestCapture:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_smoke_capture_is_valid_and_nonempty(self, workload):
        document = capture(workload, smoke=True)
        # capture() validates internally; spot-check the envelope.
        assert document["capture"]["workload"] == workload
        assert document["capture"]["smoke"] is True
        assert len(document["traceEvents"]) > 100
        assert "metrics" in document

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            capture("nope")

    def test_overload_capture_exercises_resilience(self):
        document = capture("overload", smoke=True)
        info = document["capture"]
        assert info["served"] > 0
        assert info["shed"] > 0  # bursts must overflow the queue
        assert info["hedges_issued"] >= 1
        assert info["breaker_opens"] >= 1
        counters = document["metrics"]["counters"]
        assert counters["host.queries"] == info["queries"]

    def test_overload_capture_contains_hedged_rescue(self):
        # The EXPERIMENTS.md worked example: at least one query must
        # be served by its hedge while the primary attempt is
        # cancelled (the hedge "wins" the race on its query track).
        document = capture("overload", smoke=True)
        by_query = {}
        for event in document["traceEvents"]:
            if event.get("cat") == "instant":
                key = (event["pid"], event["tid"])
                by_query.setdefault(key, []).append(event)
        rescued = 0
        for events in by_query.values():
            hedge = next(
                (e for e in events if e["name"] == "hedge-issued"), None
            )
            if hedge is None:
                continue
            served = any(e["name"] == "served" for e in events)
            done = [e for e in events if e["name"] == "attempt-done"]
            if served and done and (
                done[-1]["args"]["replica"] == hedge["args"]["replica"]
            ):
                rescued += 1
        assert rescued >= 1

    def test_faults_capture_has_fault_track_events(self):
        document = capture("faults", smoke=True)
        names = {
            e["name"] for e in document["traceEvents"]
            if e.get("cat") == "instant"
        }
        assert "cluster-offline" in names

    def test_capture_is_deterministic(self):
        one = capture("propagate", smoke=True)
        two = capture("propagate", smoke=True)
        assert json.dumps(one, sort_keys=True) == \
            json.dumps(two, sort_keys=True)


class TestCaptureCli:
    def test_main_writes_validatable_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = capture_main(["propagate", "--smoke", "--out", str(out)])
        assert code == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out
        assert validate_main([str(out)]) == 0

    def test_repro_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        code = main(["trace", "propagate", "--smoke", "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["capture"]["workload"] == "propagate"

    def test_validate_cli_rejects_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -5,
              "dur": 1}]
        ))
        assert validate_main([str(bad)]) == 1
