"""End-to-end tests for `python -m repro analyze` (and the snapshot
wiring on `trace`, `bench`, and the experiments runner)."""

import json

import pytest

from repro.obs.analyze import analyze_document, main as analyze_main
from repro.obs.capture import capture


@pytest.fixture(scope="module")
def overload_document():
    return capture("overload", smoke=True)


@pytest.fixture()
def overload_trace(overload_document, tmp_path):
    path = tmp_path / "overload.json"
    path.write_text(json.dumps(overload_document))
    return path


class TestAnalyzeEngine:
    def test_buckets_sum_and_report_sections(self, overload_document):
        analysis = analyze_document(overload_document)
        assert analysis.queries  # every admitted query attributed
        for record in analysis.queries:
            assert record.bucket_sum_us() == pytest.approx(
                record.latency_us, rel=1e-9, abs=1e-6
            )
        rendered = analysis.to_markdown()
        for section in (
            "## Query latency attribution",
            "## Machine time attribution",
            "## Measured parallelism",
            "## Track utilization",
            "## Anomalies",
        ):
            assert section in rendered

    def test_report_is_deterministic(self, overload_document):
        one = analyze_document(overload_document).to_markdown()
        two = analyze_document(overload_document).to_markdown()
        assert one == two

    def test_snapshot_embeds_workload(self, overload_document):
        analysis = analyze_document(overload_document)
        assert analysis.snapshot["workload"] == "overload"
        assert analysis.snapshot["values"]  # non-empty metric view


class TestAnalyzeCli:
    def test_report_and_json_outputs(self, overload_trace, tmp_path, capsys):
        report = tmp_path / "report.md"
        record = tmp_path / "analysis.json"
        code = analyze_main(
            [str(overload_trace), "--report", str(report),
             "--json", str(record)]
        )
        assert code == 0
        assert "# Trace analysis" in report.read_text()
        data = json.loads(record.read_text())
        assert data["capture"]["workload"] == "overload"
        totals = data["query_buckets_us"]
        assert sum(totals.values()) > 0

    def test_compare_identical_recapture_passes(
        self, overload_trace, tmp_path, capsys
    ):
        golden = tmp_path / "golden.json"
        assert analyze_main(
            [str(overload_trace), "--snapshot-out", str(golden),
             "--report", str(tmp_path / "r.md")]
        ) == 0
        code = analyze_main(
            [str(overload_trace), "--compare", str(golden),
             "--report", str(tmp_path / "r2.md")]
        )
        assert code == 0
        assert "drift gate: ok" in capsys.readouterr().out

    def test_compare_injected_regression_fails(
        self, overload_trace, tmp_path, capsys
    ):
        golden = tmp_path / "golden.json"
        analyze_main(
            [str(overload_trace), "--snapshot-out", str(golden),
             "--report", str(tmp_path / "r.md")]
        )
        doctored = json.loads(golden.read_text())
        doctored["values"]["counters.host.outcome.served"] *= 2
        golden.write_text(json.dumps(doctored))
        code = analyze_main(
            [str(overload_trace), "--compare", str(golden),
             "--report", str(tmp_path / "r2.md")]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "DRIFT counters.host.outcome.served" in captured.out
        assert "drift gate: FAIL" in captured.err

    def test_snapshot_only_input(self, overload_trace, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        analyze_main(
            [str(overload_trace), "--snapshot-out", str(golden),
             "--report", str(tmp_path / "r.md")]
        )
        # A snapshot compared against itself: drift-only mode, exit 0.
        assert analyze_main([str(golden), "--compare", str(golden)]) == 0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "nope.json")]) == 2

    def test_repro_subcommand_wiring(self, overload_trace, tmp_path):
        from repro.__main__ import main

        report = tmp_path / "report.md"
        assert main(
            ["analyze", str(overload_trace), "--report", str(report)]
        ) == 0
        assert "## Query latency attribution" in report.read_text()


class TestSnapshotWiring:
    def test_trace_metrics_out(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["trace", "propagate", "--smoke", "--out", str(out),
             "--metrics-out", str(metrics)]
        ) == 0
        document = json.loads(metrics.read_text())
        assert document["capture"]["workload"] == "propagate"
        assert "counters" in document["metrics"]

    def test_bench_snapshot_excludes_wall_time(self, tmp_path):
        from repro.bench import main as bench_main

        snapshot = tmp_path / "bench-snap.json"
        assert bench_main(
            ["propagate", "--smoke", "--out", str(tmp_path / "b.json"),
             "--snapshot", str(snapshot)]
        ) == 0
        document = json.loads(snapshot.read_text())
        assert document["kind"] == "repro-metrics-snapshot"
        keys = list(document["values"])
        assert "propagate.events" in keys
        assert not any("wall" in k or "per_sec" in k for k in keys)

    def test_runner_snapshot(self, tmp_path, capsys):
        from repro.experiments.runner import main as runner_main

        snapshot = tmp_path / "exp-snap.json"
        assert runner_main(["fig06", "--snapshot", str(snapshot)]) == 0
        document = json.loads(snapshot.read_text())
        assert document["workload"] == "experiments"
        assert any(k.startswith("fig06.") for k in document["values"])
