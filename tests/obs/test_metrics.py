"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_zero_increment_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_empty_defaults(self):
        gauge = Gauge("g")
        assert gauge.last == 0.0
        assert gauge.peak == 0.0

    def test_series_last_and_peak(self):
        gauge = Gauge("g")
        gauge.set(1.0, 3)
        gauge.set(2.0, 7)
        gauge.set(3.0, 2)
        assert gauge.samples == [(1.0, 3), (2.0, 7), (3.0, 2)]
        assert gauge.last == 2
        assert gauge.peak == 7


class TestHistogram:
    def test_increasing_bounds_accepted(self):
        # Regression: the bounds check once used an inverted
        # comparison and rejected every valid (increasing) sequence.
        hist = Histogram("h", bounds=(1.0, 2.0, 3.0))
        assert hist.bounds == (1.0, 2.0, 3.0)
        Histogram("default")  # the default bucket set must be valid

    @pytest.mark.parametrize(
        "bounds", [(2.0, 1.0), (1.0, 1.0), (1.0, 3.0, 2.0)]
    )
    def test_non_increasing_bounds_raise(self, bounds):
        with pytest.raises(ValueError, match="must increase"):
            Histogram("h", bounds=bounds)

    def test_empty_bounds_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_bucket_placement(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        hist.observe(5.0)    # first bucket (<= 10)
        hist.observe(10.0)   # boundary goes to its bound's bucket
        hist.observe(15.0)   # second bucket
        hist.observe(99.0)   # +inf overflow bucket
        assert hist.counts == [2, 1, 1]
        assert hist.total == 4
        assert hist.mean == pytest.approx((5 + 10 + 15 + 99) / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram("h", bounds=(1.0,)).mean == 0.0

    def test_as_dict_shape(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        dump = hist.as_dict()
        assert dump["bounds"] == [1.0]
        assert dump["counts"] == [1, 0]
        assert dump["total"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_default_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS_US

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        registry.histogram("h")  # no bounds: reuse is fine
        registry.histogram("h", bounds=(1.0, 2.0))  # same bounds: fine
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", bounds=(5.0,))

    def test_as_dict_and_summary_are_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("host.queries").inc(3)
        registry.gauge("host.queue_depth").set(1.5, 2)
        registry.histogram("lat", bounds=(10.0,)).observe(4.0)
        full = json.loads(json.dumps(registry.as_dict()))
        assert full["counters"] == {"host.queries": 3}
        assert full["gauges"]["host.queue_depth"]["samples"] == [[1.5, 2]]
        assert full["histograms"]["lat"]["total"] == 1
        headline = json.loads(json.dumps(registry.summary()))
        assert headline["gauge_peaks"] == {"host.queue_depth": 2}
        assert headline["histogram_means"] == {"lat": 4.0}
