"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_zero_increment_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_empty_defaults(self):
        gauge = Gauge("g")
        assert gauge.last == 0.0
        assert gauge.peak == 0.0

    def test_series_last_and_peak(self):
        gauge = Gauge("g")
        gauge.set(1.0, 3)
        gauge.set(2.0, 7)
        gauge.set(3.0, 2)
        assert gauge.samples == [(1.0, 3), (2.0, 7), (3.0, 2)]
        assert gauge.last == 2
        assert gauge.peak == 7


class TestGaugeRetention:
    def test_uncapped_keeps_every_sample(self):
        gauge = Gauge("g")
        for i in range(5_000):
            gauge.set(float(i), i)
        assert len(gauge.samples) == 5_000
        assert gauge.observations == 5_000

    def test_cap_bounds_series_and_preserves_scalars(self):
        capped = Gauge("g", max_points=16)
        full = Gauge("g")
        for i in range(10_000):
            value = float((i * 37) % 101 - 3)  # sawtooth, dips negative
            capped.set(float(i), value)
            full.set(float(i), value)
        assert len(capped.samples) <= 16
        assert capped.observations == 10_000
        # Downsampling never moves the exact scalars.
        assert capped.last == full.last
        assert capped.peak == full.peak
        # Retained points are a time-ordered subsequence of the full
        # series — downsampling drops samples, never invents them.
        assert capped.samples == sorted(capped.samples)
        assert set(capped.samples) <= set(full.samples)

    def test_retained_points_spread_over_the_whole_run(self):
        gauge = Gauge("g", max_points=8)
        for i in range(1_000):
            gauge.set(float(i), i)
        stamps = [ts for ts, _ in gauge.samples]
        assert stamps[0] == 0.0  # the run's start survives
        assert stamps[-1] >= 500.0  # and the tail is represented
        # Stride doubling keeps retained points evenly spaced.
        gaps = {b - a for a, b in zip(stamps, stamps[1:])}
        assert len(gaps) == 1

    def test_negative_only_series_peak_is_exact(self):
        gauge = Gauge("g", max_points=4)
        for i in range(100):
            gauge.set(float(i), -10.0 - i)
        assert gauge.peak == -10.0
        assert gauge.last == -109.0

    def test_tiny_cap_raises(self):
        with pytest.raises(ValueError, match="max_points"):
            Gauge("g", max_points=1)

    def test_registry_default_cap_applies_to_new_gauges(self):
        registry = MetricsRegistry(gauge_max_points=8)
        gauge = registry.gauge("g")
        for i in range(1_000):
            gauge.set(float(i), i)
        assert len(gauge.samples) <= 8
        assert registry.gauge("explicit", max_points=32).max_points == 32

    def test_registry_cap_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.gauge("g", max_points=8)
        registry.gauge("g")  # no cap requested: reuse is fine
        registry.gauge("g", max_points=8)  # same cap: fine
        with pytest.raises(ValueError, match="already exists"):
            registry.gauge("g", max_points=16)

    def test_long_overload_run_stays_bounded(self):
        # Regression for unbounded gauge growth: a long overload run
        # hammers host.queue_depth with a sample per arrival/dispatch.
        # A capped registry must bound the series without changing the
        # run (the sink of samples reads nothing back) or the exact
        # last/peak scalars the drift snapshots pin.
        from repro.experiments.overload import (
            build_queries, uncontended_profile,
        )
        from repro.host import HostConfig, ServingHost
        from repro.network.generator import generate_hierarchy_kb

        network = generate_hierarchy_kb(120, branching=3)
        config = HostConfig(
            num_replicas=2, clusters_per_replica=2, mus_per_cluster=2,
            queue_capacity=8,
        )
        mean_service, p99_0 = uncontended_profile(network, config)
        queries = build_queries(
            400, 2.0 * config.num_replicas / mean_service, 20.0 * p99_0
        )

        unbounded = MetricsRegistry()
        capped = MetricsRegistry(gauge_max_points=64)
        report_a = ServingHost(
            network, config, metrics=unbounded
        ).serve(queries)
        report_b = ServingHost(
            network, config, metrics=capped
        ).serve(queries)

        free = unbounded.gauge("host.queue_depth")
        bound = capped.gauge("host.queue_depth")
        assert len(free.samples) > 64  # the run is genuinely long
        assert len(bound.samples) <= 64
        assert bound.observations == len(free.samples)
        assert bound.last == free.last
        assert bound.peak == free.peak
        # Metrics retention must not perturb the run itself.
        assert report_b.as_dict() == report_a.as_dict()


class TestHistogram:
    def test_increasing_bounds_accepted(self):
        # Regression: the bounds check once used an inverted
        # comparison and rejected every valid (increasing) sequence.
        hist = Histogram("h", bounds=(1.0, 2.0, 3.0))
        assert hist.bounds == (1.0, 2.0, 3.0)
        Histogram("default")  # the default bucket set must be valid

    @pytest.mark.parametrize(
        "bounds", [(2.0, 1.0), (1.0, 1.0), (1.0, 3.0, 2.0)]
    )
    def test_non_increasing_bounds_raise(self, bounds):
        with pytest.raises(ValueError, match="must increase"):
            Histogram("h", bounds=bounds)

    def test_empty_bounds_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_bucket_placement(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        hist.observe(5.0)    # first bucket (<= 10)
        hist.observe(10.0)   # boundary goes to its bound's bucket
        hist.observe(15.0)   # second bucket
        hist.observe(99.0)   # +inf overflow bucket
        assert hist.counts == [2, 1, 1]
        assert hist.total == 4
        assert hist.mean == pytest.approx((5 + 10 + 15 + 99) / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram("h", bounds=(1.0,)).mean == 0.0

    def test_as_dict_shape(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        dump = hist.as_dict()
        assert dump["bounds"] == [1.0]
        assert dump["counts"] == [1, 0]
        assert dump["total"] == 1


class TestPercentile:
    def test_empty_histogram_is_zero(self):
        assert Histogram("h", bounds=(10.0,)).percentile(99) == 0.0

    def test_out_of_range_raises(self):
        hist = Histogram("h", bounds=(10.0,))
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(100.5)

    def test_linear_interpolation_within_bucket(self):
        # 10 observations all landing in the 0..10 bucket: the rank
        # interpolates linearly across the bucket's width.
        hist = Histogram("h", bounds=(10.0, 20.0))
        for _ in range(10):
            hist.observe(5.0)
        assert hist.percentile(50) == pytest.approx(5.0)
        assert hist.percentile(100) == pytest.approx(10.0)
        assert hist.percentile(10) == pytest.approx(1.0)

    def test_rank_spans_buckets(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        for _ in range(5):
            hist.observe(5.0)    # bucket 0..10
        for _ in range(5):
            hist.observe(15.0)   # bucket 10..20
        assert hist.percentile(50) == pytest.approx(10.0)
        assert hist.percentile(75) == pytest.approx(15.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(1e9)
        # Estimates cannot exceed the largest finite bound.
        assert hist.percentile(99) == 10.0

    def test_as_dict_includes_percentiles(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        for _ in range(100):
            hist.observe(5.0)
        dump = hist.as_dict()
        assert dump["p50"] == pytest.approx(5.0)
        assert dump["p95"] == pytest.approx(9.5)
        assert dump["p99"] == pytest.approx(9.9)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_default_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS_US

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        registry.histogram("h")  # no bounds: reuse is fine
        registry.histogram("h", bounds=(1.0, 2.0))  # same bounds: fine
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", bounds=(5.0,))

    def test_as_dict_and_summary_are_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("host.queries").inc(3)
        registry.gauge("host.queue_depth").set(1.5, 2)
        registry.histogram("lat", bounds=(10.0,)).observe(4.0)
        full = json.loads(json.dumps(registry.as_dict()))
        assert full["counters"] == {"host.queries": 3}
        assert full["gauges"]["host.queue_depth"]["samples"] == [[1.5, 2]]
        assert full["histograms"]["lat"]["total"] == 1
        headline = json.loads(json.dumps(registry.summary()))
        assert headline["gauge_peaks"] == {"host.queue_depth": 2}
        assert headline["histogram_means"] == {"lat": 4.0}
