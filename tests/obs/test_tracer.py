"""Unit tests for the tracer event model (spans/instants/counters)."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER, NullTracer, Tracer, get_tracer, set_tracer,
)


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_methods_are_noops(self):
        tracer = NullTracer()
        track = tracer.track("p", "t")
        assert track == 0
        tracer.span(track, "s", 0.0, 1.0)
        handle = tracer.begin(track, "s", 0.0)
        assert handle is None
        tracer.end(handle, 1.0)
        tracer.instant(track, "i", 0.5)
        tracer.counter(track, "c", 0.5, 3)
        assert tracer.to_chrome_json() == {"traceEvents": []}


class TestTracer:
    def test_track_interning(self):
        tracer = Tracer()
        a = tracer.track("host", "queue")
        b = tracer.track("host", "replica 00")
        assert a != b
        assert tracer.track("host", "queue") == a
        assert tracer.tracks == [("host", "queue"), ("host", "replica 00")]

    def test_complete_span(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.span(track, "work", 10.0, 5.0, ok=True)
        assert tracer.spans == [[track, "work", 10.0, 15.0, {"ok": True}]]

    def test_begin_end_lifecycle(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        handle = tracer.begin(track, "work", 1.0)
        assert handle[3] is None
        tracer.end(handle, 4.0, status="served")
        assert handle[3] == 4.0
        assert handle[4] == {"status": "served"}

    def test_end_is_idempotent(self):
        tracer = Tracer()
        handle = tracer.begin(tracer.track("p", "t"), "work", 1.0)
        tracer.end(handle, 4.0)
        tracer.end(handle, 9.0, late=True)  # already closed: no-op
        assert handle[3] == 4.0
        assert handle[4] is None

    def test_end_none_handle_is_noop(self):
        Tracer().end(None, 1.0)

    def test_close_open_spans(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.begin(track, "open", 5.0)
        late = tracer.begin(track, "later-than-close", 20.0)
        done = tracer.begin(track, "done", 1.0)
        tracer.end(done, 2.0)
        assert tracer.close_open_spans(10.0) == 2
        # Never closed before its own begin.
        assert late[3] == 20.0
        assert all(span[3] is not None for span in tracer.spans)

    def test_num_events(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.span(track, "s", 0.0, 1.0)
        tracer.instant(track, "i", 0.5)
        tracer.counter(track, "c", 0.5, {"a": 1, "b": 2})
        assert tracer.num_events == 3


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_clear(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    @pytest.fixture(autouse=True)
    def _restore_global(self):
        yield
        set_tracer(None)
