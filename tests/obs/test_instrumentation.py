"""Integration tests: instrumentation must not change simulation results.

The tracing hooks run inline with the simulator and host event loops;
these tests pin the contract that a traced run is *observationally
identical* to an untraced run — same reports, same ICN accounting,
same outcomes — and that the captured event stream itself is a valid,
non-trivial Chrome trace.
"""

import json

import pytest

from repro.isa import assemble
from repro.machine import SnapMachine
from repro.machine.config import MachineConfig
from repro.machine.faults import FaultConfig
from repro.network.generator import generate_hierarchy_kb
from repro.obs import (
    MetricsRegistry, Tracer, export_chrome_json, validate_chrome_trace,
)

PROGRAM = """
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""


def _machine(faults=None):
    network = generate_hierarchy_kb(120, branching=3)
    config = MachineConfig(
        num_clusters=4, mus_per_cluster=2, faults=faults
    )
    return SnapMachine(network, config)


def _fault_config():
    return FaultConfig(
        seed=7,
        failed_cluster_fraction=0.25,
        mu_loss_prob=0.1,
        link_fail_prob=0.1,
        transfer_corrupt_prob=0.05,
    )


class TestMachineInstrumentation:
    def test_traced_run_report_identical_to_untraced(self):
        program = assemble(PROGRAM)
        baseline = _machine().run(program)
        tracer = Tracer()
        traced = _machine().run(program, tracer=tracer)
        assert json.dumps(baseline.to_json(), sort_keys=True) == \
            json.dumps(traced.to_json(), sort_keys=True)
        assert tracer.num_events > 0

    def test_traced_run_under_faults_identical(self):
        program = assemble(PROGRAM)
        baseline = _machine(_fault_config()).run(program)
        tracer = Tracer()
        traced = _machine(_fault_config()).run(program, tracer=tracer)
        assert json.dumps(baseline.to_json(), sort_keys=True) == \
            json.dumps(traced.to_json(), sort_keys=True)

    def test_trace_validates_and_has_expected_tracks(self):
        tracer = Tracer()
        _machine().run(assemble(PROGRAM), tracer=tracer)
        document = export_chrome_json(tracer)
        validate_chrome_trace(document)
        processes = {process for process, _ in tracer.tracks}
        assert "machine" in processes
        threads = {thread for _, thread in tracer.tracks}
        assert "controller" in threads
        assert any(t.startswith("cluster") for t in threads)

    def test_icn_record_message_invariant_under_tracing(self):
        # Every counted hop must be attributed to exactly one L/X/Y
        # memory; to_json() raises if tracing ever skews the split
        # record/record_dimension accounting.
        tracer = Tracer()
        report = _machine().run(assemble(PROGRAM), tracer=tracer)
        stats = report.icn_stats
        assert stats.messages > 0
        assert sum(stats.dimension_counts.values()) == stats.total_hops
        assert sum(stats.hop_histogram.values()) == stats.messages
        stats.to_json()  # must not raise the invariant error

    def test_machine_metrics_fed_post_run(self):
        metrics = MetricsRegistry()
        report = _machine().run(assemble(PROGRAM), metrics=metrics)
        dump = metrics.as_dict()
        assert dump["counters"]["machine.instructions"] == len(
            report.traces
        )
        assert dump["counters"]["machine.icn.messages"] == \
            report.icn_stats.messages
        hist = dump["histograms"]["machine.instruction_latency_us"]
        assert hist["total"] == len(report.traces)

    def test_trace_offset_shifts_all_events(self):
        program = assemble(PROGRAM)
        base, shifted = Tracer(), Tracer()
        _machine().run(program, tracer=base)
        _machine().run(program, tracer=shifted, trace_offset_us=1000.0)
        base_ts = [s[2] for s in base.spans]
        shifted_ts = [s[2] for s in shifted.spans]
        assert len(base_ts) == len(shifted_ts)
        for a, b in zip(base_ts, shifted_ts):
            assert b == pytest.approx(a + 1000.0)


class TestHostInstrumentation:
    def _serve(self, tracer=None, metrics=None):
        from repro.experiments.overload import build_queries
        from repro.host import HostConfig, ServingHost

        network = generate_hierarchy_kb(120, branching=3)
        config = HostConfig(
            num_replicas=2,
            clusters_per_replica=2,
            mus_per_cluster=2,
            queue_capacity=8,
        )
        queries = build_queries(30, 0.00002, 50_000.0, seed=5)
        host = ServingHost(
            network, config, tracer=tracer, metrics=metrics
        )
        return host.serve(queries)

    def test_traced_serving_report_identical(self):
        baseline = self._serve()
        tracer, metrics = Tracer(), MetricsRegistry()
        traced = self._serve(tracer=tracer, metrics=metrics)
        assert json.dumps(baseline.as_dict(), sort_keys=True) == \
            json.dumps(traced.as_dict(), sort_keys=True)
        assert tracer.num_events > 0

    def test_host_trace_validates_with_query_tracks(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        report = self._serve(tracer=tracer, metrics=metrics)
        document = export_chrome_json(tracer, metrics=metrics)
        validate_chrome_trace(document)
        processes = {process for process, _ in tracer.tracks}
        assert {"host", "queries"} <= processes
        dump = metrics.as_dict()
        assert dump["counters"]["host.queries"] == report.submitted
        assert dump["histograms"]["host.served_latency_us"]["total"] == \
            report.served
