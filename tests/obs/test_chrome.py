"""Tests for the Chrome trace-event exporter and schema validator."""

import json

import pytest

from repro.obs.chrome import export_chrome_json, write_chrome_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.obs.validate import (
    TraceValidationError, validate_chrome_trace, validate_file,
    validation_errors,
)


def _small_capture():
    tracer = Tracer()
    host = tracer.track("host", "queue")
    replica = tracer.track("replica 00", "controller")
    tracer.counter(host, "queue_depth", 0.0, 1)
    tracer.span(replica, "attempt q0", 1.0, 5.0, ok=True)
    tracer.instant(host, "outcome", 6.5, status="served")
    return tracer


class TestExporter:
    def test_document_shape(self):
        document = export_chrome_json(_small_capture())
        assert document["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in document["traceEvents"]]
        # Two processes + two threads announced, then the body.
        assert phases.count("M") == 4
        assert phases.count("X") == 1
        assert phases.count("i") == 1
        assert phases.count("C") == 1

    def test_pid_tid_assignment(self):
        document = export_chrome_json(_small_capture())
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in document["traceEvents"] if e["ph"] == "M"
            and e["name"] == "thread_name"
        }
        assert names == {(1, 1): "queue", (2, 1): "controller"}

    def test_body_sorted_by_timestamp(self):
        tracer = _small_capture()
        # Captured out of order on the same track.
        track = tracer.track("host", "queue")
        tracer.instant(track, "early", 0.25)
        document = export_chrome_json(tracer)
        body = [e for e in document["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)

    def test_open_span_closed_at_last_timestamp(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.begin(track, "never-ended", 1.0)
        tracer.instant(track, "last", 9.0)
        document = export_chrome_json(tracer)
        span = next(e for e in document["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.0
        assert span["dur"] == 8.0

    def test_metrics_embedded(self):
        metrics = MetricsRegistry()
        metrics.counter("host.queries").inc(2)
        document = export_chrome_json(_small_capture(), metrics=metrics)
        assert document["metrics"]["counters"] == {"host.queries": 2}

    def test_export_validates_and_roundtrips(self):
        document = export_chrome_json(_small_capture())
        validate_chrome_trace(document)
        validate_chrome_trace(json.loads(json.dumps(document)))

    def test_dict_counter_values(self):
        tracer = Tracer()
        track = tracer.track("kernel", "des")
        tracer.counter(track, "heap", 1.0, {"heap_size": 4, "pending": 2})
        document = export_chrome_json(tracer)
        event = next(e for e in document["traceEvents"] if e["ph"] == "C")
        assert event["args"] == {"heap_size": 4, "pending": 2}
        validate_chrome_trace(document)

    def test_write_chrome_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_json(str(path), _small_capture())
        assert validate_file(str(path)) == len(written["traceEvents"])


class TestValidator:
    def test_bare_array_accepted(self):
        assert validation_errors([]) == []

    def test_non_trace_rejected(self):
        assert validation_errors(42)
        assert validation_errors({"no": "events"})

    def test_unknown_phase(self):
        errors = validation_errors(
            [{"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        )
        assert any("unknown phase" in e for e in errors)

    def test_negative_duration(self):
        errors = validation_errors([
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0,
             "dur": -1.0},
        ])
        assert any("negative dur" in e for e in errors)

    def test_counter_needs_numeric_args(self):
        errors = validation_errors([
            {"ph": "C", "name": "c", "pid": 1, "tid": 1, "ts": 0,
             "args": {"value": "high"}},
        ])
        assert any("numeric" in e for e in errors)

    def test_monotonicity_per_track(self):
        good = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5, "s": "t"},
            {"ph": "i", "name": "b", "pid": 1, "tid": 2, "ts": 1, "s": "t"},
        ]
        assert validation_errors(good) == []
        bad = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5, "s": "t"},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 1, "s": "t"},
        ]
        assert any("goes backwards" in e for e in validation_errors(bad))

    def test_validate_raises_with_all_violations(self):
        with pytest.raises(TraceValidationError, match="violation"):
            validate_chrome_trace(
                [{"ph": "X", "name": "", "pid": "x", "tid": 1, "ts": -1,
                  "dur": 1}]
            )


class TestValidatorHardening:
    """The explicit-message checks: dict-valued counter series and
    duplicate track-naming metadata are named, not failed generically."""

    def test_dict_valued_counter_series_named(self):
        errors = validation_errors([
            {"ph": "C", "name": "occupancy", "pid": 1, "tid": 1, "ts": 0,
             "args": {"mu": {"busy": 1, "idle": 2}}},
        ])
        (error,) = errors
        assert "occupancy.mu" in error
        assert "dict value" in error
        assert "flatten" in error

    def test_dict_valued_series_distinct_from_plain_non_numeric(self):
        errors = validation_errors([
            {"ph": "C", "name": "c", "pid": 1, "tid": 1, "ts": 0,
             "args": {"good": 1, "bad": "high", "worse": {"x": 1}}},
        ])
        assert len(errors) == 2
        assert any("c.bad is str" in e for e in errors)
        assert any("c.worse has a dict value" in e for e in errors)

    def test_duplicate_thread_name_metadata(self):
        errors = validation_errors([
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
             "args": {"name": "queue"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
             "args": {"name": "renamed"}},
        ])
        (error,) = errors
        assert "duplicate thread_name" in error
        assert "pid=1 tid=2" in error
        assert "'queue'" in error and "'renamed'" in error

    def test_duplicate_process_name_metadata(self):
        errors = validation_errors([
            {"ph": "M", "name": "process_name", "pid": 3, "tid": 0,
             "args": {"name": "host"}},
            {"ph": "M", "name": "process_name", "pid": 3, "tid": 0,
             "args": {"name": "other"}},
        ])
        (error,) = errors
        assert "duplicate process_name" in error
        assert "pid=3" in error

    def test_same_name_on_different_tracks_is_fine(self):
        errors = validation_errors([
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
             "args": {"name": "controller"}},
            {"ph": "M", "name": "thread_name", "pid": 2, "tid": 1,
             "args": {"name": "controller"}},
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "replica 00"}},
            {"ph": "M", "name": "process_name", "pid": 2, "tid": 0,
             "args": {"name": "replica 01"}},
        ])
        assert errors == []

    def test_exported_captures_have_unique_metadata(self):
        document = export_chrome_json(_small_capture())
        assert validation_errors(document) == []


class TestNonFiniteRejection:
    """NaN/inf is poison everywhere a number is expected."""

    def test_nan_ts_rejected(self):
        errors = validation_errors([
            {"ph": "i", "name": "x", "pid": 1, "tid": 1,
             "ts": float("nan"), "s": "t"},
        ])
        assert any("non-finite ts" in e for e in errors)

    def test_inf_dur_rejected(self):
        errors = validation_errors([
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0,
             "dur": float("inf")},
        ])
        assert any("non-finite dur" in e for e in errors)

    def test_nan_counter_value_rejected(self):
        errors = validation_errors([
            {"ph": "C", "name": "c", "pid": 1, "tid": 1, "ts": 0,
             "args": {"depth": float("nan")}},
        ])
        (error,) = errors
        assert "c.depth" in error
        assert "non-finite" in error


class TestCounterMonotonicity:
    """Cumulative counter series (by naming convention) must never
    decrease on a track; gauge-like series are exempt."""

    @staticmethod
    def _series(name, values, tid=1):
        return [
            {"ph": "C", "name": name, "pid": 1, "tid": tid, "ts": float(i),
             "args": {name: v}}
            for i, v in enumerate(values)
        ]

    def test_decreasing_counter_series_flagged(self):
        errors = validation_errors(
            self._series("hops_total", [1, 5, 3])
        )
        (error,) = errors
        assert "hops_total" in error
        assert "decreased from 5 to 3" in error

    def test_nondecreasing_counter_series_accepted(self):
        assert validation_errors(
            self._series("hops_total", [1, 1, 5, 9])
        ) == []

    def test_gauge_like_series_exempt(self):
        # queue_depth/busy/mu_busy go up and down by design — the
        # naming convention keeps them out of the monotone check.
        for name in ("queue_depth", "busy", "mu_busy"):
            assert validation_errors(
                self._series(name, [0, 4, 1, 3])
            ) == []

    def test_tracks_checked_independently(self):
        events = (
            self._series("msgs.count", [1, 9], tid=1)
            + self._series("msgs.count", [2, 4], tid=2)
        )
        assert validation_errors(sorted(events, key=lambda e: e["ts"])) == []


class TestEmbeddedMetricsValidation:
    @staticmethod
    def _doc(metrics):
        return {"traceEvents": [], "metrics": metrics}

    def test_valid_registry_dump_accepted(self):
        metrics = MetricsRegistry()
        metrics.counter("host.queries").inc(2)
        metrics.gauge("host.queue_depth").set(1.0, 3)
        metrics.histogram("lat", bounds=(10.0,)).observe(4.0)
        assert validation_errors(self._doc(metrics.as_dict())) == []

    def test_nan_gauge_sample_rejected(self):
        metrics = {
            "gauges": {"g": {"samples": [[1.0, float("nan")]],
                             "last": 0.0, "peak": 0.0}},
        }
        errors = validation_errors(self._doc(metrics))
        assert any("gauge g.samples[0]" in e for e in errors)

    def test_inf_counter_rejected(self):
        errors = validation_errors(
            self._doc({"counters": {"c": float("inf")}})
        )
        assert any("counter c must be finite" in e for e in errors)

    def test_negative_counter_rejected(self):
        errors = validation_errors(self._doc({"counters": {"c": -1}}))
        assert any("counter c is negative" in e for e in errors)

    def test_unordered_gauge_samples_rejected(self):
        metrics = {
            "gauges": {"g": {"samples": [[5.0, 1.0], [1.0, 2.0]],
                             "last": 2.0, "peak": 2.0}},
        }
        errors = validation_errors(self._doc(metrics))
        assert any("goes backwards" in e for e in errors)

    def test_histogram_total_mismatch_rejected(self):
        metrics = {
            "histograms": {"h": {"bounds": [1.0], "counts": [1, 0],
                                 "total": 5, "sum": 0.5}},
        }
        errors = validation_errors(self._doc(metrics))
        assert any("!= sum of counts" in e for e in errors)

    def test_malformed_payload_named_not_crashed(self):
        errors = validation_errors(self._doc("not a dict"))
        assert any("metrics: must be an object" in e for e in errors)
