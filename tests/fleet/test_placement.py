"""Consistent-hash placement: ring determinism, failure-domain
spreading, and the live replica lifecycle through fail/repair."""

from repro.fleet import (
    FleetConfig,
    HashRing,
    PlacementMap,
    ReplicaState,
)


def small_config(**overrides):
    defaults = dict(num_regions=3, num_shards=4, replication_factor=2)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestHashRing:
    def test_preference_is_a_region_permutation(self):
        ring = HashRing(num_regions=5, vnodes_per_region=16, seed=0)
        for sid in range(40):
            pref = ring.preference(sid)
            assert sorted(pref) == list(range(5))

    def test_deterministic_across_instances(self):
        a = HashRing(num_regions=4, vnodes_per_region=8, seed=3)
        b = HashRing(num_regions=4, vnodes_per_region=8, seed=3)
        assert [a.preference(s) for s in range(20)] == \
               [b.preference(s) for s in range(20)]

    def test_seed_changes_placement(self):
        a = HashRing(num_regions=4, vnodes_per_region=8, seed=0)
        b = HashRing(num_regions=4, vnodes_per_region=8, seed=1)
        prefs_a = [a.preference(s) for s in range(40)]
        prefs_b = [b.preference(s) for s in range(40)]
        assert prefs_a != prefs_b

    def test_homes_spread_across_regions(self):
        # With enough shards every region should be home to someone.
        ring = HashRing(num_regions=3, vnodes_per_region=16, seed=0)
        homes = {ring.preference(s)[0] for s in range(64)}
        assert homes == {0, 1, 2}


class TestInitialPlacement:
    def test_replicas_in_distinct_regions(self):
        placement = PlacementMap(small_config())
        for sid in range(4):
            regions = list(placement.replicas[sid])
            assert len(regions) == len(set(regions)) == 2

    def test_home_holds_a_replica(self):
        placement = PlacementMap(small_config())
        for sid in range(4):
            home = placement.home_region(sid)
            assert home in placement.replicas[sid]
            assert placement.serving_region(sid) == home

    def test_replication_counts_start_at_r(self):
        placement = PlacementMap(small_config())
        assert placement.replication_counts() == [2, 2, 2, 2]


class TestFailRepair:
    def test_region_fail_kills_resident_replicas(self):
        placement = PlacementMap(small_config())
        affected = placement.region_fail(0)
        assert affected == [
            sid for sid in range(4)
            if 0 in placement.replicas[sid]
        ]
        for sid in affected:
            assert placement.replicas[sid][0].state is ReplicaState.DEAD
            assert placement.active_count(sid) == 1

    def test_select_fails_over_in_preference_order(self):
        placement = PlacementMap(small_config())
        victims = placement.region_fail(0)
        assert victims, "seed 0 must place something in region 0"
        for sid in victims:
            replica = placement.select(sid, now=0.0)
            assert replica is not None
            assert replica.region != 0
            # The survivor is the next preference after any dead ones.
            live_prefs = [
                r for r in placement.preferences[sid] if r != 0
            ]
            assert replica.region == live_prefs[0]

    def test_repair_garbage_collects_dead_copies(self):
        placement = PlacementMap(small_config())
        victims = placement.region_fail(0)
        came_home = placement.region_repair(0)
        # The repaired region returns empty: every dead copy is gone,
        # and exactly the shards homed there need a restore.
        for sid in victims:
            assert 0 not in placement.replicas[sid]
        assert came_home == [
            sid for sid in victims if placement.home_region(sid) == 0
        ]

    def test_note_serving_records_changes_once(self):
        placement = PlacementMap(small_config())
        sid = 0
        home = placement.home_region(sid)
        other = next(
            r for r in placement.preferences[sid] if r != home
        )
        assert placement.note_serving(sid, other, 5.0, "failover")
        assert not placement.note_serving(sid, other, 6.0, "failover")
        assert placement.note_serving(sid, home, 7.0, "restore-home")
        changes = placement.primary_changes
        assert [(c.from_region, c.to_region) for c in changes] == [
            (home, other), (other, home),
        ]
        assert changes[0].reason == "failover"
        assert changes[1].reason == "restore-home"


class TestRebuild:
    def test_rebuild_target_prefers_ring_order(self):
        placement = PlacementMap(small_config())
        sid = placement.region_fail(0)[0]
        placement.region_repair(0)
        target = placement.rebuild_target(sid)
        missing = [
            r for r in placement.preferences[sid]
            if r not in placement.replicas[sid]
        ]
        assert target == missing[0]

    def test_rebuilding_replica_not_selectable(self):
        placement = PlacementMap(small_config())
        sid = placement.region_fail(0)[0]
        placement.region_repair(0)
        replica = placement.begin_rebuild(sid, 0)
        assert replica.state is ReplicaState.REBUILDING
        chosen = placement.select(sid, now=0.0)
        assert chosen is not None and chosen.region != 0
        assert placement.finish_rebuild(replica)
        assert replica.state is ReplicaState.ACTIVE

    def test_finish_rebuild_aborts_into_dead_region(self):
        placement = PlacementMap(small_config())
        sid = placement.region_fail(0)[0]
        placement.region_repair(0)
        replica = placement.begin_rebuild(sid, 0)
        placement.region_fail(0)  # target dies mid-copy
        assert not placement.finish_rebuild(replica)
        assert 0 not in placement.replicas[sid]

    def test_trim_drops_least_preferred_never_home(self):
        placement = PlacementMap(small_config())
        sid = 0
        # Build an emergency third copy, then trim back to R=2.
        extra = next(
            r for r in placement.preferences[sid]
            if r not in placement.replicas[sid]
        )
        replica = placement.begin_rebuild(sid, extra)
        placement.finish_rebuild(replica)
        assert placement.active_count(sid) == 3
        trimmed = placement.trim_to_replication_factor(sid)
        assert placement.active_count(sid) == 2
        assert placement.home_region(sid) in placement.replicas[sid]
        # The trimmed copy is the least preferred of the three.
        assert trimmed == [placement.preferences[sid][-1]]
