"""FleetRouter end to end: scatter-gather, quorum-or-degrade,
regional failover, re-replication, and the health-driven gray path."""

import pytest

from repro.fleet import (
    ANSWERED_STATUSES,
    FleetConfig,
    FleetError,
    FleetRouter,
    FleetStatus,
)
from repro.host import Query
from repro.isa import assemble
from repro.machine.faults import RegionEvent, RegionSchedule
from repro.network.generator import generate_hierarchy_kb
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

ROOTS = ("thing", "c1", "c2", "c5", "c10", "c20")

PROGRAMS = {
    name: assemble(
        f"SEARCH-NODE {name} b0\n"
        "PROPAGATE b0 b1 chain(inverse:is-a)\n"
        "COLLECT-NODE b1\n"
    )
    for name in ROOTS
}


@pytest.fixture(scope="module")
def network():
    return generate_hierarchy_kb(120, branching=3)


def make_queries(count, gap_us=2_000.0, deadline_us=50_000.0, start=0.0):
    return [
        Query(
            query_id=i,
            program=PROGRAMS[ROOTS[i % len(ROOTS)]],
            arrival_us=start + i * gap_us,
            deadline_us=deadline_us,
            template=ROOTS[i % len(ROOTS)],
        )
        for i in range(count)
    ]


def fleet_config(**overrides):
    defaults = dict(
        num_regions=3, num_shards=4, replication_factor=2,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestHealthyServing:
    def test_all_complete_and_correct(self, network):
        report = FleetRouter(network, fleet_config()).serve(
            make_queries(24)
        )
        assert report.submitted == 24
        assert report.complete == 24
        assert report.correct_answered == 24
        assert report.accounted()
        assert report.total_failovers == 0
        assert report.primary_changes == []
        assert report.replication_restored()

    def test_fresh_legs_cover_every_shard(self, network):
        report = FleetRouter(network, fleet_config()).serve(
            make_queries(24)
        )
        for shard in report.shards:
            assert shard.legs_fresh > 0
            assert shard.legs_stale == 0
            assert shard.legs_shed == 0
            assert shard.serving_region == shard.home_region

    def test_misses_counted_not_failed(self, network):
        # A root lives on exactly one shard; the other legs are
        # name-table misses that still answer (empty) fresh.
        report = FleetRouter(network, fleet_config()).serve(
            make_queries(6)
        )
        missed = sum(s.legs_missed for s in report.shards)
        assert missed > 0

    def test_serves_exactly_one_stream(self, network):
        router = FleetRouter(network, fleet_config())
        router.serve(make_queries(2))
        with pytest.raises(FleetError, match="one stream"):
            router.serve(make_queries(2))

    def test_duplicate_query_id_rejected(self, network):
        router = FleetRouter(network, fleet_config())
        queries = make_queries(2)
        queries[1] = Query(
            query_id=queries[0].query_id,
            program=queries[1].program,
            arrival_us=queries[1].arrival_us,
            template=queries[1].template,
        )
        with pytest.raises(FleetError, match="duplicate"):
            router.serve(queries)

    def test_deterministic(self, network):
        config = fleet_config()
        a = FleetRouter(network, config).serve(make_queries(24))
        b = FleetRouter(network, config).serve(make_queries(24))
        assert [(o.query_id, o.status, o.latency_us)
                for o in a.outcomes] == \
               [(o.query_id, o.status, o.latency_us)
                for o in b.outcomes]


class TestRegionalOutage:
    @pytest.fixture(scope="class")
    def outage_report(self, network):
        config = fleet_config(
            region_schedule=RegionSchedule((
                RegionEvent(10_000.0, "region-fail", 0),
                RegionEvent(120_000.0, "region-repair", 0),
            )),
        )
        queries = make_queries(100)  # spans 0..198 ms
        return FleetRouter(network, config).serve(queries)

    def test_everything_still_answers(self, outage_report):
        report = outage_report
        assert report.accounted()
        assert report.answered_fraction >= 0.99
        assert report.correct_answered == report.answered

    def test_outage_serves_stale(self, outage_report):
        assert sum(s.legs_stale for s in outage_report.shards) > 0
        assert outage_report.total_failovers > 0
        assert outage_report.degraded > 0

    def test_replication_restored_to_r(self, outage_report):
        assert outage_report.replication_restored()
        assert outage_report.final_replication == [2, 2, 2, 2]
        assert outage_report.rebuilds_completed >= 1

    def test_serving_returns_home(self, outage_report):
        for shard in outage_report.shards:
            assert shard.serving_region == shard.home_region

    def test_exactly_one_move_cycle_per_victim(self, outage_report):
        # Each shard homed in the dead region moves away once and
        # back once — no flapping.
        moved = [s for s in outage_report.shards if s.primary_changes]
        assert moved
        for shard in moved:
            assert shard.primary_changes == 2

    def test_outcomes_flag_stale_shards(self, outage_report):
        degraded = [
            o for o in outage_report.outcomes
            if o.status is FleetStatus.DEGRADED
        ]
        assert degraded
        for outcome in degraded:
            assert outcome.shards_stale
            assert outcome.failovers == len(outcome.shards_stale)


class TestDeadlinesAndQuorum:
    def test_tiny_shard_deadline_sheds_to_failure(self, network):
        config = fleet_config(shard_deadline_us=0.5)
        report = FleetRouter(network, config).serve(make_queries(4))
        assert report.failed == 4
        assert report.accounted()
        for outcome in report.outcomes:
            assert outcome.status not in ANSWERED_STATUSES
            assert len(outcome.shards_shed) == 4

    def test_tiny_query_deadline_times_out(self, network):
        queries = make_queries(4, deadline_us=0.5)
        report = FleetRouter(network, fleet_config()).serve(queries)
        assert report.timed_out == 4
        assert report.accounted()

    def test_queue_capacity_sheds(self, network):
        config = fleet_config(queue_capacity=1)
        queries = make_queries(8, gap_us=0.0)  # all arrive at once
        report = FleetRouter(network, config).serve(queries)
        assert report.shed > 0
        assert report.accounted()
        shed = [
            o for o in report.outcomes
            if o.status is FleetStatus.SHED
        ]
        assert all(o.shed_reason == "queue-full" for o in shed)

    def test_dark_fleet_fails_below_quorum(self, network):
        # All regions die and never repair: legs shed as unavailable.
        config = fleet_config(
            region_schedule=RegionSchedule((
                RegionEvent(1.0, "region-fail", 0),
                RegionEvent(1.0, "region-fail", 1),
                RegionEvent(1.0, "region-fail", 2),
            )),
        )
        queries = make_queries(4, start=10.0)
        report = FleetRouter(network, config).serve(queries)
        assert report.answered == 0
        assert report.accounted()


class TestGrayRegion:
    def test_slowdown_quarantine_fails_over_and_readmits(self, network):
        config = fleet_config(
            health_enabled=True,
            health_window=8,
            health_min_samples=3,
            health_phi_quarantine=4.0,
            health_probe_after_us=5_000.0,
            health_probe_successes=1,
            region_schedule=RegionSchedule((
                RegionEvent(10_000.0, "region-slowdown", 2, 3.0),
                RegionEvent(120_000.0, "region-slowdown", 2, 1.0),
            )),
        )
        queries = make_queries(100)
        report = FleetRouter(network, config).serve(queries)
        assert report.accounted()
        assert report.answered_fraction >= 0.99
        assert report.correct_answered == report.answered
        # Shards homed in the gray region fail over (stale serves)
        # and return home after the slowdown clears.
        gray_homed = [s for s in report.shards if s.home_region == 2]
        assert gray_homed
        assert sum(s.legs_stale for s in gray_homed) > 0
        for shard in report.shards:
            assert shard.serving_region == shard.home_region
            # One move away, one move home — probes must not count.
            assert shard.primary_changes in (0, 2)


class TestObservability:
    def test_trace_and_metrics_populated(self, network):
        config = fleet_config(
            region_schedule=RegionSchedule((
                RegionEvent(10_000.0, "region-fail", 0),
                RegionEvent(60_000.0, "region-repair", 0),
            )),
        )
        tracer = Tracer()
        metrics = MetricsRegistry()
        router = FleetRouter(
            network, config, tracer=tracer, metrics=metrics
        )
        report = router.serve(make_queries(40))
        assert report.accounted()
        counters = metrics.as_dict()["counters"]
        assert counters["fleet.queries.complete"] == report.complete
        assert counters["fleet.queries.degraded"] == report.degraded
        assert counters["fleet.legs.fresh"] == sum(
            s.legs_fresh for s in report.shards
        )
        assert counters["fleet.primary_changes"] == len(
            report.primary_changes
        )
        assert counters["fleet.region_events"] == 2
        assert counters["fleet.rebuilds.completed"] == \
               report.rebuilds_completed
        assert tracer.num_events > 0

    def test_untraced_run_matches_traced(self, network):
        config = fleet_config(
            region_schedule=RegionSchedule((
                RegionEvent(10_000.0, "region-fail", 0),
                RegionEvent(60_000.0, "region-repair", 0),
            )),
        )
        plain = FleetRouter(network, config).serve(make_queries(40))
        traced = FleetRouter(
            network, config, tracer=Tracer(), metrics=MetricsRegistry()
        ).serve(make_queries(40))
        assert [(o.query_id, o.status, o.latency_us)
                for o in plain.outcomes] == \
               [(o.query_id, o.status, o.latency_us)
                for o in traced.outcomes]


class TestFleetOutcomeOk:
    """The availability-SLO good-event predicate on fleet outcomes."""

    @staticmethod
    def _outcome(status, correct=True):
        from repro.fleet.report import FleetOutcome

        return FleetOutcome(
            query_id=0, status=status, arrival_us=0.0, finish_us=1.0,
            latency_us=1.0, correct=correct,
        )

    def test_answered_and_correct_is_ok(self):
        for status in ANSWERED_STATUSES:
            outcome = self._outcome(status)
            assert outcome.ok
            assert outcome.as_dict()["ok"] is True

    def test_corrupted_answer_is_not_ok(self):
        assert not self._outcome(FleetStatus.COMPLETE, correct=False).ok

    def test_unanswered_is_not_ok(self):
        for status in (FleetStatus.FAILED, FleetStatus.SHED,
                       FleetStatus.TIMED_OUT):
            assert not self._outcome(status).ok
