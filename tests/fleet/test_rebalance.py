"""Rebalancer: budgeted copies, deficit chasing, aborts."""

from repro.fleet import FleetConfig, PlacementMap, Rebalancer, build_shards
from repro.machine.des import Simulator
from repro.network.generator import generate_hierarchy_kb


def build(config=None, **overrides):
    defaults = dict(
        num_regions=3, num_shards=4, replication_factor=2,
        rebalance_setup_us=100.0,
        rebalance_bandwidth_nodes_per_us=1.0,
    )
    defaults.update(overrides)
    config = config or FleetConfig(**defaults)
    network = generate_hierarchy_kb(120, branching=3)
    shards = build_shards(network, config)
    placement = PlacementMap(config)
    sim = Simulator()
    return sim, placement, shards, config


class TestCopyCost:
    def test_duration_is_setup_plus_streaming(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        sid = 0
        expected = 100.0 + shards[sid].num_nodes / 1.0
        assert rebalancer.copy_duration_us(sid) == expected


class TestEnsureReplication:
    def test_noop_when_whole(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        assert rebalancer.ensure_replication() == 0
        assert rebalancer.idle

    def test_restores_r_after_region_failure(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        victims = placement.region_fail(0)
        queued = rebalancer.ensure_replication()
        assert queued == len(victims)
        sim.run()
        assert rebalancer.completed == len(victims)
        assert placement.replication_counts() == [2, 2, 2, 2]
        # The new copies avoid the dead region.
        for sid in victims:
            live = [
                r.region for r in placement.replicas[sid].values()
                if r.state.value == "active"
            ]
            assert 0 not in live

    def test_concurrency_cap_serialises_copies(self):
        sim, placement, shards, config = build(rebalance_concurrency=1)
        rebalancer = Rebalancer(sim, placement, shards, config)
        victims = placement.region_fail(0)
        assert len(victims) >= 2
        rebalancer.ensure_replication()
        sim.run()
        # Serialized copies: total time is the sum of durations.
        expected = sum(rebalancer.copy_duration_us(s) for s in victims)
        assert sim.now == expected

    def test_zero_active_shard_skipped(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        placement.region_fail(0)
        placement.region_fail(1)
        placement.region_fail(2)
        assert rebalancer.ensure_replication() == 0

    def test_duplicate_deficit_not_queued_twice(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        victims = placement.region_fail(0)
        assert rebalancer.ensure_replication() == len(victims)
        assert rebalancer.ensure_replication() == 0


class TestAbort:
    def test_target_region_dies_mid_copy(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        victims = placement.region_fail(0)
        rebalancer.ensure_replication()
        # Find where the first copy is heading and kill that region
        # before any copy completes.
        target = placement.rebuild_target(victims[0])
        if target is None:  # already a placeholder: inspect replicas
            target = next(
                r.region
                for r in placement.replicas[victims[0]].values()
                if r.state.value == "rebuilding"
            )
        sim.schedule(1.0, placement.region_fail, target)
        sim.run()
        assert rebalancer.aborted >= 1


class TestRestoreHome:
    def test_home_copy_then_trim(self):
        sim, placement, shards, config = build()
        rebalancer = Rebalancer(sim, placement, shards, config)
        victims = placement.region_fail(0)
        rebalancer.ensure_replication()
        sim.run()
        came_home = placement.region_repair(0)
        assert came_home  # some shard is homed in region 0
        rebalancer.restore_home(came_home)
        sim.run()
        # Back to exactly R everywhere, with the home copy present.
        assert placement.replication_counts() == [2, 2, 2, 2]
        for sid in came_home:
            assert 0 in placement.replicas[sid]
            assert len(placement.replicas[sid]) == 2
