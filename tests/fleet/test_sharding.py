"""KB sharding: induced subgraphs, the executor cache, and the
name-miss path."""

import pytest

from repro.fleet import (
    FleetConfig,
    FleetError,
    ShardExecutor,
    build_shards,
)
from repro.isa import assemble
from repro.network.generator import generate_hierarchy_kb

ROOT_PROGRAM_TEXT = """
SEARCH-NODE {name} b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""


class _FakeQuery:
    def __init__(self, program, template=None):
        self.program = program
        self.template = template


def program_for(name):
    return assemble(ROOT_PROGRAM_TEXT.format(name=name))


@pytest.fixture(scope="module")
def network():
    return generate_hierarchy_kb(120, branching=3)


@pytest.fixture(scope="module")
def shards(network):
    return build_shards(network, FleetConfig(num_shards=4))


class TestBuildShards:
    def test_every_node_on_exactly_one_shard(self, network, shards):
        seen = [nid for s in shards for nid in s.global_ids]
        assert sorted(seen) == list(range(network.num_nodes))

    def test_names_match_members(self, network, shards):
        for shard in shards:
            expected = {network.node(nid).name for nid in shard.global_ids}
            assert shard.names == expected

    def test_links_are_induced(self, network, shards):
        # Each shard keeps exactly the parent links with both
        # endpoints local — no more, no fewer.
        for shard in shards:
            member_set = set(shard.global_ids)
            expected = sum(
                1 for link in network.links()
                if link.source in member_set and link.dest in member_set
            )
            assert sum(1 for _ in shard.network.links()) == expected

    def test_deterministic(self, network):
        config = FleetConfig(num_shards=4)
        again = build_shards(network, config)
        for a, b in zip(build_shards(network, config), again):
            assert a.global_ids == b.global_ids
            assert a.names == b.names

    def test_community_policy_keeps_subtrees_together(self, shards):
        # Community partitioning should produce a low cut fraction:
        # most is-a links stay shard-local on a hierarchy KB.
        total_local = sum(
            sum(1 for _ in s.network.links()) for s in shards
        )
        assert total_local > 0


class TestShardExecutor:
    def test_hit_and_miss_split(self, network, shards):
        config = FleetConfig(num_shards=4)
        hits = 0
        for shard in shards:
            executor = ShardExecutor(shard, config)
            answer = executor.execute(_FakeQuery(program_for("c1")))
            if answer.miss:
                assert answer.results == []
                assert answer.service_us == config.name_miss_service_us
            else:
                hits += 1
                assert answer.ok
                assert answer.service_us > config.name_miss_service_us
        assert hits == 1  # exactly one shard owns node c1

    def test_template_caching(self, shards):
        config = FleetConfig(num_shards=4)
        executor = ShardExecutor(shards[0], config)
        query = _FakeQuery(program_for("thing"), template="t")
        first = executor.execute(query)
        second = executor.execute(query)
        assert second is first
        assert executor.cache_hits == 1
        assert executor.executions <= 1

    def test_id_operand_rejected(self, shards):
        # Programmatically-built programs can carry raw node ids; those
        # are ambiguous across shards and must be rejected loudly.
        from repro.isa.instructions import CollectNode, SearchNode
        from repro.isa.program import SnapProgram

        config = FleetConfig(num_shards=4)
        executor = ShardExecutor(shards[0], config)
        program = SnapProgram([SearchNode(0, 0), CollectNode(0)])
        with pytest.raises(FleetError, match="by name"):
            executor.execute(_FakeQuery(program))

    def test_reference_results_stable(self, shards):
        config = FleetConfig(num_shards=4)
        executor = ShardExecutor(shards[0], config)
        query = _FakeQuery(program_for("thing"), template="t")
        assert executor.reference_results(query) == \
               executor.reference_results(query)

    def test_base_service_excludes_router_adjustments(self, shards):
        config = FleetConfig(num_shards=4, failover_penalty_us=1e6)
        executor = ShardExecutor(shards[0], config)
        query = _FakeQuery(program_for("thing"), template="t")
        base = executor.base_service_us(query)
        assert 0 < base < 1e6
