"""FleetConfig validation and derived quantities."""

import pytest

from repro.fleet import FleetConfig, FleetConfigError
from repro.machine.faults import RegionEvent, RegionSchedule


class TestValidation:
    def test_field_named_in_errors(self):
        with pytest.raises(FleetConfigError, match="num_shards"):
            FleetConfig(num_shards=0)
        with pytest.raises(FleetConfigError, match="num_regions"):
            FleetConfig(num_regions=0, replication_factor=1)
        with pytest.raises(FleetConfigError, match="queue_capacity"):
            FleetConfig(queue_capacity=0)
        with pytest.raises(FleetConfigError, match="quorum_fraction"):
            FleetConfig(quorum_fraction=0.0)
        with pytest.raises(FleetConfigError, match="quorum_fraction"):
            FleetConfig(quorum_fraction=1.5)
        with pytest.raises(FleetConfigError, match="shard_deadline_us"):
            FleetConfig(shard_deadline_us=0.0)
        with pytest.raises(FleetConfigError, match="bandwidth"):
            FleetConfig(rebalance_bandwidth_nodes_per_us=0.0)

    def test_replication_cannot_exceed_regions(self):
        with pytest.raises(FleetConfigError, match="distinct failure"):
            FleetConfig(num_regions=2, replication_factor=3)

    def test_unknown_partition_policy(self):
        with pytest.raises(FleetConfigError, match="partition policy"):
            FleetConfig(partition_policy="voodoo")

    def test_region_schedule_bounds_checked(self):
        schedule = RegionSchedule((RegionEvent(1.0, "region-fail", 7),))
        with pytest.raises(FleetConfigError, match="outside"):
            FleetConfig(num_regions=3, region_schedule=schedule)

    def test_defaults_are_valid(self):
        config = FleetConfig()
        assert config.replication_factor <= config.num_regions


class TestQuorum:
    def test_half_of_four_is_two(self):
        assert FleetConfig(num_shards=4, quorum_fraction=0.5).quorum == 2

    def test_rounds_up(self):
        assert FleetConfig(num_shards=5, quorum_fraction=0.5).quorum == 3

    def test_never_below_one(self):
        assert FleetConfig(num_shards=1, quorum_fraction=0.01).quorum == 1

    def test_full_quorum(self):
        assert FleetConfig(num_shards=4, quorum_fraction=1.0).quorum == 4
