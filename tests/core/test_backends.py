"""Unit tests for the propagation-backend layer and engine dispatch.

Covers the backend registry/selection API, the vectorized backend's
adjacency-cache lifecycle, the table-driven instruction dispatch
(including subclass fallback), deterministic collect ordering across
partition policies, and the bench harness's unreliable-wall flag.
"""

import dataclasses

import pytest

from repro.bench import (
    MIN_RELIABLE_WALL_S,
    _finalize_rate,
    _scrub_nondeterministic,
)
from repro.core import (
    BACKENDS,
    ExecutionError,
    FunctionalEngine,
    PropagationBackend,
    PythonBackend,
    VectorizedBackend,
    get_default_backend,
    make_backend,
    set_default_backend,
)
from repro.core.state import MachineState
from repro.core.tables import MACHINE_NODE_CAPACITY
from repro.isa import SetMarker, assemble
from repro.network import SemanticNetwork
from repro.network.generator import generate_hierarchy_kb


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
def test_registry_names():
    assert set(BACKENDS) == {"python", "vectorized"}
    assert BACKENDS["python"] is PythonBackend
    assert BACKENDS["vectorized"] is VectorizedBackend


def test_make_backend_forms():
    assert isinstance(make_backend("python"), PythonBackend)
    assert isinstance(make_backend("vectorized"), VectorizedBackend)
    instance = VectorizedBackend()
    assert make_backend(instance) is instance
    assert isinstance(make_backend(None), PythonBackend)  # default


def test_make_backend_unknown_name():
    with pytest.raises((KeyError, ValueError)):
        make_backend("simd")


def test_default_backend_roundtrip():
    assert get_default_backend() == "python"
    try:
        set_default_backend("vectorized")
        assert get_default_backend() == "vectorized"
        assert isinstance(make_backend(None), VectorizedBackend)
        engine = FunctionalEngine(generate_hierarchy_kb(30, branching=3))
        assert engine.backend_name == "vectorized"
    finally:
        set_default_backend("python")
    assert get_default_backend() == "python"


def test_set_default_backend_rejects_unknown():
    with pytest.raises(ValueError):
        set_default_backend("cuda")
    assert get_default_backend() == "python"


def test_engine_backend_name():
    network = generate_hierarchy_kb(30, branching=3)
    assert FunctionalEngine(network).backend_name == "python"
    assert FunctionalEngine(
        network, backend="vectorized"
    ).backend_name == "vectorized"


def test_propagation_backend_is_abstract():
    with pytest.raises(NotImplementedError):
        PropagationBackend().propagate(None, None)


# ----------------------------------------------------------------------
# Adjacency cache lifecycle
# ----------------------------------------------------------------------
def _engine(backend="vectorized", nodes=60):
    return FunctionalEngine(
        generate_hierarchy_kb(nodes, branching=3), 4, backend=backend
    )


PROGRAM = """
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""


def test_adjacency_cached_across_runs():
    engine = _engine()
    program = assemble(PROGRAM)
    engine.run(program)
    adjacency = engine.backend._adj
    assert adjacency is not None
    engine.state.reset_markers()
    engine.run(program)
    assert engine.backend._adj is adjacency  # same KB: reused


def test_mutation_version_invalidates_cache():
    engine = _engine()
    program = assemble(PROGRAM)
    engine.run(program)
    adjacency = engine.backend._adj
    engine.execute(assemble_one("CREATE thing part-of 1.0 newpart"))
    engine.state.reset_markers()
    engine.run(program)
    assert engine.backend._adj is not adjacency  # topology changed


def test_cache_keyed_on_state_identity():
    backend = VectorizedBackend()
    engine_a = FunctionalEngine(
        generate_hierarchy_kb(30, branching=3), 2, backend=backend
    )
    engine_b = FunctionalEngine(
        generate_hierarchy_kb(45, branching=3), 2, backend=backend
    )
    program = assemble(PROGRAM)
    engine_a.run(program)
    adjacency_a = backend._adj
    engine_b.run(program)
    assert backend._adj is not adjacency_a  # different MachineState


def test_mutation_version_counter():
    network = SemanticNetwork()
    for name in ("a", "b"):
        network.add_node(name)
    state = MachineState(network, 2)
    version = state.mutation_version
    state.add_link_runtime(0, "r1", 1, 2.0)
    assert state.mutation_version == version + 1
    state.remove_link_runtime(0, "r1", 1)
    assert state.mutation_version == version + 2
    # Removing a link that is not there must not dirty the cache key.
    state.remove_link_runtime(0, "r1", 1)
    assert state.mutation_version == version + 2


def assemble_one(text):
    program = assemble(text)
    return next(iter(program))


# ----------------------------------------------------------------------
# Machine capacity override
# ----------------------------------------------------------------------
def test_machine_capacity_override():
    """machine_capacity replaces the prototype's 32K node budget, so
    benchmark KBs larger than the physical machine can be built."""
    from repro.core.tables import TableError

    network = generate_hierarchy_kb(120, branching=3)
    with pytest.raises(TableError):
        MachineState(network, 4, machine_capacity=50)
    state = MachineState(network, 4, machine_capacity=network.num_nodes)
    assert sum(t.num_nodes for t in state.clusters) == network.num_nodes
    # Default still enforces the prototype budget.
    assert MACHINE_NODE_CAPACITY == 32768
    assert MachineState(network, 4).clusters  # well under 32K: fine


# ----------------------------------------------------------------------
# Dispatch table
# ----------------------------------------------------------------------
def test_dispatch_subclass_fallback():
    """An instruction subclass not in the table dispatches via its MRO
    (and is memoized), instead of falling through to 'unsupported'."""

    @dataclasses.dataclass(frozen=True)
    class TracingSetMarker(SetMarker):
        pass

    engine = _engine(backend="python", nodes=30)
    record = engine.execute(TracingSetMarker(64, 1.0))
    assert record.opcode == "SET-MARKER"
    assert engine.state.marker_set_nodes(64)


def test_dispatch_unknown_instruction():
    class NotAnInstruction:
        opcode = "BOGUS"

    engine = _engine(backend="python", nodes=30)
    with pytest.raises(ExecutionError):
        engine.execute(NotAnInstruction())


# ----------------------------------------------------------------------
# Deterministic collect ordering (cross-policy regression)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["python", "vectorized"])
def test_collect_order_identical_across_policies(backend):
    """COLLECT results must not depend on the partition policy.

    COLLECT-RELATION emits several tuples with the same leading global
    id (one per link of a marked node); a sort keyed only on that id
    would leave their relative order at the mercy of cluster visit
    order.  The full-tuple sort pins it."""
    def build():
        net = SemanticNetwork()
        for i in range(12):
            net.add_node(f"n{i}")
        for dest in (5, 3, 9, 1, 7):  # several r1 links out of n0
            net.add_link(0, "r1", dest, 0.25 * dest)
        for i in range(1, 11):
            net.add_link(i, "r1", i + 1, 1.0)
        return net

    program = assemble("""
    SEARCH-NODE n0 b0
    PROPAGATE b0 b1 chain(r1)
    OR-MARKER b0 b1 b2
    COLLECT-RELATION b2 r1
    COLLECT-NODE b2
    """)
    outputs = []
    for policy in ("round-robin", "semantic", "sequential"):
        for clusters in (1, 3, 5):
            engine = FunctionalEngine(build(), clusters, policy,
                                      backend=backend)
            records = engine.run(program).records
            outputs.append([r.result for r in records
                            if r.result is not None])
    assert all(out == outputs[0] for out in outputs[1:])
    # The relation collect really does contain leading-id ties.
    relation_rows = outputs[0][0]
    leading = [row[0] for row in relation_rows]
    assert len(set(leading)) < len(leading)
    assert relation_rows == sorted(relation_rows)


# ----------------------------------------------------------------------
# Bench reliability flag and snapshot scrub (pure helpers)
# ----------------------------------------------------------------------
def test_finalize_rate_flags_unreliable_wall():
    row = _finalize_rate({"events": 100, "wall_s": MIN_RELIABLE_WALL_S / 10})
    assert row["unreliable"] is True
    assert row["events_per_sec"] > 0


def test_finalize_rate_zero_wall():
    row = _finalize_rate({"events": 100, "wall_s": 0.0})
    assert row["unreliable"] is True
    assert row["events_per_sec"] == 0.0


def test_finalize_rate_reliable_wall():
    row = _finalize_rate({"events": 100, "wall_s": 2.0})
    assert "unreliable" not in row
    assert row["events_per_sec"] == 50.0


def test_snapshot_scrub_recursive():
    record = {
        "events": 10,
        "wall_s": 0.5,
        "events_per_sec": 20.0,
        "unreliable": True,
        "backends": {
            "python": {"events": 10, "wall_s": 0.4, "speedup": 2.0},
        },
    }
    scrubbed = _scrub_nondeterministic(record)
    assert scrubbed == {"events": 10, "backends": {"python": {"events": 10}}}
