"""Functional engine: end-to-end programs and the Fig. 5 example."""

import pytest

from repro.core import FunctionalEngine, run_program
from repro.isa import assemble
from repro.network import Color

FIG5_PROGRAM = """
SEARCH-NODE w:we m1 0.0
PROPAGATE m1 m4 spread(is-a,last) add-weight
COLLECT-NODE m4
"""


class TestFig5:
    def test_spread_reaches_classes(self, fig5_kb):
        result = run_program(fig5_kb, assemble(FIG5_PROGRAM))
        reached = {name for _gid, name in result.records[-1].result}
        assert reached == {"animate", "thing", "noun-phrase"}

    def test_spread_switches_to_last(self, fig5_kb):
        # From an element, spread(next,last) walks the sequence then
        # jumps to the root via last.
        program = assemble("""
        SEARCH-NODE seeing-event.experiencer m1
        PROPAGATE m1 m2 spread(next,last) identity
        COLLECT-NODE m2
        """)
        result = run_program(fig5_kb, program)
        reached = {name for _gid, name in result.records[-1].result}
        assert reached == {
            "seeing-event.see", "seeing-event.object", "seeing-event"
        }

    def test_full_fig5_parse_fragment(self, fig5_kb):
        """The L1-L7 structure: two propagations + AND + collect."""
        program = assemble("""
        SEARCH-NODE w:we m1 0.0
        SEARCH-NODE w:saw m2 0.0
        PROPAGATE m1 m3 chain(is-a) add-weight
        PROPAGATE m2 m4 chain(is-a) add-weight
        OR-MARKER m3 m4 m5 add
        COLLECT-NODE m5
        """)
        result = run_program(fig5_kb, program)
        reached = {name for _gid, name in result.records[-1].result}
        assert "thing" in reached
        assert "verb-phrase" in reached


class TestRunResult:
    def test_category_counts(self, fig5_kb):
        result = run_program(fig5_kb, assemble(FIG5_PROGRAM))
        counts = result.category_counts()
        assert counts == {"search": 1, "propagate": 1, "collect": 1}

    def test_total_work_positive(self, fig5_kb):
        result = run_program(fig5_kb, assemble(FIG5_PROGRAM))
        assert result.total_work().total() > 0

    def test_collects_listed_in_order(self, fig5_kb):
        program = assemble("""
        SEARCH-NODE w:we m1
        COLLECT-NODE m1
        SEARCH-NODE w:saw m2
        COLLECT-NODE m2
        """)
        result = run_program(fig5_kb, program)
        collects = result.collects
        assert len(collects) == 2
        assert collects[0].result[0][1] == "w:we"
        assert collects[1].result[0][1] == "w:saw"

    def test_unsupported_instruction_raises(self, fig5_kb):
        from repro.core.state import ExecutionError
        from repro.isa.instructions import Instruction

        class Bogus(Instruction):
            opcode = "BOGUS"
            category = "maintenance"

        engine = FunctionalEngine(fig5_kb)
        with pytest.raises(ExecutionError):
            engine.execute(Bogus())


class TestStatePersistence:
    def test_markers_persist_across_programs(self, fig5_kb):
        engine = FunctionalEngine(fig5_kb)
        engine.run(assemble("SEARCH-NODE w:we m1"))
        result = engine.run(assemble("COLLECT-NODE m1"))
        assert result.records[-1].result[0][1] == "w:we"
