"""Activation messages: the 64-bit wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.activation import (
    ActivationMessage,
    FIELD_WIDTHS,
    MESSAGE_BITS,
    MESSAGE_BYTES,
    MessageError,
    from_bfloat16_bits,
    from_bytes,
    to_bfloat16_bits,
    unpack,
)
from repro.isa import spread, chain


def make_msg(**overrides):
    defaults = dict(
        marker=5,
        value=1.5,
        function=2,
        rule=spread("is-a", "last"),
        state=1,
        dest_cluster=13,
        dest_local=700,
        origin=12345,
        level=2,
        hops=4,
    )
    defaults.update(overrides)
    return ActivationMessage(**defaults)


class TestWireFormat:
    def test_fields_sum_to_64_bits(self):
        assert sum(FIELD_WIDTHS.values()) == MESSAGE_BITS == 64

    def test_pack_unpack_roundtrip(self):
        msg = make_msg()
        table = [msg.rule]
        raw = msg.pack(table)
        assert 0 <= raw < (1 << 64)
        back = unpack(raw, table, level=msg.level, hops=msg.hops)
        assert back.marker == msg.marker
        assert back.state == msg.state
        assert back.dest_cluster == msg.dest_cluster
        assert back.dest_local == msg.dest_local
        assert back.origin == msg.origin
        assert back.rule is msg.rule
        assert back.value == 1.5  # exactly representable in bfloat16

    def test_bytes_roundtrip(self):
        msg = make_msg()
        table = [msg.rule]
        data = msg.to_bytes(table)
        assert len(data) == MESSAGE_BYTES == 8
        back = from_bytes(data, table)
        assert back.dest_local == msg.dest_local

    def test_value_truncated_to_bfloat16(self):
        msg = make_msg(value=3.14159265)
        back = unpack(msg.pack([msg.rule]), [msg.rule])
        assert back.value != pytest.approx(3.14159265, abs=1e-9)
        assert back.value == pytest.approx(3.14159265, rel=0.01)

    def test_negative_origin_packs_as_zero(self):
        msg = make_msg(origin=-1)
        back = unpack(msg.pack([msg.rule]), [msg.rule])
        assert back.origin == 0

    def test_rule_travels_as_table_index(self):
        rule_a = chain("x")
        rule_b = spread("a", "b")
        msg = make_msg(rule=rule_b, state=0)
        table = [rule_a, rule_b]
        back = unpack(msg.pack(table), table)
        assert back.rule is rule_b

    def test_rule_not_in_table_rejected(self):
        msg = make_msg()
        with pytest.raises(MessageError):
            msg.pack([chain("other")])

    @pytest.mark.parametrize(
        "field,value",
        [("marker", 128), ("dest_cluster", 32), ("dest_local", 1024),
         ("origin", 1 << 15), ("state", 4), ("function", 64)],
    )
    def test_field_overflow_rejected(self, field, value):
        msg = make_msg(**{field: value})
        with pytest.raises(MessageError):
            msg.pack([msg.rule])

    def test_bad_byte_length(self):
        with pytest.raises(MessageError):
            from_bytes(b"\x00" * 7, [chain("r")])

    def test_bad_rule_index(self):
        # Craft a raw word whose rule index exceeds the table length.
        rule = chain("r")
        raw = make_msg(rule=rule, state=0).pack([rule])
        offset = 0
        for name, width in FIELD_WIDTHS.items():
            if name == "rule":
                break
            offset += width
        raw |= 7 << offset  # force rule index 7 with a 1-entry table
        with pytest.raises(MessageError):
            unpack(raw, [rule])


class TestBfloat16:
    def test_roundtrip_powers_of_two(self):
        for value in (0.0, 1.0, 2.0, 0.5, -4.0):
            assert from_bfloat16_bits(to_bfloat16_bits(value)) == value

    @given(st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-30, max_value=1e6),
        st.floats(min_value=-1e6, max_value=-1e-30),
    ))
    @settings(max_examples=80, deadline=None)
    def test_property_relative_error_bounded(self, value):
        back = from_bfloat16_bits(to_bfloat16_bits(value))
        if value == 0:
            assert back == 0
        else:
            assert abs(back - value) <= abs(value) * 0.01


@given(
    marker=st.integers(0, 127),
    dest_cluster=st.integers(0, 31),
    dest_local=st.integers(0, 1023),
    origin=st.integers(0, (1 << 15) - 1),
    state=st.integers(0, 1),
    hops=st.integers(0, 15),
)
@settings(max_examples=80, deadline=None)
def test_property_pack_unpack_identity_on_integer_fields(
    marker, dest_cluster, dest_local, origin, state, hops
):
    rule = spread("a", "b")
    msg = make_msg(
        marker=marker, dest_cluster=dest_cluster, dest_local=dest_local,
        origin=origin, state=state, hops=hops, rule=rule,
    )
    back = unpack(msg.pack([rule]), [rule], hops=hops)
    assert (back.marker, back.dest_cluster, back.dest_local,
            back.origin, back.state, back.hops) == (
        marker, dest_cluster, dest_local, origin, state, hops
    )
