"""Backend equivalence: the vectorized backend IS the golden model.

The wave-synchronous numpy backend must be bit-for-bit
indistinguishable from the exact-Python worklist on every observable:
final marker state (status bits, complex value/origin registers),
collect results, WorkReport counters, and the propagation statistics
(alpha, max_hops, remote_messages, arrivals).  Anything less and
``--backend vectorized`` would silently change experiment outputs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FunctionalEngine
from repro.isa import (
    CollectMarker,
    CollectNode,
    FunctionRegistry,
    Propagate,
    SearchNode,
    assemble,
    chain,
)
from repro.core.state import MachineState
from repro.network import SemanticNetwork

from .test_equivalence import (
    MARKERS,
    random_network,
    random_program,
)


def machine_bytes(engine):
    """Every marker-state byte of a machine, per cluster."""
    return [
        (
            tables.status.snapshot().tobytes(),
            tables.node_table.value.tobytes(),
            tables.node_table.origin.tobytes(),
        )
        for tables in engine.state.clusters
    ]


def record_facts(result):
    """The observable content of every execution record."""
    return [
        (
            record.opcode,
            (record.work.words, record.work.nodes, record.work.slots,
             record.work.sets, record.work.fp_ops, record.work.messages,
             record.work.links_made),
            record.alpha,
            record.max_hops,
            record.remote_messages,
            record.arrivals,
            record.result,
        )
        for record in result.records
    ]


def assert_backends_agree(make_engine, program):
    """Run a program through both backends on fresh engines; every
    observable must match exactly."""
    engine_py = make_engine("python")
    engine_vec = make_engine("vectorized")
    result_py = engine_py.run(program)
    result_vec = engine_vec.run(program)
    assert record_facts(result_py) == record_facts(result_vec)
    assert machine_bytes(engine_py) == machine_bytes(engine_vec)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_backend_equivalence(seed):
    """Random KB x random program: byte-identical state and records."""
    network_seed, program_seed = seed, seed + 977
    program = random_program(program_seed, nodes=24, length=12)
    clusters = 1 + seed % 5

    def make_engine(backend):
        return FunctionalEngine(
            random_network(network_seed, nodes=24, links=60),
            clusters, "round-robin", backend=backend,
        )

    assert_backends_agree(make_engine, program)


def test_duplicate_arrival_float32_rounding():
    """Found by the property test (seed 5284): a comb rule listing the
    same relation twice delivers identical float64 values twice to one
    node in one wave.  The value register is float32, and the golden
    model compares each arrival against the *rounded* stored value —
    when rounding lands above the arrival, the duplicate writes again.
    The vectorized duplicate path must not cache the unrounded value."""
    seed = 5284
    program = random_program(seed + 977, nodes=24, length=12)

    def make_engine(backend):
        return FunctionalEngine(
            random_network(seed, nodes=24, links=60),
            1 + seed % 5, "round-robin", backend=backend,
        )

    assert_backends_agree(make_engine, program)


@pytest.mark.parametrize("policy", ["round-robin", "semantic",
                                    "sequential"])
def test_backend_equivalence_across_policies(policy):
    program = random_program(4242, nodes=30, length=16)

    def make_engine(backend):
        return FunctionalEngine(
            random_network(7, nodes=30, links=90), 4, policy,
            backend=backend,
        )

    assert_backends_agree(make_engine, program)


def test_duplicate_arrivals_same_wave():
    """Many links converging on one node in one wave exercises the
    duplicate-resolution scalar path of the vectorized backend."""
    def make_network():
        net = SemanticNetwork()
        for i in range(10):
            net.add_node(f"n{i}")
        for i in range(1, 9):
            net.add_link(0, "r1", i, float(i))
            # All fan back into node 9 with distinct weights: one wave,
            # eight simultaneous arrivals at the same destination.
            net.add_link(i, "r1", 9, 0.5 * i)
        return net

    program = assemble("""
    SEARCH-NODE n0 m0 0.0
    PROPAGATE m0 m1 chain(r1) add-weight
    COLLECT-MARKER m1
    """)
    assert_backends_agree(
        lambda backend: FunctionalEngine(make_network(), 3,
                                         backend=backend),
        program,
    )


def test_negative_cycle_hits_expansion_cap():
    """A negative-cost cycle under min-value re-expansion terminates
    only through the per-(node,state) expansion cap — both backends
    must cut off at the identical arrival."""
    def make_network():
        net = SemanticNetwork()
        for i in range(4):
            net.add_node(f"c{i}")
        for i in range(4):
            net.add_link(i, "r1", (i + 1) % 4, -1.0)
        return net

    program = assemble("""
    SEARCH-NODE c0 m0 0.0
    PROPAGATE m0 m1 chain(r1) add-weight
    COLLECT-MARKER m1
    """)
    assert_backends_agree(
        lambda backend: FunctionalEngine(make_network(), 2,
                                         backend=backend),
        program,
    )


def test_threshold_hop_function():
    """Custom registered hop with a liveness predicate: the vectorized
    backend must apply the predicate with scalar-identical results."""
    def make_engine(backend):
        functions = FunctionRegistry()
        fid = functions.make_threshold(2.5, below=True)
        network = random_network(11, nodes=20, links=70)
        state = MachineState(network, 3, functions=functions)
        engine = FunctionalEngine(network, state=state, backend=backend)
        engine.threshold_fid = fid
        return engine

    probe = make_engine("python")
    program = [
        SearchNode(0, 0, 0.0),
        Propagate(0, 1, chain("r1"), probe.threshold_fid),
        CollectMarker(1),
        CollectNode(1),
    ]
    engine_py, engine_vec = make_engine("python"), make_engine("vectorized")
    facts = []
    for engine in (engine_py, engine_vec):
        facts.append([
            record_facts_one(engine.execute(instr)) for instr in program
        ])
    assert facts[0] == facts[1]
    assert machine_bytes(engine_py) == machine_bytes(engine_vec)


def record_facts_one(record):
    return (
        record.opcode,
        (record.work.words, record.work.nodes, record.work.slots,
         record.work.sets, record.work.fp_ops, record.work.messages,
         record.work.links_made),
        record.alpha, record.max_hops, record.remote_messages,
        record.arrivals, record.result,
    )


def test_runtime_mutation_invalidates_adjacency():
    """CREATE/DELETE between propagations: the vectorized backend's
    cached adjacency must be rebuilt, not silently reused."""
    program = assemble("""
    SEARCH-NODE a b0
    PROPAGATE b0 b1 chain(r1)
    COLLECT-NODE b1
    CREATE a r1 1.0 d
    SEARCH-NODE a b2
    PROPAGATE b2 b3 chain(r1)
    COLLECT-NODE b3
    DELETE b r1 c
    SEARCH-NODE a b4
    PROPAGATE b4 b5 chain(r1)
    COLLECT-NODE b5
    """)

    def make_engine(backend):
        net = SemanticNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_node(name)
        net.add_link(0, "r1", 1, 1.0)
        net.add_link(1, "r1", 2, 1.0)
        return FunctionalEngine(net, 2, backend=backend)

    assert_backends_agree(make_engine, program)

    # And the third sweep really did see the mutated topology.
    engine = make_engine("vectorized")
    result = engine.run(program)
    collects = [r.result for r in result.records if r.result is not None]
    assert len(collects[0]) == 2   # reached from a: b, c
    assert len(collects[1]) == 3   # + d
    assert len(collects[2]) == 2   # - (b -> c): b, d


def test_hierarchy_inheritance_collects_match(fig5_kb):
    program = assemble("""
    SEARCH-NODE w:we m1 0.0
    SEARCH-NODE w:saw m2 0.0
    PROPAGATE m1 m3 spread(is-a,last) add-weight
    PROPAGATE m2 m4 chain(is-a) add-weight
    AND-MARKER m3 m4 m5 min
    COLLECT-NODE m3
    COLLECT-MARKER m4
    """)
    import copy

    assert_backends_agree(
        lambda backend: FunctionalEngine(copy.deepcopy(fig5_kb), 4,
                                         backend=backend),
        program,
    )


def test_baselines_accept_backend():
    """Serial and SIMD baselines produce identical reports on either
    backend (timing included: it derives only from exact counters)."""
    from repro.baselines import SerialMachine, SimdMachine
    from repro.network.generator import generate_hierarchy_kb

    program = assemble("""
    SEARCH-NODE thing b0
    PROPAGATE b0 b1 chain(inverse:is-a)
    COLLECT-NODE b1
    """)
    for machine_cls in (SerialMachine, SimdMachine):
        reports = []
        for backend in ("python", "vectorized"):
            machine = machine_cls(
                generate_hierarchy_kb(120, branching=3), backend=backend
            )
            reports.append(machine.run(program))
        assert reports[0].total_time_us == reports[1].total_time_us
        assert reports[0].results() == reports[1].results()
