"""Propagation semantics vs a naive graph-search oracle.

The engine's breadth-first, partition-distributed, min-cost-fixpoint
propagation must mark exactly the nodes reachable under the rule's
state machine — checked against an independent, obviously-correct BFS
over the (node, rule-state) product graph.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import FunctionalEngine
from repro.isa import Propagate, SearchNode, chain, comb, seq, spread, step
from repro.network import SemanticNetwork

RELATIONS = ("r1", "r2")


def random_graph(seed: int, nodes: int, links: int) -> SemanticNetwork:
    rng = random.Random(seed)
    net = SemanticNetwork()
    for i in range(nodes):
        net.add_node(f"n{i}")
    for _ in range(links):
        net.add_link(
            rng.randrange(nodes), rng.choice(RELATIONS),
            rng.randrange(nodes), 1.0,
        )
    return net


def oracle_reachable(net: SemanticNetwork, rule, source: int) -> set:
    """BFS over the (node, state) product graph; returns marked nodes.

    A node is marked when the marker *arrives* at it — the source
    itself only re-emits (matching the engine's seed semantics).
    """
    marked = set()
    visited = set()
    frontier = [(source, rule.initial_state)]
    while frontier:
        node, state = frontier.pop()
        if (node, state) in visited:
            continue
        visited.add((node, state))
        moves = dict(rule.moves(state))
        for link in net.outgoing(node):
            name = net.relations.name_of(link.relation)
            if name in moves:
                marked.add(link.dest)
                frontier.append((link.dest, moves[name]))
    return marked


RULES = [
    chain("r1"),
    step("r1"),
    seq("r1", "r2"),
    spread("r1", "r2"),
    comb("r1", "r2"),
    spread("r2", "r1"),
]


@given(
    seed=st.integers(0, 5000),
    rule_index=st.integers(0, len(RULES) - 1),
    clusters=st.sampled_from([1, 3, 4]),
)
@settings(max_examples=60, deadline=None)
def test_property_marked_set_matches_oracle(seed, rule_index, clusters):
    rule = RULES[rule_index]
    nodes, links = 15, 35
    net = random_graph(seed, nodes, links)
    source = seed % nodes

    expected = oracle_reachable(net, rule, source)

    engine = FunctionalEngine(random_graph(seed, nodes, links), clusters)
    engine.execute(SearchNode(source, 0, 0.0))
    engine.execute(Propagate(0, 1, rule, "identity"))
    marked = set(engine.state.marker_set_nodes(1))

    assert marked == expected


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_property_min_cost_matches_dijkstra(seed):
    """With add-weight, final marker values equal shortest-path costs
    over r1-links (non-negative weights)."""
    import heapq

    rng = random.Random(seed)
    net = SemanticNetwork()
    nodes = 12
    for i in range(nodes):
        net.add_node(f"n{i}")
    edges = []
    for _ in range(30):
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        w = round(rng.uniform(0.0, 4.0), 2)
        net.add_link(a, "r1", b, w)
        edges.append((a, b, w))
    source = seed % nodes

    # Dijkstra oracle.
    dist = {source: 0.0}
    heap = [(0.0, source)]
    adjacency = {}
    for a, b, w in edges:
        adjacency.setdefault(a, []).append((b, w))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        for v, w in adjacency.get(u, ()):
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))

    engine = FunctionalEngine(net, 3)
    engine.execute(SearchNode(source, 0, 0.0))
    engine.execute(Propagate(0, 1, chain("r1"), "add-weight"))

    expected = {n: d for n, d in dist.items() if n != source}
    # Source may also be marked if it sits on a cycle back to itself.
    for node, cost in expected.items():
        assert engine.state.marker_test(1, node)
        assert abs(engine.state.marker_value(1, node) - cost) < 1e-4
