"""The three Fig. 4 tables: status bits, node properties, relations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tables import (
    ClusterTables,
    MarkerStatusTable,
    NodeTable,
    RelationEntry,
    RelationTable,
    TableError,
    WORD_BITS,
    build_tables,
)
from repro.isa import binary_marker, complex_marker
from repro.network import (
    SemanticNetwork,
    preprocess_fanout,
    round_robin_partition,
)
from repro.network.builder import CONT_RELATION


class TestMarkerStatusTable:
    def test_set_test_clear(self):
        table = MarkerStatusTable(100)
        assert not table.test(3, 42)
        assert table.set(3, 42) is True       # was clear
        assert table.test(3, 42)
        assert table.set(3, 42) is False      # already set
        table.clear(3, 42)
        assert not table.test(3, 42)

    def test_word_packing(self):
        table = MarkerStatusTable(100)
        assert table.num_words == 4  # ceil(100/32)

    def test_set_all_respects_tail_mask(self):
        table = MarkerStatusTable(40)
        table.set_all(2)
        assert table.count(2) == 40  # padding bits not counted

    def test_clear_all(self):
        table = MarkerStatusTable(64)
        table.set_all(1)
        table.clear_all(1)
        assert table.count(1) == 0
        assert not table.any(1)

    def test_and_rows(self):
        table = MarkerStatusTable(70)
        for node in (0, 31, 32, 69):
            table.set(1, node)
        for node in (31, 32, 50):
            table.set(2, node)
        words = table.and_rows(1, 2, 3)
        assert words == table.num_words
        assert table.nodes_with(3) == [31, 32]

    def test_or_rows(self):
        table = MarkerStatusTable(40)
        table.set(1, 0)
        table.set(2, 39)
        table.or_rows(1, 2, 3)
        assert table.nodes_with(3) == [0, 39]

    def test_not_row_keeps_padding_clear(self):
        table = MarkerStatusTable(40)
        table.set(1, 5)
        table.not_row(1, 2)
        expected = [n for n in range(40) if n != 5]
        assert table.nodes_with(2) == expected

    def test_copy_row(self):
        table = MarkerStatusTable(33)
        table.set(0, 32)
        table.copy_row(0, 7)
        assert table.nodes_with(7) == [32]

    def test_nodes_with_ascending(self):
        table = MarkerStatusTable(200)
        for node in (199, 3, 64, 31):
            table.set(9, node)
        assert table.nodes_with(9) == [3, 31, 64, 199]

    def test_nonzero_words(self):
        table = MarkerStatusTable(128)
        table.set(1, 0)
        table.set(1, 127)
        assert table.nonzero_words(1) == 2

    def test_row_view_readonly(self):
        table = MarkerStatusTable(32)
        row = table.row(0)
        with pytest.raises(ValueError):
            row[0] = 1

    def test_grow_within_word(self):
        table = MarkerStatusTable(30)
        table.set(1, 29)
        table.grow(2)
        assert table.num_nodes == 32
        table.set(1, 31)
        assert table.nodes_with(1) == [29, 31]

    def test_grow_adds_words(self):
        table = MarkerStatusTable(32)
        table.set(1, 31)
        table.grow(1)
        assert table.num_words == 2
        table.set_all(2)
        assert table.count(2) == 33

    @given(
        nodes=st.integers(min_value=1, max_value=130),
        picks=st.lists(st.integers(min_value=0, max_value=129), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference_set(self, nodes, picks):
        """Bit-packed table behaves exactly like a Python set."""
        table = MarkerStatusTable(nodes)
        reference = set()
        for p in picks:
            node = p % nodes
            table.set(5, node)
            reference.add(node)
        assert table.nodes_with(5) == sorted(reference)
        assert table.count(5) == len(reference)
        table.not_row(5, 6)
        assert table.nodes_with(6) == sorted(
            set(range(nodes)) - reference
        )


class TestNodeTable:
    def test_complex_value_and_origin(self):
        table = NodeTable(10)
        marker = complex_marker(3)
        table.set_value(4, marker, 2.5, origin=77)
        assert table.get_value(4, marker) == 2.5
        assert table.get_origin(4, marker) == 77

    def test_binary_marker_values_ignored(self):
        table = NodeTable(10)
        marker = binary_marker(3)
        table.set_value(4, marker, 2.5, origin=77)
        assert table.get_value(4, marker) == 0.0
        assert table.get_origin(4, marker) == -1

    def test_clear_value(self):
        table = NodeTable(5)
        table.set_value(1, 0, 9.0, 3)
        table.clear_value(1, 0)
        assert table.get_value(1, 0) == 0.0
        assert table.get_origin(1, 0) == -1

    def test_float32_storage(self):
        table = NodeTable(2)
        table.set_value(0, 0, 1.0e-3)
        assert abs(table.get_value(0, 0) - 1.0e-3) < 1e-9

    def test_grow(self):
        table = NodeTable(3)
        table.set_value(2, 0, 5.0, 1)
        table.grow(2)
        assert table.num_nodes == 5
        assert table.get_value(2, 0) == 5.0
        table.set_value(4, 0, 6.0, 2)
        assert table.get_value(4, 0) == 6.0


class TestRelationTable:
    def entry(self, rel=1, dc=0, dl=0, dg=0, w=0.0):
        return RelationEntry(rel, dc, dl, dg, w)

    def test_add_and_entries(self):
        table = RelationTable(4, cont_relation_id=None)
        table.add(0, self.entry(rel=5, dg=3, w=1.5))
        entries = table.entries(0)
        assert entries == [self.entry(rel=5, dg=3, w=1.5)]

    def test_overflow_spills(self):
        table = RelationTable(1, cont_relation_id=None)
        for i in range(20):
            table.add(0, self.entry(rel=i, dg=i))
        assert table.slots_used(0) == 20
        assert len(table.entries(0)) == 20

    def test_remove_compacts(self):
        table = RelationTable(1, cont_relation_id=None)
        for i in range(3):
            table.add(0, self.entry(rel=i, dg=i))
        assert table.remove(0, 1, 1)
        entries = table.entries(0)
        assert [e.relation for e in entries] == [0, 2]
        assert not table.remove(0, 1, 1)

    def test_remove_from_overflow(self):
        table = RelationTable(1, cont_relation_id=None)
        for i in range(18):
            table.add(0, self.entry(rel=i, dg=i))
        assert table.remove(0, 17, 17)
        assert table.slots_used(0) == 17

    def test_links_of_walks_continuation(self):
        cont = 99
        table = RelationTable(2, cont_relation_id=cont)
        table.add(0, self.entry(rel=1, dg=10))
        table.add(0, RelationEntry(cont, 0, 1, 1, 0.0))  # continue at local 1
        table.add(1, self.entry(rel=2, dg=20))
        entries, scanned = table.links_of(0)
        assert [e.relation for e in entries] == [1, 2]
        assert scanned == 3

    def test_continuation_cycle_detected(self):
        cont = 99
        table = RelationTable(2, cont_relation_id=cont)
        table.add(0, RelationEntry(cont, 0, 1, 1, 0.0))
        table.add(1, RelationEntry(cont, 0, 0, 0, 0.0))
        with pytest.raises(TableError):
            table.links_of(0)

    def test_grow(self):
        table = RelationTable(1, cont_relation_id=None)
        table.add(0, self.entry(rel=1))
        table.grow(1)
        table.add(1, self.entry(rel=2))
        assert table.entries(1)[0].relation == 2
        assert table.entries(0)[0].relation == 1


class TestBuildTables:
    def make_net(self, hub_fanout=0):
        net = SemanticNetwork()
        for i in range(6):
            net.add_node(f"n{i}")
        net.add_link("n0", "r", "n1", 1.0)
        net.add_link("n1", "r", "n2", 2.0)
        for i in range(hub_fanout):
            net.add_node(f"h{i}")
            net.add_link("n3", "r", f"h{i}")
        return net

    def test_addresses_consistent(self):
        net = self.make_net()
        part = round_robin_partition(net, 3)
        tables = build_tables(net, part)
        for cluster in tables:
            for gid, lid in cluster.to_local.items():
                assert cluster.to_global[lid] == gid

    def test_relation_slots_point_to_correct_cluster(self):
        net = self.make_net()
        part = round_robin_partition(net, 3)
        tables = build_tables(net, part)
        src_c, src_l = part.address_of(net.resolve("n0"))
        entries = tables[src_c].relations.entries(src_l)
        assert len(entries) == 1
        dest = entries[0]
        assert dest.dest_global == net.resolve("n1")
        assert tables[dest.dest_cluster].to_global[dest.dest_local] == (
            net.resolve("n1")
        )

    def test_subnodes_rehomed_with_parent(self):
        net = preprocess_fanout(self.make_net(hub_fanout=40))
        part = round_robin_partition(net, 4)
        tables = build_tables(net, part)
        parent_gid = net.resolve("n3")
        parent_cluster = None
        for cluster in tables:
            if parent_gid in cluster.to_local:
                parent_cluster = cluster
        for node in net.nodes():
            if node.parent_id == parent_gid:
                assert node.node_id in parent_cluster.to_local

    def test_continuation_chain_local_and_complete(self):
        net = preprocess_fanout(self.make_net(hub_fanout=40))
        part = round_robin_partition(net, 4)
        tables = build_tables(net, part)
        cid, lid = None, None
        for cluster in tables:
            gid = net.resolve("n3")
            if gid in cluster.to_local:
                cid, lid = cluster.cluster_id, cluster.to_local[gid]
        entries, _scanned = tables[cid].relations.links_of(lid)
        assert len(entries) == 40

    def test_capacity_enforced(self):
        net = self.make_net()
        part = round_robin_partition(net, 2)
        with pytest.raises(TableError):
            build_tables(net, part, capacity=3)

    def test_cluster_add_node(self):
        net = self.make_net()
        part = round_robin_partition(net, 2)
        tables = build_tables(net, part)
        before = tables[0].num_nodes
        local = tables[0].add_node(global_id=500, color=7)
        assert tables[0].num_nodes == before + 1
        assert tables[0].to_local[500] == local
        assert tables[0].node_table.color[local] == 7
