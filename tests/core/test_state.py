"""Instruction semantics on MachineState primitives."""

import pytest

from repro.core import FunctionalEngine, MachineState
from repro.isa import (
    AndMarker,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
    binary_marker,
    chain,
    complex_marker,
)
from repro.network import Color


@pytest.fixture
def engine(fig5_kb):
    return FunctionalEngine(fig5_kb, num_clusters=2)


M0, M1, M2 = complex_marker(0), complex_marker(1), complex_marker(2)
B0 = binary_marker(0)


class TestSearch:
    def test_search_node_sets_one(self, engine):
        engine.execute(SearchNode("w:we", M0, 1.5))
        nodes = engine.state.marker_set_nodes(M0)
        assert nodes == [engine.state.resolve("w:we")]
        assert engine.state.marker_value(M0, "w:we") == 1.5

    def test_search_color(self, engine):
        engine.execute(SearchColor(Color.LEXICAL, M0, 0.0))
        names = {
            engine.state.node_name(g)
            for g in engine.state.marker_set_nodes(M0)
        }
        assert names == {"w:we", "w:saw", "w:terrorists"}

    def test_search_relation(self, engine):
        engine.execute(SearchRelation("first", M0))
        names = {
            engine.state.node_name(g)
            for g in engine.state.marker_set_nodes(M0)
        }
        assert names == {"seeing-event"}

    def test_search_unknown_relation_noop(self, engine):
        engine.execute(SearchRelation("never-registered", M0))
        assert engine.state.marker_set_nodes(M0) == []


class TestSetClear:
    def test_set_marker_everywhere(self, engine):
        engine.execute(SetMarker(M0, 2.0))
        assert len(engine.state.marker_set_nodes(M0)) == (
            engine.state.network.num_nodes
        )
        assert engine.state.marker_value(M0, "w:we") == 2.0

    def test_clear_marker(self, engine):
        engine.execute(SetMarker(M0))
        engine.execute(ClearMarker(M0))
        assert engine.state.marker_set_nodes(M0) == []

    def test_func_marker(self, engine):
        engine.execute(SearchNode("w:we", M0, 3.0))
        engine.execute(FuncMarker(M0, "negate"))
        assert engine.state.marker_value(M0, "w:we") == -3.0

    def test_func_marker_binary_noop(self, engine):
        engine.execute(SearchNode("w:we", B0))
        engine.execute(FuncMarker(B0, "negate"))
        assert engine.state.marker_test(B0, "w:we")


class TestBoolean:
    def test_and_intersects(self, engine):
        engine.execute(SearchNode("w:we", M0, 1.0))
        engine.execute(SearchNode("w:saw", M0, 1.0))
        engine.execute(SearchNode("w:we", M1, 2.0))
        engine.execute(AndMarker(M0, M1, M2, "add"))
        nodes = engine.state.marker_set_nodes(M2)
        assert nodes == [engine.state.resolve("w:we")]
        assert engine.state.marker_value(M2, "w:we") == 3.0

    def test_or_unions(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(SearchNode("w:saw", M1))
        engine.execute(OrMarker(M0, M1, M2))
        names = {
            engine.state.node_name(g)
            for g in engine.state.marker_set_nodes(M2)
        }
        assert names == {"w:we", "w:saw"}

    def test_not_complements(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(NotMarker(M0, M1))
        nodes = set(engine.state.marker_set_nodes(M1))
        assert engine.state.resolve("w:we") not in nodes
        assert len(nodes) == engine.state.network.num_nodes - 1

    def test_not_with_condition(self, engine):
        """m2 := nodes where m1 fails value >= 2 (or is clear)."""
        engine.execute(SearchNode("w:we", M0, 1.0))
        engine.execute(SearchNode("w:saw", M0, 5.0))
        engine.execute(NotMarker(M0, M1, 2.0, "ge"))
        nodes = set(engine.state.marker_set_nodes(M1))
        assert engine.state.resolve("w:we") in nodes        # 1.0 < 2
        assert engine.state.resolve("w:saw") not in nodes   # 5.0 >= 2


class TestMaintenance:
    def test_create_adds_nodes_and_link(self, engine):
        before = engine.state.network.num_nodes
        engine.execute(Create("new-a", "is-a", 0.5, "new-b"))
        net = engine.state.network
        assert net.num_nodes == before + 2
        assert net.outgoing_by_relation("new-a", "is-a")
        # Tables grew consistently.
        cid, lid = engine.state.address("new-a")
        entries, _ = engine.state.clusters[cid].relations.links_of(lid)
        assert entries[0].dest_global == net.resolve("new-b")

    def test_delete_removes_link(self, engine):
        engine.execute(Create("x1", "r", 0.0, "x2"))
        engine.execute(Delete("x1", "r", "x2"))
        assert engine.state.network.outgoing_by_relation("x1", "r") == []

    def test_set_color_updates_both_views(self, engine):
        engine.execute(SetColor("w:we", 9))
        assert engine.state.network.node("w:we").color == 9
        cid, lid = engine.state.address("w:we")
        assert engine.state.clusters[cid].node_table.color[lid] == 9

    def test_marker_create_binds(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(SearchNode("w:saw", M0))
        engine.execute(MarkerCreate(M0, "binding", "result-x", "binding-inverse"))
        net = engine.state.network
        assert "result-x" in net
        result = net.resolve("result-x")
        sources = {
            net.node(l.dest).name
            for l in net.outgoing_by_relation("result-x", "binding-inverse")
        }
        assert sources == {"w:we", "w:saw"}
        for word in ("w:we", "w:saw"):
            forward = net.outgoing_by_relation(word, "binding")
            assert forward and forward[0].dest == result

    def test_marker_delete_unbinds(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(MarkerCreate(M0, "binding", "result-y", "binding-inverse"))
        engine.execute(MarkerDelete(M0, "binding", "result-y", "binding-inverse"))
        net = engine.state.network
        assert net.outgoing_by_relation("w:we", "binding") == []
        assert net.outgoing_by_relation("result-y", "binding-inverse") == []

    def test_marker_set_color(self, engine):
        engine.execute(SearchColor(Color.LEXICAL, M0))
        engine.execute(MarkerSetColor(M0, 42))
        assert engine.state.network.node("w:we").color == 42


class TestCollect:
    def test_collect_node_sorted_names(self, engine):
        engine.execute(SearchNode("w:saw", M0))
        engine.execute(SearchNode("w:we", M0))
        record = engine.execute(CollectNode(M0))
        assert [gid for gid, _ in record.result] == sorted(
            gid for gid, _ in record.result
        )
        assert {name for _, name in record.result} == {"w:we", "w:saw"}

    def test_collect_marker_returns_values_and_origin(self, engine):
        engine.execute(SearchNode("w:we", M0, 4.5))
        record = engine.execute(CollectMarker(M0))
        gid, value, origin = record.result[0]
        assert value == 4.5
        assert origin == gid  # search sets origin = the node itself

    def test_collect_relation(self, engine):
        engine.execute(SearchNode("seeing-event", M0))
        record = engine.execute(CollectRelation(M0, "first"))
        assert len(record.result) == 1
        src, rel, dst, _w = record.result[0]
        assert rel == "first"
        assert engine.state.node_name(dst) == "seeing-event.experiencer"

    def test_collect_color(self, engine):
        engine.execute(SearchNode("w:we", M0))
        record = engine.execute(CollectColor(M0))
        assert record.result == [
            (engine.state.resolve("w:we"), Color.LEXICAL)
        ]

    def test_collect_empty(self, engine):
        record = engine.execute(CollectNode(M2))
        assert record.result == []


class TestPropagationSemantics:
    def test_min_cost_fixpoint(self, diamond_kb):
        """Two paths to dst: the cheaper cost must win regardless of
        exploration order (deterministic fixpoint semantics)."""
        engine = FunctionalEngine(diamond_kb, num_clusters=2)
        engine.execute(SearchNode("src", M0, 0.0))
        engine.execute(Propagate(M0, M1, chain("r"), "add-weight"))
        assert engine.state.marker_value(M1, "dst") == 2.0

    def test_cycle_terminates(self):
        from repro.network import SemanticNetwork

        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b", 1.0)
        net.add_link("b", "r", "a", 1.0)
        engine = FunctionalEngine(net)
        engine.execute(SearchNode("a", M0, 0.0))
        record = engine.execute(Propagate(M0, M1, chain("r"), "add-weight"))
        assert set(engine.state.marker_set_nodes(M1)) == {0, 1}
        assert record.arrivals >= 2

    def test_negative_cycle_capped(self):
        from repro.network import SemanticNetwork

        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b", -1.0)
        net.add_link("b", "r", "a", -1.0)
        engine = FunctionalEngine(net)
        engine.execute(SearchNode("a", M0, 0.0))
        # Must terminate (expansion cap) despite ever-decreasing cost.
        record = engine.execute(Propagate(M0, M1, chain("r"), "add-weight"))
        assert record.arrivals <= 2 * 64 + 2

    def test_threshold_function_limits_reach(self, chain_kb):
        engine = FunctionalEngine(chain_kb)
        token = engine.state.functions.make_threshold(3.0)
        engine.execute(SearchNode("a0", M0, 0.0))
        engine.execute(Propagate(M0, M1, chain("r"), token))
        names = {
            engine.state.node_name(g)
            for g in engine.state.marker_set_nodes(M1)
        }
        # weights 1,2,3,4,5 cumulative 1,3,6,... -> die after a2.
        assert names == {"a1", "a2"}

    def test_alpha_counts_seeds(self, fig5_kb):
        engine = FunctionalEngine(fig5_kb)
        engine.execute(SearchColor(Color.LEXICAL, M0))
        record = engine.execute(Propagate(M0, M1, chain("is-a"), "identity"))
        assert record.alpha == 3

    def test_origin_propagates_to_destination(self, chain_kb):
        engine = FunctionalEngine(chain_kb)
        engine.execute(SearchNode("a0", M0, 0.0))
        engine.execute(Propagate(M0, M1, chain("r"), "add-weight"))
        cid, lid = engine.state.address("a5")
        origin = engine.state.clusters[cid].node_table.get_origin(lid, M1)
        assert origin == engine.state.resolve("a0")


class TestOutOfBandMutation:
    def test_clean_error_for_unhosted_node(self, fig5_kb):
        """Mutating the network object directly (instead of using
        CREATE) must produce an actionable error, not a KeyError."""
        from repro.core.state import ExecutionError

        engine = FunctionalEngine(fig5_kb, num_clusters=2)
        engine.state.network.add_node("rogue")
        with pytest.raises(ExecutionError, match="CREATE"):
            engine.execute(SearchNode("rogue", M0))
