"""Controller housekeeping: result-node garbage collection (§III-C)."""

import pytest

from repro.core import FunctionalEngine
from repro.isa import (
    CollectNode,
    MarkerCreate,
    MarkerDelete,
    SearchNode,
    complex_marker,
)
from repro.machine import MachineConfig, SnapMachine
from repro.network import Color

M0 = complex_marker(0)


@pytest.fixture
def engine(fig5_kb):
    return FunctionalEngine(fig5_kb, num_clusters=2)


def bind_and_unbind(engine, result_name):
    engine.execute(SearchNode("w:we", M0))
    engine.execute(
        MarkerCreate(M0, "binding", result_name, "binding-inverse")
    )
    engine.execute(
        MarkerDelete(M0, "binding", result_name, "binding-inverse")
    )


class TestGarbageCollect:
    def test_orphaned_result_node_reclaimed(self, engine):
        bind_and_unbind(engine, "result:1")
        assert engine.state.garbage_collect() == 1
        assert engine.state.free_node_slots == 1
        assert "result:1" not in engine.state.network

    def test_live_result_node_kept(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(
            MarkerCreate(M0, "binding", "result:live", "binding-inverse")
        )
        assert engine.state.garbage_collect() == 0
        assert "result:live" in engine.state.network

    def test_reclaimed_slot_reused(self, engine):
        bind_and_unbind(engine, "result:old")
        engine.state.garbage_collect()
        nodes_before = engine.state.network.num_nodes
        engine.execute(SearchNode("w:saw", M0))
        engine.execute(
            MarkerCreate(M0, "binding", "result:new", "binding-inverse")
        )
        # The new result node reuses the freed physical slot.
        assert engine.state.network.num_nodes == nodes_before
        assert engine.state.free_node_slots == 0
        assert "result:new" in engine.state.network
        assert engine.state.network.node("result:new").color == Color.RESULT

    def test_markers_wiped_on_reclaim(self, engine):
        engine.execute(SearchNode("w:we", M0))
        engine.execute(
            MarkerCreate(M0, "binding", "result:x", "binding-inverse")
        )
        gid = engine.state.resolve("result:x")
        # Mark the result node directly, then orphan and collect it.
        engine.execute(SearchNode("result:x", M0))
        engine.execute(
            MarkerDelete(M0, "binding", "result:x", "binding-inverse")
        )
        # MarkerDelete above used M0 which includes result:x itself; the
        # self-binding link (result:x -> result:x) never existed, so
        # only the w:we links were removed.
        assert engine.state.garbage_collect() == 1
        # Reuse the slot and confirm the old marker is gone.
        engine.state.ensure_node("result:fresh")
        assert not engine.state.marker_test(M0, "result:fresh")

    def test_idempotent(self, engine):
        bind_and_unbind(engine, "result:1")
        assert engine.state.garbage_collect() == 1
        assert engine.state.garbage_collect() == 0

    def test_non_result_nodes_never_collected(self, engine):
        # Lexical nodes with no links would not be collected even if
        # isolated (only RESULT-colored nodes are GC candidates).
        before = engine.state.network.num_nodes
        assert engine.state.garbage_collect() == 0
        assert engine.state.network.num_nodes == before


class TestMachineHousekeeping:
    def test_housekeep_between_programs(self, fig5_kb):
        machine = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        machine.run([
            SearchNode("w:we", M0),
            MarkerCreate(M0, "binding", "result:s1", "binding-inverse"),
            MarkerDelete(M0, "binding", "result:s1", "binding-inverse"),
        ])
        assert machine.housekeep() == 1
        # Machine still runs fine afterwards.
        results = machine.run_and_collect([CollectNode(M0)])
        assert results[-1]
