"""The golden property: partitioning must not change semantics.

The same program run on 1 cluster and on N clusters (any allocation
policy) must produce identical final marker state — this is what makes
the paper's claim *"their physical allocation remains transparent,
regardless of the number of PE's or the size of semantic network
used"* (§II-B) true of this implementation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FunctionalEngine
from repro.isa import (
    AndMarker,
    ClearMarker,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SetMarker,
    SnapProgram,
    chain,
    comb,
    seq,
    spread,
    step,
)
from repro.network import SemanticNetwork

RELATIONS = ("r1", "r2", "r3")
MARKERS = tuple(range(6)) + tuple(range(64, 67))  # complex + binary


def random_network(seed: int, nodes: int, links: int) -> SemanticNetwork:
    rng = random.Random(seed)
    net = SemanticNetwork()
    colors = [0, 1, 2]
    for i in range(nodes):
        net.add_node(f"n{i}", color=rng.choice(colors))
    for _ in range(links):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        net.add_link(a, rng.choice(RELATIONS), b,
                     round(rng.uniform(0.0, 3.0), 2))
    return net


def random_program(seed: int, nodes: int, length: int) -> SnapProgram:
    rng = random.Random(seed)
    rules = [
        chain(rng.choice(RELATIONS)),
        spread(rng.choice(RELATIONS), rng.choice(RELATIONS)),
        seq(rng.choice(RELATIONS), rng.choice(RELATIONS)),
        comb(rng.choice(RELATIONS), rng.choice(RELATIONS)),
        step(rng.choice(RELATIONS)),
    ]
    program = SnapProgram(name=f"random-{seed}")
    for _ in range(length):
        kind = rng.randrange(7)
        m1, m2, m3 = (rng.choice(MARKERS) for _ in range(3))
        if kind == 0:
            program.append(SearchNode(rng.randrange(nodes), m1,
                                      round(rng.uniform(0, 2), 2)))
        elif kind == 1:
            program.append(SearchColor(rng.choice([0, 1, 2]), m1))
        elif kind == 2:
            program.append(
                Propagate(m1, m2, rng.choice(rules), "add-weight")
            )
        elif kind == 3:
            program.append(AndMarker(m1, m2, m3, "min"))
        elif kind == 4:
            program.append(OrMarker(m1, m2, m3, "max"))
        elif kind == 5:
            program.append(NotMarker(m1, m2))
        else:
            program.append(
                SetMarker(m1, 1.0) if rng.random() < 0.5
                else ClearMarker(m1)
            )
    return program


def final_state(network, program, clusters, policy):
    engine = FunctionalEngine(network, clusters, policy)
    engine.run(program)
    state = {}
    for marker in MARKERS:
        nodes = engine.state.marker_set_nodes(marker)
        values = None
        if marker < 64:
            values = tuple(
                round(engine.state.marker_value(marker, n), 4)
                for n in nodes
            )
        state[marker] = (tuple(nodes), values)
    return state


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_cluster_count_transparent(seed):
    net_seed, prog_seed = seed, seed + 131
    network = random_network(net_seed, nodes=24, links=60)
    program = random_program(prog_seed, nodes=24, length=12)
    reference = final_state(
        random_network(net_seed, 24, 60), program, 1, "round-robin"
    )
    for clusters, policy in ((3, "round-robin"), (5, "semantic"),
                             (4, "sequential")):
        state = final_state(
            random_network(net_seed, 24, 60), program, clusters, policy
        )
        assert state == reference, (
            f"{clusters} clusters/{policy} diverged from 1-cluster run"
        )


@pytest.mark.parametrize("clusters", [2, 4, 8])
def test_fig5_program_partition_invariant(fig5_kb, clusters):
    from repro.isa import assemble

    program = assemble("""
    SEARCH-NODE w:we m1 0.0
    SEARCH-NODE w:saw m2 0.0
    PROPAGATE m1 m3 spread(is-a,last) add-weight
    PROPAGATE m2 m4 chain(is-a) add-weight
    AND-MARKER m3 m4 m5 min
    NOT-MARKER m5 b0
    COLLECT-NODE m3
    """)
    ref_engine = FunctionalEngine(fig5_kb, 1)
    reference = ref_engine.run(program).records[-1].result

    import copy

    engine = FunctionalEngine(copy.deepcopy(fig5_kb), clusters)
    result = engine.run(program).records[-1].result
    assert result == reference
