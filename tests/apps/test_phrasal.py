"""Phrasal parser (serial controller chunker)."""

import pytest

from repro.apps.nlu import Lexicon, PhraseKind, PhrasalParser


@pytest.fixture
def parser():
    return PhrasalParser(Lexicon())


class TestChunking:
    def test_simple_svo(self, parser):
        result = parser.parse("terrorists attacked the mayor")
        kinds = [p.kind for p in result.phrases]
        assert kinds == [PhraseKind.NP, PhraseKind.VP, PhraseKind.NP]
        assert result.phrases[0].head == "terrorists"
        assert result.phrases[2].head == "mayor"

    def test_np_with_determiner_and_adjectives(self, parser):
        result = parser.parse("the powerful bomb")
        assert len(result.phrases) == 1
        phrase = result.phrases[0]
        assert phrase.kind == PhraseKind.NP
        assert phrase.words == ["the", "powerful", "bomb"]
        assert phrase.head == "bomb"
        assert phrase.content == ["powerful", "bomb"]

    def test_prepositional_phrase(self, parser):
        result = parser.parse("in bogota")
        phrase = result.phrases[0]
        assert phrase.kind == PhraseKind.PP
        assert phrase.head == "bogota"
        assert "in" in phrase.words

    def test_verb_group_with_adverb(self, parser):
        result = parser.parse("reportedly attacked")
        phrase = result.phrases[0]
        assert phrase.kind == PhraseKind.VP
        assert phrase.head == "attacked"

    def test_conjunction_is_other(self, parser):
        result = parser.parse("soldiers and rebels")
        kinds = [p.kind for p in result.phrases]
        assert kinds == [PhraseKind.NP, PhraseKind.OTHER, PhraseKind.NP]

    def test_every_token_covered(self, parser):
        sentence = ("the army reported unidentified terrorists exploded "
                    "a powerful bomb against the pipeline in medellin")
        result = parser.parse(sentence)
        covered = [w for p in result.phrases for w in p.words]
        assert covered == result.tokens

    def test_trailing_determiner(self, parser):
        result = parser.parse("attacked the")
        assert [p.kind for p in result.phrases] == [
            PhraseKind.VP, PhraseKind.NP
        ]


class TestTiming:
    def test_pp_time_linear_in_tokens(self, parser):
        short = parser.parse("terrorists attacked")
        long = parser.parse("terrorists attacked the mayor in bogota")
        per_token = parser.t_per_token_us
        assert long.pp_time_us - short.pp_time_us == pytest.approx(
            per_token * (long.num_words - short.num_words)
        )

    def test_pp_time_independent_of_kb(self, parser):
        """The phrasal parser never touches the KB at all."""
        result = parser.parse("guerrillas bombed the embassy")
        assert result.pp_time_us == parser.t_fixed_us + 4 * parser.t_per_token_us
