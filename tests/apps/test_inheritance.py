"""Property inheritance and classification applications."""

import pytest

from repro.apps import (
    classification_program,
    classify,
    inheritance_program,
    install_property,
    property_lookup_program,
    run_inheritance,
)
from repro.apps.classification import ClassificationError
from repro.baselines import SerialMachine
from repro.machine import MachineConfig, SnapMachine
from repro.network import HIERARCHY_ROOT, generate_hierarchy_kb


class TestInheritance:
    def test_all_concepts_inherit(self):
        net = generate_hierarchy_kb(100)
        machine = SnapMachine(
            net, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        report = machine.run(inheritance_program(num_properties=1))
        inherited = report.results()[-1]
        # Every concept except the root receives the marker.
        assert len(inherited) == 99

    def test_one_collect_per_property(self):
        net = generate_hierarchy_kb(50)
        machine = SerialMachine(net)
        report = machine.run(inheritance_program(num_properties=3))
        assert len(report.results()) == 3

    def test_run_inheritance_helper(self):
        net = generate_hierarchy_kb(60)
        machine = SerialMachine(net)
        run = run_inheritance(machine, kb_nodes=60, label="serial")
        assert run.kb_nodes == 60
        assert run.inherited == 59
        assert run.time_us > 0
        assert run.time_s == pytest.approx(run.time_us / 1e6)

    def test_property_lookup_positive(self):
        net = generate_hierarchy_kb(40, properties_at_root=2)
        machine = SerialMachine(net)
        # Any concept inherits the root's properties via is-a.
        report = machine.run(property_lookup_program("c7", "attr0"))
        assert report.results()[-1], "attr0 must be inherited"

    def test_property_lookup_negative(self):
        net = generate_hierarchy_kb(40, properties_at_root=1)
        net.ensure_node("p:unrelated")
        machine = SerialMachine(net)
        report = machine.run(property_lookup_program("c7", "unrelated"))
        assert report.results()[-1] == []

    def test_bigger_hierarchy_takes_longer(self):
        small = SerialMachine(generate_hierarchy_kb(100)).run(
            inheritance_program()
        )
        large = SerialMachine(generate_hierarchy_kb(800)).run(
            inheritance_program()
        )
        assert large.total_time_us > small.total_time_us


class TestClassification:
    @pytest.fixture
    def property_kb(self):
        net = generate_hierarchy_kb(60, properties_at_root=0)
        # c1..c4 are the root's children; attach distinct properties.
        install_property(net, "c1", "red")
        install_property(net, "c2", "red")
        install_property(net, "c1", "fast")
        return net

    def test_single_property_query(self, property_kb):
        machine = SerialMachine(property_kb)
        result = classify(machine, ["red"])
        # Everything under c1 or c2 (plus themselves).
        assert "c1" in result.matches
        assert "c2" in result.matches
        assert "c3" not in result.matches

    def test_conjunctive_query(self, property_kb):
        machine = SerialMachine(property_kb)
        result = classify(machine, ["red", "fast"])
        assert "c1" in result.matches
        assert "c2" not in result.matches  # red but not fast

    def test_subtree_inherits_property(self, property_kb):
        machine = SerialMachine(property_kb)
        result = classify(machine, ["fast"])
        net = property_kb
        children_of_c1 = {
            net.node(l.dest).name
            for l in net.outgoing_by_relation("c1", "inverse:is-a")
        }
        assert children_of_c1 <= set(result.matches)

    def test_empty_query_rejected(self):
        with pytest.raises(ClassificationError):
            classification_program([])

    def test_too_many_properties_rejected(self):
        with pytest.raises(ClassificationError):
            classification_program([f"p{i}" for i in range(9)])

    def test_timing_recorded(self, property_kb):
        machine = SerialMachine(property_kb)
        result = classify(machine, ["red"])
        assert result.time_us > 0
        assert result.properties == ("red",)

    def test_parallel_machine_agrees(self, property_kb):
        import copy

        serial = classify(SerialMachine(copy.deepcopy(property_kb)), ["red"])
        snap = classify(
            SnapMachine(copy.deepcopy(property_kb),
                        MachineConfig(num_clusters=4, mus_per_cluster=2)),
            ["red"],
        )
        assert sorted(serial.matches) == sorted(snap.matches)
