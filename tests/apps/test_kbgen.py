"""Domain knowledge-base generator."""

import pytest

from repro.apps.nlu import (
    CORE_SEQUENCES,
    DomainKB,
    build_domain_kb,
)
from repro.network import Color, nonlexical_proportions


@pytest.fixture(scope="module")
def kb() -> DomainKB:
    return build_domain_kb(total_nodes=2000)


class TestCore:
    def test_core_sequences_present(self, kb):
        for name, _cost, _elements in CORE_SEQUENCES:
            assert name in kb.network
            assert kb.network.node(name).color == Color.CS_ROOT

    def test_seeing_event_matches_paper_fig1(self, kb):
        """The paper's example: experiencer must be animate + NP."""
        net = kb.network
        constraints = {
            net.node(l.dest).name
            for l in net.outgoing_by_relation(
                "seeing-event.experiencer", "is-a"
            )
        }
        assert constraints == {"animate", "noun-phrase"}

    def test_aux_sequences_attached(self, kb):
        net = kb.network
        assert net.node("time-case").color == Color.CS_AUX
        aux_links = net.outgoing_by_relation("time-case", "aux")
        assert aux_links

    def test_vocabulary_loaded(self, kb):
        assert kb.has_word("terrorists")
        assert kb.has_word("Bogota")
        assert not kb.has_word("zyzzyva")

    def test_word_reaches_root_via_is_a(self, kb):
        """Deep taxonomy: a word's is-a chain reaches *thing* in
        several hops (paper path lengths)."""
        net = kb.network
        frontier = {net.resolve("w:terrorists")}
        seen = set()
        depth = 0
        root = net.resolve("thing")
        while frontier and root not in seen:
            depth += 1
            nxt = set()
            for nid in frontier:
                for link in net.outgoing_by_relation(nid, "is-a"):
                    if link.dest not in seen:
                        seen.add(link.dest)
                        nxt.add(link.dest)
            frontier = nxt
            assert depth < 20
        assert root in seen
        # Words carry direct shortcuts to salient classes, but the
        # taxonomy itself still takes several hops to the root.
        assert depth >= 3


class TestFiller:
    def test_target_size_respected(self, kb):
        assert abs(kb.num_nodes - 2000) / 2000 < 0.06

    def test_nonlexical_mix_near_paper(self, kb):
        mix = nonlexical_proportions(kb.network)
        assert mix["concept-sequences"] > 0.55
        assert 0.05 < mix["hierarchy"] < 0.35

    def test_filler_competes_on_core_classes(self, kb):
        """Some filler sequences must constrain on core classes so
        they activate on real input (the Fig. 20 mechanism)."""
        net = kb.network
        competing = 0
        for root in kb.cs_roots:
            if not root.startswith("fcs-"):
                continue
            first = net.outgoing_by_relation(root, "first")
            element = first[0].dest
            for link in net.outgoing_by_relation(element, "is-a"):
                if not net.node(link.dest).name.startswith("fc-"):
                    competing += 1
                    break
        assert competing > 0

    def test_more_nodes_more_candidate_sequences(self):
        small = build_domain_kb(total_nodes=1000)
        large = build_domain_kb(total_nodes=3000)
        assert len(large.cs_roots) > len(small.cs_roots)

    def test_deterministic(self):
        a = build_domain_kb(total_nodes=1200, seed=5)
        b = build_domain_kb(total_nodes=1200, seed=5)
        assert a.num_nodes == b.num_nodes
        assert a.num_links == b.num_links

    def test_core_only_build(self):
        kb = build_domain_kb(total_nodes=0)
        assert kb.cs_roots == kb.core_roots
        kb.network.validate()
