"""MUC-style template extraction from parses."""

import pytest

from repro.apps.nlu import (
    MemoryBasedParser,
    build_domain_kb,
    extract_template,
    extract_text,
)
from repro.machine import MachineConfig, SnapMachine


@pytest.fixture(scope="module")
def kb():
    return build_domain_kb(total_nodes=1500)


@pytest.fixture(scope="module")
def parser(kb):
    machine = SnapMachine(
        kb.network, MachineConfig(num_clusters=8, mus_per_cluster=2)
    )
    return MemoryBasedParser(machine, kb)


class TestRoleFilling:
    def test_attack_roles(self, parser, kb):
        result = parser.parse(
            "terrorists attacked the mayor in bogota yesterday"
        )
        template = extract_template(result, kb)
        assert template.event_type == "attack-event"
        assert template.roles["attacker"] == ["terrorists"]
        assert template.roles["attack"] == ["attacked"]
        assert template.roles["victim"] == ["mayor"]

    def test_same_constraint_roles_disambiguated_by_order(self, parser, kb):
        """kidnapper and victim are both human: word order decides."""
        result = parser.parse("guerrillas kidnapped the ambassador")
        template = extract_template(result, kb)
        assert template.roles["kidnapper"] == ["guerrillas"]
        assert template.roles["victim"] == ["ambassador"]

    def test_modifiers_filled(self, parser, kb):
        result = parser.parse(
            "terrorists attacked the mayor in bogota yesterday"
        )
        template = extract_template(result, kb)
        assert template.modifiers.get("time-case") == ["yesterday"]
        assert template.modifiers.get("location-case") == ["bogota"]

    def test_no_parse_no_template(self, parser, kb):
        result = parser.parse("in of the")
        assert extract_template(result, kb) is None

    def test_confidence_cost_carried(self, parser, kb):
        result = parser.parse("terrorists attacked the mayor")
        template = extract_template(result, kb)
        assert template.confidence_cost == result.cost

    def test_render_contains_roles(self, parser, kb):
        result = parser.parse("terrorists attacked the mayor")
        text = extract_template(result, kb).render()
        assert "attack-event" in text
        assert "attacker" in text
        assert "terrorists" in text


class TestBulkExtraction:
    def test_extract_text_skips_failures(self, parser, kb):
        results = parser.parse_text([
            "terrorists attacked the mayor",
            "in of the",
        ])
        templates = extract_text(results, kb)
        assert len(templates) == 1
        assert templates[0].event_type == "attack-event"

    def test_binding_details_populated(self, parser):
        result = parser.parse("terrorists attacked the mayor")
        assert result.binding_details
        names = {name for name, _c, _o in result.binding_details}
        assert any(n.startswith("attack-event.") for n in names)
