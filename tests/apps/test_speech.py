"""PASS-style speech understanding."""

import pytest

from repro.apps import (
    LatticeError,
    MAX_ALTERNATIVES,
    SpeechParser,
    WordHypothesis,
    WordLattice,
    synthesize_lattice,
)
from repro.apps.nlu import build_domain_kb
from repro.machine import MachineConfig, SnapMachine


@pytest.fixture(scope="module")
def kb():
    return build_domain_kb(total_nodes=1500)


@pytest.fixture
def speech(kb):
    machine = SnapMachine(
        kb.network, MachineConfig(num_clusters=8, mus_per_cluster=2)
    )
    return SpeechParser(machine, kb)


class TestLattice:
    def test_slots_sorted_by_cost(self):
        lattice = WordLattice()
        lattice.add_slot([
            WordHypothesis("embassy", 0.9),
            WordHypothesis("army", 0.2),
        ])
        assert lattice.slots[0][0].word == "army"
        assert lattice.best_path() == ["army"]

    def test_empty_slot_rejected(self):
        with pytest.raises(LatticeError):
            WordLattice().add_slot([])

    def test_too_many_alternatives_rejected(self):
        with pytest.raises(LatticeError):
            WordLattice().add_slot(
                [WordHypothesis(f"w{i}", 0.1)
                 for i in range(MAX_ALTERNATIVES + 1)]
            )

    def test_synthesize_deterministic(self):
        a = synthesize_lattice("terrorists attacked", seed=3)
        b = synthesize_lattice("terrorists attacked", seed=3)
        assert a.slots == b.slots

    def test_synthesize_reference_is_best(self):
        lattice = synthesize_lattice(
            "terrorists attacked the mayor", confusability=1.0
        )
        assert lattice.best_path() == [
            "terrorists", "attacked", "the", "mayor"
        ]

    def test_confusability_zero_gives_linear_lattice(self):
        lattice = synthesize_lattice("terrorists attacked", confusability=0.0)
        assert lattice.mean_branching == 1.0


class TestUnderstanding:
    def test_clean_utterance_understood(self, speech):
        lattice = synthesize_lattice(
            "terrorists attacked the mayor in bogota", confusability=0.0
        )
        result = speech.understand(lattice)
        assert result.winner == "attack-event"
        assert result.cost is not None

    def test_noisy_utterance_still_understood(self, speech):
        lattice = synthesize_lattice(
            "guerrillas bombed the embassy", confusability=1.0
        )
        result = speech.understand(lattice)
        assert result.winner == "attack-event"

    def test_acoustic_cost_enters_hypothesis_cost(self, speech):
        cheap = WordLattice()
        dear = WordLattice()
        for word in ("terrorists", "attacked", "mayor"):
            cheap.add_slot([WordHypothesis(word, 0.1)])
            dear.add_slot([WordHypothesis(word, 0.9)])
        cost_cheap = speech.understand(cheap).cost
        cost_dear = speech.understand(dear).cost
        assert cost_cheap < cost_dear

    def test_beta_grows_with_branching(self, speech):
        narrow = speech.understand(
            synthesize_lattice("terrorists attacked the mayor",
                               confusability=0.0)
        )
        wide = speech.understand(
            synthesize_lattice("terrorists attacked the mayor",
                               confusability=1.0)
        )
        assert wide.beta_max > narrow.beta_max
        assert wide.beta_max >= 3

    def test_gap_tolerance(self, speech):
        """Function-word slots must not break sequence predictions."""
        lattice = WordLattice()
        for word in ("terrorists", "attacked", "the", "the", "mayor"):
            lattice.add_slot([WordHypothesis(word, 0.2)])
        result = speech.understand(lattice)
        assert result.winner == "attack-event"

    def test_oov_slots_skipped(self, speech):
        lattice = WordLattice()
        lattice.add_slot([WordHypothesis("zyzzyva", 0.1)])
        lattice.add_slot([WordHypothesis("terrorists", 0.1)])
        lattice.add_slot([WordHypothesis("attacked", 0.1)])
        lattice.add_slot([WordHypothesis("mayor", 0.1)])
        result = speech.understand(lattice)
        assert result.winner == "attack-event"

    def test_measurements_populated(self, speech):
        result = speech.understand(
            synthesize_lattice("guerrillas bombed the embassy")
        )
        assert result.time_us > 0
        assert result.instruction_count > 0
        assert result.beta_runs
        assert result.beta_mean <= result.beta_max
