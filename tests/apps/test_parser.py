"""Memory-based parser: end-to-end parses on three machine models."""

import pytest

from repro.apps.nlu import (
    MemoryBasedParser,
    build_domain_kb,
    sentences,
)
from repro.baselines import SerialMachine, SimdMachine
from repro.machine import MachineConfig, SnapMachine


@pytest.fixture(scope="module")
def kb():
    return build_domain_kb(total_nodes=1500)


@pytest.fixture()
def parser(kb):
    machine = SnapMachine(
        kb.network, MachineConfig(num_clusters=8, mus_per_cluster=2)
    )
    return MemoryBasedParser(machine, kb)


class TestParses:
    def test_s1_attack_event(self, parser):
        result = parser.parse("terrorists attacked the mayor in bogota")
        assert result.winner == "attack-event"
        assert result.cost is not None
        assert result.oov == []

    def test_s3_kidnap_event(self, parser):
        result = parser.parse(
            "several armed men kidnapped the ambassador near the "
            "residence in lima"
        )
        assert result.winner == "kidnap-event"

    def test_bombing_event(self, parser):
        result = parser.parse(
            "terrorists exploded a powerful bomb"
        )
        assert result.winner == "bombing-event"

    def test_seeing_event_from_paper(self, parser):
        result = parser.parse("we saw the explosion")
        # Paper's Fig. 1 example sequence competes here; any completed
        # hypothesis list must include it.
        names = [name for name, _cost in result.candidates]
        assert "seeing-event" in names

    def test_winner_is_cheapest_candidate(self, parser):
        result = parser.parse("guerrillas bombed the embassy")
        costs = [cost for _name, cost in result.candidates]
        assert costs == sorted(costs)
        assert result.cost == costs[0]

    def test_time_case_auxiliary_completes(self, parser):
        result = parser.parse("terrorists attacked the mayor yesterday")
        assert "time-case" in result.auxiliaries

    def test_no_parse_for_gibberish(self, parser):
        result = parser.parse("in of the")
        assert result.winner is None
        assert result.candidates == []

    def test_oov_words_reported(self, parser):
        result = parser.parse("terrorists attacked the mayor zyzzyva")
        assert "zyzzyva" in result.oov
        assert result.winner is not None  # parse continues around OOV

    def test_bindings_present_for_winner(self, parser):
        result = parser.parse("terrorists attacked the mayor")
        assert result.bindings, "confirmed elements must be bound"
        assert any("attack-event" in b for b in result.bindings)


class TestMeasurements:
    def test_times_positive_and_split(self, parser):
        result = parser.parse(sentences()[0])
        assert result.pp_time_us > 0
        assert result.mb_time_us > 0
        assert result.total_time_us == (
            result.pp_time_us + result.mb_time_us
        )

    def test_instruction_counts(self, parser):
        result = parser.parse(sentences()[1])
        assert result.instruction_count == sum(
            result.category_counts.values()
        )
        assert result.propagate_count == result.category_counts["propagate"]
        assert result.propagation_events > result.propagate_count

    def test_longer_sentence_costs_more(self, parser):
        short = parser.parse("terrorists attacked")
        long = parser.parse(
            "unidentified terrorists attacked the mayor near the "
            "residence in bogota yesterday morning"
        )
        assert long.mb_time_us > short.mb_time_us
        assert long.instruction_count > short.instruction_count

    def test_keep_trace_logs_segments(self, kb):
        machine = SnapMachine(
            kb.network, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        parser = MemoryBasedParser(machine, kb, keep_trace=True)
        parser.parse("terrorists attacked the mayor")
        assert parser.trace_log
        programs, reports = zip(*parser.trace_log)
        assert sum(len(p) for p in programs) == sum(
            len(r.traces) for r in reports
        )

    def test_parse_text_bulk(self, parser):
        results = parser.parse_text(sentences()[:2])
        assert len(results) == 2


class TestCrossMachine:
    """The same parse on three architectures: identical linguistics,
    different time — the paper's comparison methodology."""

    @pytest.fixture(scope="class")
    def results(self):
        outcome = {}
        sentence = "guerrillas bombed the embassy in bogota"
        for label, factory in {
            "snap": lambda net: SnapMachine(
                net, MachineConfig(num_clusters=8, mus_per_cluster=2)
            ),
            "serial": SerialMachine,
            "simd": SimdMachine,
        }.items():
            kb = build_domain_kb(total_nodes=1200)
            machine = factory(kb.network)
            outcome[label] = MemoryBasedParser(machine, kb).parse(sentence)
        return outcome

    def test_same_winner_everywhere(self, results):
        winners = {r.winner for r in results.values()}
        assert len(winners) == 1

    def test_same_candidates_everywhere(self, results):
        candidate_sets = {
            tuple(r.candidates) for r in results.values()
        }
        assert len(candidate_sets) == 1

    def test_simd_is_slowest(self, results):
        assert results["simd"].mb_time_us > results["snap"].mb_time_us

    def test_parallel_beats_serial(self, results):
        assert results["snap"].mb_time_us < results["serial"].mb_time_us
