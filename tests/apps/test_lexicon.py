"""Lexicon and tokenizer."""

from repro.apps.nlu import Lexicon, POS, tokenize


class TestLexicon:
    def test_core_word_lookup(self):
        lexicon = Lexicon()
        entry = lexicon.lookup("terrorists")
        assert entry.pos == POS.NOUN
        assert "terrorist" in entry.classes
        assert "animate" in entry.classes

    def test_lookup_case_insensitive(self):
        lexicon = Lexicon()
        assert lexicon.lookup("Bogota").classes == lexicon.lookup("bogota").classes

    def test_unknown_word_falls_back_to_noun(self):
        lexicon = Lexicon()
        entry = lexicon.lookup("zyzzyva")
        assert entry.pos == POS.NOUN
        assert entry.classes == ("entity",)

    def test_contains(self):
        lexicon = Lexicon()
        assert "attacked" in lexicon
        assert "zyzzyva" not in lexicon

    def test_add_word(self):
        lexicon = Lexicon()
        lexicon.add("jeep", POS.NOUN, ("vehicle",))
        assert lexicon.lookup("jeep").classes == ("vehicle",)

    def test_syntax_class_mapping(self):
        lexicon = Lexicon()
        assert lexicon.lookup("attacked").syntax_class == "verb"
        assert lexicon.lookup("the").syntax_class == "determiner"
        assert lexicon.lookup("we").syntax_class == "noun"  # pronoun -> NP head

    def test_function_words_have_no_semantic_classes(self):
        lexicon = Lexicon()
        assert lexicon.lookup("the").classes == ()
        assert lexicon.lookup("in").classes == ()

    def test_words_and_entries_sorted(self):
        lexicon = Lexicon()
        words = lexicon.words()
        assert words == sorted(words)
        assert len(lexicon.entries()) == len(lexicon)


class TestTokenizer:
    def test_lowercases_and_strips_punctuation(self):
        assert tokenize("Terrorists attacked, yesterday!") == [
            "terrorists", "attacked", "yesterday"
        ]

    def test_numbers_kept(self):
        assert tokenize("5 soldiers") == ["5", "soldiers"]

    def test_empty(self):
        assert tokenize("...") == []
