"""ServingHost behavior: admission, deadlines, retries, hedging,
breakers, determinism, and the serial-equivalence guarantee."""

import pytest

from repro.host import (
    HostConfig,
    HostConfigError,
    HostError,
    Query,
    QueryStatus,
    ServingHost,
    run_serial,
)
from repro.isa import assemble
from repro.machine.faults import FaultConfig, RetryPolicy
from repro.network.generator import generate_hierarchy_kb

PROGRAM = assemble("""
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
""")


@pytest.fixture(scope="module")
def network():
    return generate_hierarchy_kb(120, branching=3)


def make_queries(count, gap_us=0.0, deadline_us=None):
    return [
        Query(
            query_id=i,
            program=PROGRAM,
            arrival_us=i * gap_us,
            deadline_us=deadline_us,
            template="inherit",
        )
        for i in range(count)
    ]


def small_config(**overrides):
    defaults = dict(
        num_replicas=2,
        clusters_per_replica=4,
        mus_per_cluster=2,
        queue_capacity=None,
    )
    defaults.update(overrides)
    return HostConfig(**defaults)


class TestQueryValidation:
    def test_negative_arrival_rejected(self):
        with pytest.raises(HostError, match="arrival_us"):
            Query(query_id=0, program=PROGRAM, arrival_us=-1.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(HostError, match="deadline_us"):
            Query(query_id=0, program=PROGRAM, deadline_us=0.0)


class TestHostConfigValidation:
    def test_field_named_in_errors(self):
        with pytest.raises(HostConfigError, match="num_replicas"):
            HostConfig(num_replicas=0)
        with pytest.raises(HostConfigError, match="queue_capacity"):
            HostConfig(queue_capacity=-1)
        with pytest.raises(HostConfigError, match="shed_policy"):
            HostConfig(shed_policy="lifo")
        with pytest.raises(HostConfigError, match="hedge_after_us"):
            HostConfig(hedge_after_us=0.0)
        with pytest.raises(HostConfigError, match="faulty_replica_fraction"):
            HostConfig(faulty_replica_fraction=1.5)


class TestBasicServing:
    def test_all_served_and_accounted(self, network):
        host = ServingHost(network, small_config())
        report = host.serve(make_queries(6, gap_us=50.0))
        assert report.submitted == 6
        assert report.served == 6
        assert report.accounted()
        for outcome in report.outcomes:
            assert outcome.status is QueryStatus.SERVED
            assert outcome.latency_us >= outcome.service_us > 0
            assert outcome.results  # COLLECT-NODE returned something

    def test_duplicate_query_id_rejected(self, network):
        host = ServingHost(network, small_config())
        queries = [
            Query(query_id=7, program=PROGRAM),
            Query(query_id=7, program=PROGRAM, arrival_us=1.0),
        ]
        with pytest.raises(HostError, match="duplicate"):
            host.serve(queries)

    def test_host_is_one_shot(self, network):
        host = ServingHost(network, small_config())
        host.serve(make_queries(1))
        with pytest.raises(HostError, match="one stream"):
            host.serve(make_queries(1))

    def test_concurrency_beats_serial_makespan(self, network):
        """Two replicas drain a simultaneous burst about twice as fast."""
        queries = make_queries(4)
        concurrent = ServingHost(network, small_config()).serve(queries)
        serial = run_serial(network, queries)
        assert concurrent.total_time_us < 0.75 * serial.total_time_us


class TestShedding:
    def test_zero_capacity_sheds_burst_tail(self, network):
        config = small_config(num_replicas=1, queue_capacity=0)
        report = ServingHost(network, config).serve(make_queries(4))
        # One query grabs the idle replica; the rest find no buffer.
        assert report.served == 1
        assert report.shed == 3
        for outcome in report.outcomes:
            if outcome.status is QueryStatus.SHED:
                assert outcome.shed_reason == "queue-full"

    def test_bounded_queue_sheds_overflow_only(self, network):
        config = small_config(num_replicas=1, queue_capacity=2)
        report = ServingHost(network, config).serve(make_queries(6))
        assert report.served == 3  # 1 direct + 2 buffered
        assert report.shed == 3
        assert report.queue_max_depth == 2

    def test_reject_over_deadline_evicts_hopeless(self, network):
        config = small_config(
            num_replicas=1,
            queue_capacity=1,
            shed_policy="reject-over-deadline",
        )
        # Query 1 queues behind query 0 but its deadline cannot cover
        # even one service time once query 2 arrives and evicts it.
        service = ServingHost(
            network, small_config()
        ).array.healthy_service_us(make_queries(1)[0])
        queries = [
            Query(query_id=0, program=PROGRAM, template="inherit"),
            Query(query_id=1, program=PROGRAM, arrival_us=1.0,
                  deadline_us=0.5 * service, template="inherit"),
            Query(query_id=2, program=PROGRAM, arrival_us=2.0,
                  deadline_us=10 * service, template="inherit"),
        ]
        report = ServingHost(network, config).serve(queries)
        evicted = report.outcome_of(1)
        assert evicted.status is QueryStatus.SHED
        assert evicted.shed_reason == "over-deadline"
        assert report.outcome_of(2).status is QueryStatus.SERVED


class TestDeadlines:
    def test_tight_deadline_times_out(self, network):
        config = small_config(num_replicas=1)
        report = ServingHost(network, config).serve(
            make_queries(2, deadline_us=1.0)
        )
        # Both queries' budgets expire long before one service time.
        assert report.timed_out == 2
        assert report.served == 0

    def test_timeout_frees_replica_for_later_work(self, network):
        config = small_config(num_replicas=1)
        service = ServingHost(
            network, small_config()
        ).array.healthy_service_us(make_queries(1)[0])
        queries = [
            Query(query_id=0, program=PROGRAM,
                  deadline_us=0.5 * service, template="inherit"),
            Query(query_id=1, program=PROGRAM,
                  arrival_us=0.6 * service, template="inherit"),
        ]
        report = ServingHost(network, config).serve(queries)
        assert report.outcome_of(0).status is QueryStatus.TIMED_OUT
        assert report.outcome_of(1).status is QueryStatus.SERVED
        # The cancelled attempt is visible in replica accounting.
        assert report.replicas[0].cancelled == 1

    def test_default_deadline_applies_to_bare_queries(self, network):
        config = small_config(num_replicas=1, default_deadline_us=1.0)
        report = ServingHost(network, config).serve(make_queries(1))
        assert report.timed_out == 1


class TestFaultsAndBreakers:
    # Every inter-cluster transfer corrupts and no retries remain:
    # damage is guaranteed query-visible, deterministically.
    FAULTS = FaultConfig(
        transfer_corrupt_prob=1.0,
        retry=RetryPolicy(max_retries=0),
    )

    def test_all_faulty_replicas_fail_query(self, network):
        config = small_config(
            faulty_replica_fraction=1.0,
            replica_fault_template=self.FAULTS,
            max_attempts=2,
            fault_seed=5,
        )
        report = ServingHost(network, config).serve(make_queries(1))
        outcome = report.outcomes[0]
        assert outcome.status is QueryStatus.FAILED
        assert outcome.attempts == 2  # retried on the other replica
        assert outcome.retries == 1

    def test_breaker_opens_and_sheds_load_from_faulty_replica(
        self, network
    ):
        config = small_config(
            num_replicas=2,
            faulty_replica_fraction=0.5,
            replica_fault_template=self.FAULTS,
            breaker_failure_threshold=2,
            breaker_cooldown_us=1e9,  # never half-opens in this run
            max_attempts=2,
            fault_seed=5,
        )
        # Arrivals spaced beyond one service time: the healthy replica
        # is always free to absorb the retry of a damaged attempt.
        report = ServingHost(network, config).serve(
            make_queries(8, gap_us=500.0)
        )
        assert report.served == 8  # healthy replica absorbs everything
        faulty = [r for r in report.replicas if r.faulty]
        assert len(faulty) == 1
        assert faulty[0].breaker_opens == 1
        assert faulty[0].breaker_state == "open"
        # After the trip, no further attempts reached the replica.
        assert faulty[0].attempts == faulty[0].failures == 2

    def test_breakers_disabled_keep_routing(self, network):
        config = small_config(
            num_replicas=2,
            faulty_replica_fraction=0.5,
            replica_fault_template=self.FAULTS,
            breakers_enabled=False,
            max_attempts=2,
            fault_seed=5,
        )
        report = ServingHost(network, config).serve(
            make_queries(8, gap_us=10.0)
        )
        faulty = [r for r in report.replicas if r.faulty][0]
        assert faulty.breaker_opens == 0
        assert faulty.attempts > 2  # kept receiving (and failing) work


class TestHedging:
    def test_primary_win_cancels_hedge(self, network):
        service = ServingHost(
            network, small_config()
        ).array.healthy_service_us(make_queries(1)[0])
        config = small_config(
            num_replicas=2, hedge_after_us=0.5 * service, hedge_max=1
        )
        report = ServingHost(network, config).serve(make_queries(1))
        outcome = report.outcomes[0]
        assert outcome.status is QueryStatus.SERVED
        assert outcome.hedges == 1
        assert outcome.attempts == 2
        # The primary (head start) wins; the hedge is cancelled.
        assert outcome.latency_us == pytest.approx(service)
        assert sum(r.cancelled for r in report.replicas) == 1

    def test_no_hedge_when_attempt_faster_than_threshold(self, network):
        service = ServingHost(
            network, small_config()
        ).array.healthy_service_us(make_queries(1)[0])
        config = small_config(
            num_replicas=2, hedge_after_us=2 * service, hedge_max=1
        )
        report = ServingHost(network, config).serve(make_queries(1))
        assert report.outcomes[0].hedges == 0

    def test_hedge_rescues_query_from_damaged_replica(self, network):
        """A hedge landing on the healthy replica serves the query even
        though the primary attempt comes back damaged."""
        faults = FaultConfig(
            transfer_corrupt_prob=1.0,  # primary is guaranteed damaged
            retry=RetryPolicy(max_retries=0),
        )
        config = small_config(
            num_replicas=2,
            faulty_replica_fraction=0.5,  # seed 5 degrades replica 0,
            replica_fault_template=faults,  # the dispatch preference
            hedge_after_us=1.0,  # hedge almost immediately
            hedge_max=1,
            max_attempts=1,
            fault_seed=5,
        )
        report = ServingHost(network, config).serve(make_queries(1))
        outcome = report.outcomes[0]
        assert outcome.status is QueryStatus.SERVED
        assert outcome.hedges == 1
        assert outcome.replica == 1  # the healthy hedge won


class TestDeterminism:
    def test_identical_runs_identical_outcomes(self, network):
        config = small_config(
            num_replicas=2,
            queue_capacity=2,
            faulty_replica_fraction=0.5,
            breaker_failure_threshold=2,
            fault_seed=9,
        )
        queries = make_queries(10, gap_us=25.0, deadline_us=5_000.0)
        first = ServingHost(network, config).serve(queries)
        second = ServingHost(network, config).serve(queries)
        assert [o.as_dict() for o in first.outcomes] == [
            o.as_dict() for o in second.outcomes
        ]


class TestSerialEquivalence:
    def test_matches_serial_reference(self, network):
        """Acceptance: unbounded queue, no faults, breakers disabled,
        one replica -> per-query results identical to one-at-a-time
        serial execution."""
        config = small_config(
            num_replicas=1,
            queue_capacity=None,
            breakers_enabled=False,
        )
        queries = make_queries(5, gap_us=100.0)
        host_report = ServingHost(network, config).serve(queries)
        serial_report = run_serial(network, queries)
        assert host_report.served == serial_report.served == 5
        for query in queries:
            ours = host_report.outcome_of(query.query_id)
            ref = serial_report.outcome_of(query.query_id)
            assert ours.status is ref.status is QueryStatus.SERVED
            assert ours.service_us == ref.service_us
            assert ours.results == ref.results
            assert ours.finish_us == pytest.approx(ref.finish_us)
