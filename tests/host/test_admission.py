"""Bounded admission queue: backpressure and shed policies."""

import pytest

from repro.host import (
    REJECT_NEWEST,
    REJECT_OVER_DEADLINE,
    AdmissionError,
    AdmissionQueue,
)


class TestConstruction:
    def test_negative_capacity_rejected(self):
        with pytest.raises(AdmissionError):
            AdmissionQueue(capacity=-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(AdmissionError, match="unknown shed policy"):
            AdmissionQueue(policy="drop-oldest")


class TestRejectNewest:
    def test_fifo_up_to_capacity(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a")[0]
        assert queue.offer("b")[0]
        assert queue.full
        admitted, evicted, reason = queue.offer("c")
        assert not admitted
        assert evicted == []
        assert reason == "queue-full"
        assert queue.pop() == "a"
        assert queue.pop() == "b"
        assert queue.shed_newest == 1

    def test_unbounded_never_sheds(self):
        queue = AdmissionQueue(capacity=None)
        for i in range(1000):
            assert queue.offer(i)[0]
        assert not queue.full
        assert queue.shed_newest == 0
        assert queue.max_depth == 1000

    def test_zero_capacity_disables_buffering(self):
        queue = AdmissionQueue(capacity=0)
        assert queue.full
        admitted, _, reason = queue.offer("a")
        assert not admitted
        assert reason == "queue-full"

    def test_requeue_front_keeps_position(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        queue.offer("b")
        head = queue.pop()
        queue.requeue_front(head)
        assert queue.pop() == "a"

    def test_remove_specific_item(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        queue.offer("b")
        assert queue.remove("a")
        assert not queue.remove("a")  # already gone
        assert queue.pop() == "b"


class TestRejectOverDeadline:
    def test_evicts_hopeless_before_shedding_arrival(self):
        queue = AdmissionQueue(capacity=2, policy=REJECT_OVER_DEADLINE)
        queue.offer("hopeless")
        queue.offer("fine")
        admitted, evicted, reason = queue.offer(
            "new", hopeless=lambda q: q == "hopeless"
        )
        assert admitted
        assert evicted == ["hopeless"]
        assert reason is None
        assert queue.shed_over_deadline == 1
        assert queue.pop() == "fine"
        assert queue.pop() == "new"

    def test_falls_back_to_tail_drop_when_none_hopeless(self):
        queue = AdmissionQueue(capacity=1, policy=REJECT_OVER_DEADLINE)
        queue.offer("fine")
        admitted, evicted, reason = queue.offer(
            "new", hopeless=lambda q: False
        )
        assert not admitted
        assert evicted == []
        assert reason == "queue-full"

    def test_policy_inert_below_capacity(self):
        queue = AdmissionQueue(capacity=4, policy=REJECT_OVER_DEADLINE)
        queue.offer("hopeless")
        admitted, evicted, _ = queue.offer(
            "new", hopeless=lambda q: True
        )
        assert admitted
        assert evicted == []  # eviction only under pressure


class TestCounters:
    def test_depth_and_admitted_tracking(self):
        queue = AdmissionQueue(capacity=3)
        queue.offer("a")
        queue.offer("b")
        assert queue.depth == 2
        queue.pop()
        queue.offer("c")
        assert queue.admitted == 3
        assert queue.max_depth == 2
