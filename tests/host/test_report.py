"""Unit tests for serving-report statistics (percentiles, caching)."""

import pytest

from repro.host.query import QueryOutcome, QueryStatus
from repro.host.report import ServingReport, percentile


def _served(query_id, latency_us):
    return QueryOutcome(
        query_id=query_id,
        status=QueryStatus.SERVED,
        arrival_us=0.0,
        finish_us=latency_us,
        latency_us=latency_us,
        service_us=latency_us,
        attempts=1,
    )


def _shed(query_id):
    return QueryOutcome(
        query_id=query_id,
        status=QueryStatus.SHED,
        arrival_us=0.0,
        finish_us=0.0,
        latency_us=0.0,
        shed_reason="queue-full",
    )


class TestPercentile:
    def test_empty_sample_returns_zero(self):
        assert percentile([], 50) == 0.0

    def test_empty_sample_out_of_range_still_returns_zero(self):
        # Historical behavior: the empty check precedes range
        # validation, so an empty sample never raises.
        assert percentile([], 500) == 0.0

    def test_p0_returns_minimum(self):
        assert percentile([30.0, 10.0, 20.0], 0) == 10.0

    def test_p100_returns_maximum(self):
        assert percentile([30.0, 10.0, 20.0], 100) == 30.0

    @pytest.mark.parametrize("p", [-1, -0.001, 100.001, 500])
    def test_out_of_range_raises(self, p):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], p)

    def test_nearest_rank_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_single_element_any_percentile(self):
        for p in (0, 50, 100):
            assert percentile([7.0], p) == 7.0

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50)
        assert values == [3.0, 1.0, 2.0]


class TestLatencySummary:
    def test_summary_matches_individual_percentiles(self):
        report = ServingReport(
            outcomes=[_served(i, float(100 * (i + 1))) for i in range(10)]
            + [_shed(99)]
        )
        summary = report.latency_summary()
        assert summary["p50"] == report.latency_percentile(50)
        assert summary["p95"] == report.latency_percentile(95)
        assert summary["p99"] == report.latency_percentile(99)
        assert summary["mean"] == pytest.approx(
            report.mean_served_latency_us
        )

    def test_empty_report_summary_is_zero(self):
        summary = ServingReport().latency_summary()
        assert summary == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_as_dict_uses_summary(self):
        report = ServingReport(
            outcomes=[_served(0, 100.0), _served(1, 300.0)]
        )
        assert report.as_dict()["latency_us"] == report.latency_summary()

    def test_shed_outcomes_excluded_from_sample(self):
        report = ServingReport(outcomes=[_served(0, 100.0), _shed(1)])
        assert report.served_latencies() == [100.0]
        assert report.latency_percentile(100) == 100.0

    def test_cache_is_reused_across_calls(self):
        report = ServingReport(outcomes=[_served(0, 50.0)])
        report.latency_percentile(50)
        first = report._latency_cache
        report.latency_summary()
        report.latency_percentile(99)
        assert report._latency_cache is first

    def test_cache_invalidated_when_outcomes_grow(self):
        report = ServingReport(outcomes=[_served(0, 100.0)])
        assert report.latency_percentile(100) == 100.0
        report.outcomes.append(_served(1, 900.0))
        assert report.latency_percentile(100) == 900.0

    def test_summary_percentiles_consistent(self):
        report = ServingReport(
            outcomes=[_served(i, float(i)) for i in range(1, 101)]
        )
        headline = report.summary()
        assert headline["p50_ms"] == pytest.approx(50.0 / 1e3)
        assert headline["p99_ms"] == pytest.approx(99.0 / 1e3)
