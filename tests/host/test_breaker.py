"""Circuit breaker state machine: closed -> open -> half-open."""

import pytest

from repro.host import BreakerError, BreakerState, CircuitBreaker


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(BreakerError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(BreakerError, match="cooldown_us"):
            CircuitBreaker(cooldown_us=-1.0)
        with pytest.raises(BreakerError, match="probe_quota"):
            CircuitBreaker(probe_quota=0)


class TestStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_us=100.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_until_us == pytest.approx(103.0)
        assert breaker.times_opened == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_blocks_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_us=50.0)
        breaker.record_failure(10.0)
        assert not breaker.allow(30.0)
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_expiry_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_us=50.0)
        breaker.record_failure(10.0)
        assert breaker.allow(60.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_us=50.0)
        breaker.record_failure(10.0)
        assert breaker.allow(60.0)
        breaker.acquire(60.0)
        breaker.record_success(70.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_us=50.0)
        breaker.record_failure(10.0)
        assert breaker.allow(60.0)
        breaker.acquire(60.0)
        breaker.record_failure(70.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_until_us == pytest.approx(120.0)
        assert breaker.times_opened == 2

    def test_probe_quota_limits_half_open_admissions(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_us=10.0, probe_quota=1
        )
        breaker.record_failure(0.0)
        assert breaker.allow(20.0)
        breaker.acquire(20.0)
        # Second dispatch while the probe is still in flight: refused.
        assert not breaker.allow(21.0)

    def test_release_returns_probe_slot(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_us=10.0, probe_quota=1
        )
        breaker.record_failure(0.0)
        assert breaker.allow(20.0)
        breaker.acquire(20.0)
        breaker.release()  # probe cancelled: no verdict
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow(22.0)

    def test_transition_audit_trail(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_us=10.0)
        breaker.record_failure(5.0)
        breaker.allow(20.0)
        breaker.acquire(20.0)
        breaker.record_success(25.0)
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestDisabled:
    def test_disabled_breaker_never_changes_state(self):
        breaker = CircuitBreaker(failure_threshold=1, enabled=False)
        for t in range(10):
            breaker.record_failure(float(t))
            assert breaker.allow(float(t))
        assert breaker.state is BreakerState.CLOSED
        assert breaker.times_opened == 0
        assert breaker.failures == 10  # counting still works
