"""Health layer: phi-accrual detector, quarantine lifecycle, audits."""

import pytest

from repro.host import (
    HealthError,
    HealthState,
    HostConfig,
    HostConfigError,
    PhiAccrualDetector,
    Query,
    ReplicaFaultEvent,
    ReplicaHealth,
    ServingHost,
)
from repro.isa import assemble
from repro.machine.faults import FaultConfig
from repro.network.generator import generate_hierarchy_kb

PROGRAM = assemble("""
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
""")


@pytest.fixture(scope="module")
def network():
    return generate_hierarchy_kb(120, branching=3)


class TestPhiAccrualDetector:
    def test_parameter_validation(self):
        with pytest.raises(HealthError, match="window"):
            PhiAccrualDetector(window=1)
        with pytest.raises(HealthError, match="min_samples"):
            PhiAccrualDetector(window=4, min_samples=5)
        with pytest.raises(HealthError, match="sigma_floor"):
            PhiAccrualDetector(sigma_floor=0.0)

    def test_silent_below_min_samples(self):
        det = PhiAccrualDetector(window=8, min_samples=4)
        for _ in range(3):
            det.observe(10.0)
        assert det.phi() == 0.0

    def test_healthy_ratios_score_zero(self):
        det = PhiAccrualDetector(window=8, min_samples=4)
        for _ in range(8):
            det.observe(1.0)
        assert det.phi() == 0.0

    def test_steady_degradation_accrues(self):
        det = PhiAccrualDetector(window=8, min_samples=4)
        for _ in range(8):
            det.observe(1.5)
        # sigma floors at 0.08, so a perfectly-steady 1.5x replica
        # still accrues a decisive score.
        assert det.phi() > 8.0

    def test_phi_monotone_in_mean(self):
        low = PhiAccrualDetector(window=8, min_samples=4)
        high = PhiAccrualDetector(window=8, min_samples=4)
        for _ in range(8):
            low.observe(1.2)
            high.observe(2.0)
        assert 0.0 < low.phi() < high.phi()

    def test_window_slides(self):
        det = PhiAccrualDetector(window=4, min_samples=2)
        for _ in range(4):
            det.observe(3.0)
        assert det.phi() > 0.0
        for _ in range(4):
            det.observe(1.0)
        assert det.samples == 4
        assert det.mean() == 1.0
        assert det.phi() == 0.0

    def test_reset_clears(self):
        det = PhiAccrualDetector(window=4, min_samples=2)
        for _ in range(4):
            det.observe(3.0)
        det.reset()
        assert det.samples == 0
        assert det.phi() == 0.0


def fast_health(**overrides):
    defaults = dict(
        window=4, min_samples=3, sigma_floor=0.08,
        phi_quarantine=3.0, probe_after_us=100.0,
        probe_successes=2, readmit_ratio=1.3,
    )
    defaults.update(overrides)
    return ReplicaHealth(**defaults)


def quarantined(health, now=0.0, ratio=3.0):
    while health.state is HealthState.ACTIVE:
        health.record_attempt(now, ratio, 0)
        now += 10.0
    return now


class TestReplicaHealthLifecycle:
    def test_parameter_validation(self):
        with pytest.raises(HealthError, match="damage_weight"):
            ReplicaHealth(damage_weight=-1.0)
        with pytest.raises(HealthError, match="phi_quarantine"):
            ReplicaHealth(phi_quarantine=0.0)
        with pytest.raises(HealthError, match="probe_after_us"):
            ReplicaHealth(probe_after_us=-1.0)
        with pytest.raises(HealthError, match="probe_successes"):
            ReplicaHealth(probe_successes=0)
        with pytest.raises(HealthError, match="readmit_ratio"):
            ReplicaHealth(readmit_ratio=0.0)

    def test_slow_ratios_quarantine(self):
        health = fast_health()
        now = quarantined(health)
        assert health.state is HealthState.QUARANTINED
        assert health.quarantines == 1
        assert health.transitions[-1].reason == "phi"
        assert health.transitions[-1].phi >= 3.0
        assert not health.allow(now)

    def test_hold_off_then_single_probe(self):
        health = fast_health()
        now = quarantined(health)
        assert not health.allow(now + 50.0)  # hold-off not expired
        assert health.allow(now + 150.0)
        assert health.state is HealthState.PROBING
        health.acquire(now + 150.0)
        assert health.probes == 1
        # One probe at a time: the slot is taken.
        assert not health.allow(now + 160.0)
        health.release()
        assert health.allow(now + 170.0)

    def test_probe_successes_readmit_and_reset_detector(self):
        health = fast_health()
        now = quarantined(health) + 150.0
        for _ in range(2):
            assert health.allow(now)
            health.acquire(now)
            health.record_attempt(now, 1.0, 0)
            now += 10.0
        assert health.state is HealthState.ACTIVE
        assert health.readmissions == 1
        assert health.transitions[-1].reason == "readmitted"
        assert health.detector.samples == 0

    def test_failed_probe_requarantines(self):
        health = fast_health()
        now = quarantined(health) + 150.0
        assert health.allow(now)
        health.acquire(now)
        health.record_attempt(now, 2.0, 0)  # still above readmit_ratio
        assert health.state is HealthState.QUARANTINED
        assert health.quarantines == 2
        assert health.transitions[-1].reason == "probe-failed"

    def test_damaged_probe_fails_even_if_fast(self):
        health = fast_health()
        now = quarantined(health) + 150.0
        assert health.allow(now)
        health.acquire(now)
        health.record_attempt(now, 1.0, damage=2)
        assert health.state is HealthState.QUARANTINED

    def test_stale_verdict_during_quarantine_ignored(self):
        health = fast_health()
        quarantined(health)
        health.record_attempt(1e6, 1.0, 0)
        assert health.state is HealthState.QUARANTINED
        assert health.quarantines == 1

    def test_damage_weight_feeds_score(self):
        health = fast_health(damage_weight=5.0)
        # Fast but damaged attempts still accrue suspicion.
        for _ in range(4):
            health.record_attempt(0.0, 1.0, damage=1)
        assert health.state is HealthState.QUARANTINED

    def test_audit_failure_quarantines_immediately(self):
        health = fast_health()
        health.record_attempt(0.0, 1.0, 0)
        health.record_audit_failure(5.0)
        assert health.state is HealthState.QUARANTINED
        assert health.audit_failures == 1
        assert health.transitions[-1].reason == "audit"
        # A second mismatch while already quarantined only counts.
        health.record_audit_failure(6.0)
        assert health.audit_failures == 2
        assert health.quarantines == 1

    def test_repeated_probe_failures_stay_quarantined(self):
        # A replica that never recovers must never be readmitted, no
        # matter how many probe cycles it burns.
        health = fast_health()
        now = quarantined(health)
        for cycle in range(5):
            now += 150.0  # hold-off expires, a probe slot opens
            assert health.allow(now)
            health.acquire(now)
            health.record_attempt(now, 3.0, 0)  # probe still slow
            assert health.state is HealthState.QUARANTINED
            assert health.quarantines == cycle + 2
        assert health.readmissions == 0
        assert not health.allow(now + 1.0)

    def test_disabled_is_inert(self):
        health = ReplicaHealth(enabled=False)
        for _ in range(20):
            health.record_attempt(0.0, 10.0, damage=5)
        health.record_audit_failure(0.0)
        assert health.state is HealthState.ACTIVE
        assert health.allow(1e9)
        assert health.quarantines == 0
        assert health.transitions == []
        assert health.audit_failures == 1  # counted, not acted on


GRAY = FaultConfig(
    seed=5, mu_slowdown_factor=3.0, marker_drop_prob=0.2, remap_nodes=False
)


def gray_config(**overrides):
    defaults = dict(
        num_replicas=2,
        clusters_per_replica=4,
        mus_per_cluster=2,
        queue_capacity=None,
        replica_timeline=(ReplicaFaultEvent(0.0, 1, GRAY),),
        health_enabled=True,
        health_window=4,
        health_min_samples=3,
        health_phi_quarantine=3.0,
        health_probe_after_us=500.0,
        health_probe_successes=1,
        health_readmit_ratio=1.3,
        audit_interval=2,
    )
    defaults.update(overrides)
    return HostConfig(**defaults)


def make_queries(count, gap_us=50.0):
    return [
        Query(query_id=i, program=PROGRAM, arrival_us=i * gap_us,
              template="inherit")
        for i in range(count)
    ]


class TestHostConfigHealthValidation:
    def test_timeline_replica_out_of_range(self):
        with pytest.raises(HostConfigError, match="replica_timeline"):
            HostConfig(
                num_replicas=2,
                replica_timeline=(ReplicaFaultEvent(0.0, 5, GRAY),),
            )

    def test_event_validation(self):
        with pytest.raises(HostConfigError):
            ReplicaFaultEvent(-1.0, 0, GRAY)
        with pytest.raises(HostConfigError):
            ReplicaFaultEvent(0.0, -1, GRAY)

    def test_health_knobs_validated(self):
        with pytest.raises(HostConfigError, match="health_window"):
            HostConfig(health_window=1)
        with pytest.raises(HostConfigError, match="health_phi_quarantine"):
            HostConfig(health_phi_quarantine=0.0)
        with pytest.raises(HostConfigError, match="audit_interval"):
            HostConfig(audit_interval=0)


class TestServingHostIntegration:
    def test_gray_replica_is_quarantined_and_audited(self, network):
        host = ServingHost(network, gray_config())
        report = host.serve(make_queries(30))
        assert report.accounted()
        gray, healthy = report.replicas[1], report.replicas[0]
        assert gray.health_state is not None
        assert gray.health_quarantines >= 1
        assert healthy.health_quarantines == 0
        # Shadow re-execution caught at least one silently-truncated
        # answer that the breaker never saw.
        assert report.audit_checks > 0
        assert report.audit_mismatches >= 1

    def test_deterministic(self, network):
        a = ServingHost(network, gray_config()).serve(make_queries(30))
        b = ServingHost(network, gray_config()).serve(make_queries(30))
        assert a.summary() == b.summary()
        assert [r.health_quarantines for r in a.replicas] == (
            [r.health_quarantines for r in b.replicas]
        )

    def test_health_off_leaves_report_clean(self, network):
        config = gray_config(
            health_enabled=False, audit_interval=None
        )
        report = ServingHost(network, config).serve(make_queries(10))
        assert report.accounted()
        for summary in report.replicas:
            assert summary.health_state is None
            assert "health_state" not in summary.as_dict()
        assert report.audit_checks == 0
        assert "audit_checks" not in report.as_dict()

    def test_audit_disabled_never_shadow_executes(self, network):
        # Health on, audit off: quarantine still works but no shadow
        # re-execution ever runs (no audit checks, no audit reasons).
        host = ServingHost(network, gray_config(audit_interval=None))
        report = host.serve(make_queries(30))
        assert report.audit_checks == 0
        assert report.audit_mismatches == 0
        for health in host._health:
            assert all(
                t.reason != "audit" for t in health.transitions
            )


class TestFleetIdentityAndExport:
    def test_identity_defaults_off(self):
        config = HostConfig()
        assert config.group_id is None
        assert config.region is None

    def test_negative_region_rejected(self):
        with pytest.raises(HostConfigError, match="region"):
            HostConfig(region=-1)

    def test_identity_does_not_change_serving(self, network):
        plain = ServingHost(network, gray_config()).serve(
            make_queries(20)
        )
        tagged_config = gray_config(group_id="shard-3", region=2)
        tagged = ServingHost(network, tagged_config).serve(
            make_queries(20)
        )
        assert plain.summary() == tagged.summary()

    def test_health_export_carries_identity_and_state(self, network):
        config = gray_config(group_id="shard-0", region=1)
        host = ServingHost(network, config)
        host.serve(make_queries(30))
        export = host.health_export()
        assert export["group_id"] == "shard-0"
        assert export["region"] == 1
        assert export["health_enabled"]
        assert len(export["replicas"]) == config.num_replicas
        by_id = {r["replica_id"]: r for r in export["replicas"]}
        assert by_id[1]["quarantines"] >= 1
        assert by_id[0]["quarantines"] == 0
        for entry in export["replicas"]:
            assert entry["state"] in (
                "active", "quarantined", "probing"
            )
            assert entry["phi"] >= 0.0

    def test_health_export_when_disabled(self, network):
        config = gray_config(
            health_enabled=False, audit_interval=None
        )
        host = ServingHost(network, config)
        host.serve(make_queries(5))
        export = host.health_export()
        assert export["group_id"] is None
        assert not export["health_enabled"]
        assert export["replicas"] == []


class TestHealthTransitionRecords:
    """The shared telemetry view of a health trail."""

    def test_records_mirror_transitions(self):
        from repro.host import health_transition_records

        health = fast_health()
        now = quarantined(health)
        records = health_transition_records(health, replica_id=7)
        assert len(records) == len(health.transitions)
        ts, fields = records[-1]
        assert ts == health.transitions[-1].time_us
        assert fields["replica"] == 7
        assert fields["to_state"] == "quarantined"
        assert fields["reason"] == "phi"
        assert fields["phi"] == round(health.transitions[-1].phi, 4)
        assert now >= 0.0

    def test_untouched_health_yields_no_records(self):
        from repro.host import health_transition_records

        assert health_transition_records(fast_health(), 0) == []
