"""Serial baseline machine."""

import pytest

from repro.baselines import SerialMachine
from repro.core import FunctionalEngine
from repro.isa import assemble
from repro.machine.config import Timing


PROGRAM = """
SEARCH-NODE w:we m1 0.0
PROPAGATE m1 m2 chain(is-a) add-weight
AND-MARKER m1 m2 m3 add
CLEAR-MARKER m1
COLLECT-NODE m2
"""


class TestSerialMachine:
    def test_results_match_functional_engine(self, fig5_kb):
        import copy

        program = assemble(PROGRAM)
        serial = SerialMachine(copy.deepcopy(fig5_kb))
        serial_results = serial.run(program).results()
        golden = FunctionalEngine(copy.deepcopy(fig5_kb), 1)
        golden_results = [
            r.result for r in golden.run(program).records
            if r.result is not None
        ]
        assert serial_results == golden_results

    def test_every_instruction_timed(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        assert len(report.traces) == 5
        assert all(t.time_us > 0 for t in report.traces)
        assert report.total_time_us == pytest.approx(
            sum(t.time_us for t in report.traces)
        )

    def test_category_time_accumulates(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        assert set(report.category_busy_us) == {
            "search", "propagate", "boolean", "setclear", "collect"
        }
        shares = report.category_time_share()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_frequency_share(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        freq = report.category_frequency_share()
        assert freq["propagate"] == pytest.approx(0.2)

    def test_set_clear_near_paper_anchor(self):
        """Calibration: SET/CLEAR around 50 µs (paper §IV) on a
        1K-node-per-PE workload."""
        from repro.network import generate_kb, GeneratorSpec

        net = generate_kb(GeneratorSpec(total_nodes=1000))
        report = SerialMachine(net).run(assemble("SET-MARKER m1 1.0\n"
                                                 "CLEAR-MARKER b1"))
        set_time = report.traces[0].time_us
        clear_time = report.traces[1].time_us
        assert 15.0 <= clear_time <= 120.0
        assert 15.0 <= set_time <= 150.0

    def test_propagate_costs_more_than_setclear(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        by_opcode = {t.opcode: t.time_us for t in report.traces}
        assert by_opcode["PROPAGATE"] > by_opcode["CLEAR-MARKER"]

    def test_arrivals_recorded(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        propagate = next(t for t in report.traces if t.opcode == "PROPAGATE")
        assert propagate.arrivals > 0

    def test_custom_timing(self, fig5_kb):
        slow = Timing(t_decode=1000.0)
        fast_report = SerialMachine(fig5_kb).run(assemble(PROGRAM))
        import copy

        slow_report = SerialMachine(
            copy.deepcopy(fig5_kb), timing=slow
        ).run(assemble(PROGRAM))
        assert slow_report.total_time_us > fast_report.total_time_us
