"""CM-2-style SIMD baseline."""

import pytest

from repro.baselines import SimdMachine, SimdTiming
from repro.core import FunctionalEngine
from repro.isa import assemble
from repro.network import generate_hierarchy_kb


class TestSimdSemantics:
    def test_results_match_functional_engine(self, fig5_kb):
        import copy

        program = assemble("""
        SEARCH-NODE w:we m1 0.0
        PROPAGATE m1 m2 chain(is-a) add-weight
        COLLECT-NODE m2
        """)
        simd = SimdMachine(copy.deepcopy(fig5_kb))
        golden = FunctionalEngine(copy.deepcopy(fig5_kb), 1)
        assert simd.run(program).results() == [
            r.result for r in golden.run(program).records
            if r.result is not None
        ]

    def test_steps_equal_propagation_depth(self, chain_kb):
        """Level-synchronous execution: one controller round-trip per
        BFS level; the chain has 5 levels."""
        simd = SimdMachine(chain_kb)
        report = simd.run(assemble(
            "SEARCH-NODE a0 m1 0.0\nPROPAGATE m1 m2 chain(r) add-weight"
        ))
        propagate = report.traces[1]
        assert propagate.steps == 5

    def test_time_dominated_by_roundtrips(self, chain_kb):
        timing = SimdTiming(t_step_roundtrip=1000.0, t_step_per_slot=0.0,
                            t_instruction=1.0)
        simd = SimdMachine(chain_kb, timing)
        report = simd.run(assemble(
            "SEARCH-NODE a0 m1 0.0\nPROPAGATE m1 m2 chain(r) add-weight"
        ))
        propagate = report.traces[1]
        # (5 levels + seed step) x 1000 µs.
        assert propagate.time_us == pytest.approx(6000.0)

    def test_flat_in_kb_size_for_fixed_depth(self):
        """The CM-2 signature: time depends on depth, not node count."""
        program = assemble(
            "SEARCH-NODE thing m1 0.0\n"
            "PROPAGATE m1 m2 chain(inverse:is-a) add-weight"
        )
        # Same depth (complete 4-ary trees of depth 3 vs wider depth 3).
        small = SimdMachine(generate_hierarchy_kb(85)).run(program)
        # 85 = 1+4+16+64: depth 3.  341 = depth 4.
        big = SimdMachine(generate_hierarchy_kb(341)).run(program)
        ratio = big.total_time_us / small.total_time_us
        assert ratio < 2.0  # one extra level only

    def test_nonpropagate_flat_cost(self, fig5_kb):
        timing = SimdTiming(t_instruction=500.0)
        simd = SimdMachine(fig5_kb, timing)
        report = simd.run(assemble("SET-MARKER m1 1.0\nCLEAR-MARKER m1"))
        assert report.traces[0].time_us == 500.0
        assert report.traces[1].time_us == 500.0

    def test_collect_charges_per_item(self, fig5_kb):
        timing = SimdTiming(t_instruction=0.0, t_collect_item=10.0)
        simd = SimdMachine(fig5_kb, timing)
        report = simd.run(assemble("SET-MARKER m1 1.0\nCOLLECT-NODE m1"))
        collect = report.traces[1]
        assert collect.time_us == pytest.approx(
            10.0 * fig5_kb.num_nodes
        )

    def test_total_steps(self, chain_kb):
        simd = SimdMachine(chain_kb)
        report = simd.run(assemble(
            "SEARCH-NODE a0 m1 0.0\nPROPAGATE m1 m2 chain(r) add-weight"
        ))
        assert report.total_steps() == 5
