"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_parse_command(self, capsys):
        code = main(["parse", "terrorists attacked the mayor",
                     "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "attack-event" in out
        assert "M.B." in out

    def test_parse_failure_exit_code(self, capsys):
        code = main(["parse", "in of the", "--kb-nodes", "1200"])
        assert code == 1
        assert "no completed hypothesis" in capsys.readouterr().out

    def test_speech_command(self, capsys):
        code = main(["speech", "guerrillas bombed the embassy",
                     "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lattice:" in out
        assert "meaning:" in out

    def test_info_command(self, capsys):
        code = main(["info", "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "144" in out  # full prototype PE count
        assert "concept sequences" in out

    def test_experiments_command(self, capsys):
        code = main(["experiments", "fig21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig21" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
