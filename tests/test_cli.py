"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_parse_command(self, capsys):
        code = main(["parse", "terrorists attacked the mayor",
                     "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "attack-event" in out
        assert "M.B." in out

    def test_parse_failure_exit_code(self, capsys):
        code = main(["parse", "in of the", "--kb-nodes", "1200"])
        assert code == 1
        assert "no completed hypothesis" in capsys.readouterr().out

    def test_speech_command(self, capsys):
        code = main(["speech", "guerrillas bombed the embassy",
                     "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lattice:" in out
        assert "meaning:" in out

    def test_info_command(self, capsys):
        code = main(["info", "--kb-nodes", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "144" in out  # full prototype PE count
        assert "concept sequences" in out

    def test_experiments_command(self, capsys):
        code = main(["experiments", "fig21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig21" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_experiment_exits_nonzero_with_usage(self, capsys):
        code = main(["experiments", "fig99"])
        captured = capsys.readouterr()
        assert code != 0
        assert "unknown experiment" in captured.err
        assert "fig99" in captured.err
        # The usage message lists the known experiment ids.
        assert "usage" in captured.err
        assert "fig16" in captured.err
        assert "overload" in captured.err
        # Nothing was run.
        assert captured.out == ""

    def test_experiments_list_includes_overload(self, capsys):
        code = main(["experiments", "--list"])
        assert code == 0
        assert "overload" in capsys.readouterr().out.split()

    def test_serve_command(self, capsys):
        code = main([
            "serve", "--queries", "20", "--load", "2.0",
            "--kb-nodes", "120",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "offered 2.0x sustainable" in out
        assert "submitted: 20" in out
        assert "served:" in out

    def test_serve_command_with_faults(self, capsys):
        code = main([
            "serve", "--queries", "12", "--fault-fraction", "0.5",
            "--replicas", "2", "--kb-nodes", "120", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "breaker_opens" in out

    def test_bench_command_writes_history(self, tmp_path, capsys):
        out = tmp_path / "perf.json"
        hist = tmp_path / "history.jsonl"
        code = main([
            "bench", "dispatch", "--smoke", "--out", str(out),
            "--history", str(hist),
        ])
        assert code == 0
        assert out.exists()
        assert hist.exists()
        assert "appended 1 lane record(s)" in capsys.readouterr().out

    def test_perf_check_routes_through_top_level_cli(
        self, tmp_path, capsys
    ):
        import json

        from tests.obs.perf.test_history import NOISE_RATES, history

        hist = tmp_path / "history.jsonl"
        hist.write_text("".join(
            json.dumps(record) + "\n"
            for record in history(NOISE_RATES, newest_rate=101_000)
        ))
        code = main(["perf", "check", "--history", str(hist)])
        assert code == 0
        assert "perf check: ok" in capsys.readouterr().out

    def test_perf_profile_routes_through_top_level_cli(
        self, tmp_path, capsys
    ):
        folded = tmp_path / "dispatch.folded"
        code = main([
            "perf", "profile", "dispatch", "--smoke",
            "--folded-out", str(folded), "--report", str(tmp_path / "r.md"),
        ])
        assert code == 0
        assert folded.exists()

    def test_perf_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "frobnicate"])
