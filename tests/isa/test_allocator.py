"""Marker register allocator."""

import pytest

from repro.isa import is_complex
from repro.isa.allocator import AllocationError, MarkerAllocator


class TestAllocation:
    def test_complex_and_binary_distinct(self):
        alloc = MarkerAllocator()
        c = alloc.complex("value")
        b = alloc.binary("flag")
        assert is_complex(c)
        assert not is_complex(b)

    def test_named_lookup(self):
        alloc = MarkerAllocator()
        marker = alloc.complex("act")
        assert alloc["act"] == marker
        assert "act" in alloc
        assert alloc.name_of(marker) == "act"

    def test_duplicate_name_rejected(self):
        alloc = MarkerAllocator()
        alloc.complex("x")
        with pytest.raises(AllocationError):
            alloc.binary("x")

    def test_unknown_name(self):
        with pytest.raises(AllocationError):
            MarkerAllocator()["ghost"]

    def test_free_and_reuse(self):
        alloc = MarkerAllocator()
        first = alloc.complex("a")
        alloc.free("a")
        assert alloc.complex("b") == first

    def test_free_unknown(self):
        with pytest.raises(AllocationError):
            MarkerAllocator().free("nope")

    def test_exhaustion(self):
        alloc = MarkerAllocator()
        for i in range(64):
            alloc.complex(f"c{i}")
        with pytest.raises(AllocationError):
            alloc.complex("one-too-many")
        # Binary side unaffected.
        alloc.binary("still-fine")

    def test_reserved_never_allocated(self):
        from repro.apps.nlu import ALL_PARSE_MARKERS

        alloc = MarkerAllocator(reserved=set(ALL_PARSE_MARKERS))
        for i in range(alloc.free_complex):
            marker = alloc.complex(f"c{i}")
            assert marker not in ALL_PARSE_MARKERS

    def test_free_counts(self):
        alloc = MarkerAllocator()
        assert alloc.free_complex == 64
        alloc.complex("one")
        assert alloc.free_complex == 63
        assert alloc.free_binary == 64


class TestScope:
    def test_temporaries_released(self):
        alloc = MarkerAllocator()
        with alloc.scope("t1", "t2") as (a, b):
            assert alloc.live() == ["t1", "t2"]
            assert is_complex(a) and is_complex(b)
        assert alloc.live() == []

    def test_binary_scope(self):
        alloc = MarkerAllocator()
        with alloc.scope("flag", binary=True) as (marker,):
            assert not is_complex(marker)

    def test_released_on_exception(self):
        alloc = MarkerAllocator()
        with pytest.raises(RuntimeError):
            with alloc.scope("t"):
                raise RuntimeError("boom")
        assert alloc.live() == []

    def test_usable_in_program(self, fig5_kb):
        from repro.core import run_program
        from repro.isa import (
            CollectNode, Propagate, SearchNode, SnapProgram, chain,
        )

        alloc = MarkerAllocator()
        with alloc.scope("src", "dst") as (src, dst):
            program = SnapProgram([
                SearchNode("w:we", src),
                Propagate(src, dst, chain("is-a"), "identity"),
                CollectNode(dst),
            ])
            result = run_program(fig5_kb, program)
            assert result.records[-1].result
