"""Programs: assembler, disassembler, dependency/β analysis."""

import pytest

from repro.isa import (
    AndMarker,
    ClearMarker,
    CollectNode,
    ProgramError,
    Propagate,
    SearchNode,
    SnapProgram,
    assemble,
    assemble_line,
    chain,
    complex_marker,
    disassemble,
    marker_name,
    spread,
)

#: The marker-propagation program of paper Fig. 5 (L1-L7).
FIG5_SOURCE = """
# configuration phase
SEARCH-NODE NP m1 0.0         ; L1
SEARCH-NODE VP m2 0.0         ; L2
SEARCH-NODE DO m2 0.0         ; L3
# propagation phase
PROPAGATE m2 m3 spread(is-a,last) add-weight    ; L4
PROPAGATE m1 m4 spread(is-a,last) add-weight    ; L5
# accumulation phase
AND-MARKER m3 m4 m5 add       ; L6
COLLECT-NODE m5               ; L7
"""


class TestAssembler:
    def test_comments_and_blanks_skipped(self):
        assert assemble_line("   # nothing here") is None
        assert assemble_line("") is None

    def test_fig5_assembles(self):
        program = assemble(FIG5_SOURCE)
        assert len(program) == 7
        assert program[0].opcode == "SEARCH-NODE"
        assert program[3].opcode == "PROPAGATE"
        assert program[6].opcode == "COLLECT-NODE"

    def test_marker_syntax(self):
        instr = assemble_line("SET-MARKER m5 1.5")
        assert instr.marker == complex_marker(5)
        instr = assemble_line("SET-MARKER b5")
        assert instr.marker == 64 + 5

    def test_rule_with_spaces_inside_parens(self):
        instr = assemble_line("PROPAGATE m0 m1 spread(is-a, last)")
        assert instr.rule.relations == ("is-a", "last")

    def test_bad_opcode(self):
        with pytest.raises(ProgramError):
            assemble_line("FROBNICATE m1")

    def test_bad_marker(self):
        with pytest.raises(ProgramError):
            assemble_line("SET-MARKER x9")

    def test_missing_operands(self):
        with pytest.raises(ProgramError):
            assemble_line("AND-MARKER m1 m2")

    def test_line_number_in_error(self):
        with pytest.raises(ProgramError, match="line 2"):
            assemble("SET-MARKER m1\nBOGUS op")

    def test_every_opcode_assembles(self):
        source = """
        CREATE a is-a 1.0 b
        DELETE a is-a b
        SET-COLOR a 3
        SEARCH-NODE a m1 0.5
        SEARCH-RELATION is-a m2
        SEARCH-COLOR 4 m3
        PROPAGATE m1 m2 chain(is-a) add-weight
        MARKER-CREATE m1 binding end binding-inverse
        MARKER-DELETE m1 binding end
        MARKER-SET-COLOR m1 7
        AND-MARKER m1 m2 m3 add
        OR-MARKER m1 m2 m3
        NOT-MARKER m1 m2 2.0 lt
        SET-MARKER m1 1.0
        CLEAR-MARKER m1
        FUNC-MARKER m1 negate
        COLLECT-NODE m1
        COLLECT-MARKER m1
        COLLECT-RELATION m1 is-a
        COLLECT-COLOR m1
        """
        program = assemble(source)
        assert len(program) == 20
        opcodes = {instr.opcode for instr in program}
        assert len(opcodes) == 20


class TestDisassembler:
    def test_roundtrip(self):
        program = assemble(FIG5_SOURCE)
        text = disassemble(program)
        again = assemble(text)
        assert list(again) == list(program)

    def test_full_isa_roundtrip(self):
        source = "\n".join([
            "CREATE a is-a 1.0 b",
            "NOT-MARKER m1 m2 2.0 lt",
            "PROPAGATE m1 m2 spread(is-a,last) add-weight",
            "MARKER-CREATE m1 binding end binding-inverse",
        ])
        program = assemble(source)
        assert list(assemble(disassemble(program))) == list(program)

    def test_marker_name(self):
        assert marker_name(0) == "m0"
        assert marker_name(64) == "b0"
        assert marker_name(127) == "b63"


class TestDependencies:
    def test_fig5_beta_overlap(self):
        """L4 and L5 are independent: the paper's β example."""
        program = assemble(FIG5_SOURCE)
        runs = program.beta_profile()
        assert max(runs) == 2  # L4 + L5 overlap

    def test_dependent_propagates_do_not_overlap(self):
        program = SnapProgram([
            Propagate(1, 2, chain("r")),
            Propagate(2, 3, chain("r")),  # reads marker 2 (RAW)
        ])
        assert program.beta_profile() == [1, 1]

    def test_waw_detected(self):
        program = SnapProgram([
            Propagate(1, 3, chain("r")),
            Propagate(2, 3, chain("r")),  # writes marker 3 (WAW)
        ])
        assert program.beta_profile() == [1, 1]

    def test_independent_run_of_four(self):
        program = SnapProgram([
            Propagate(i, 10 + i, chain("r")) for i in range(4)
        ])
        assert program.beta_profile() == [4]

    def test_collect_ends_run(self):
        program = SnapProgram([
            Propagate(0, 1, chain("r")),
            CollectNode(5),
            Propagate(2, 3, chain("r")),
        ])
        assert program.beta_profile() == [1, 1]

    def test_dependency_edges(self):
        program = assemble(FIG5_SOURCE)
        edges = program.dependency_edges()
        # L6 (index 5) depends on both propagates (3, 4).
        assert (3, 5) in edges and (4, 5) in edges
        # L4 and L5 do not depend on each other.
        assert (3, 4) not in edges

    def test_beta_stats(self):
        program = assemble(FIG5_SOURCE)
        stats = program.beta_stats()
        assert stats["max"] == 2.0
        assert stats["min"] >= 1.0

    def test_markers_used(self):
        program = assemble(FIG5_SOURCE)
        assert program.markers_used() == {1, 2, 3, 4, 5}

    def test_category_counts(self):
        program = assemble(FIG5_SOURCE)
        counts = program.category_counts()
        assert counts["search"] == 3
        assert counts["propagate"] == 2
        assert counts["boolean"] == 1
        assert counts["collect"] == 1
