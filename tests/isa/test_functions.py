"""Marker function registry: tokens, standard library, thresholds."""

import math

import pytest

from repro.isa import (
    DEFAULT_COMBINE,
    DEFAULT_HOP,
    DEFAULT_UNARY,
    FunctionError,
    FunctionRegistry,
    HopFunction,
    condition,
)


@pytest.fixture
def registry():
    return FunctionRegistry()


class TestHopFunctions:
    def test_default_token_is_identity(self, registry):
        fn = registry.hop(DEFAULT_HOP)
        assert fn.name == "identity"
        assert fn.apply(3.0, 99.0) == 3.0

    def test_add_weight(self, registry):
        assert registry.hop("add-weight").apply(1.0, 2.5) == 3.5

    def test_sub_mul_min_max(self, registry):
        assert registry.hop("sub-weight").apply(5.0, 2.0) == 3.0
        assert registry.hop("mul-weight").apply(3.0, 2.0) == 6.0
        assert registry.hop("min-weight").apply(3.0, 2.0) == 2.0
        assert registry.hop("max-weight").apply(3.0, 2.0) == 3.0

    def test_count_hops(self, registry):
        assert registry.hop("count-hops").apply(4.0, 123.0) == 5.0

    def test_standard_functions_always_alive(self, registry):
        assert registry.hop("add-weight").alive(1e30)

    def test_lookup_by_name_and_token_agree(self, registry):
        token = registry.hop_token("add-weight")
        assert registry.hop(token) is registry.hop("add-weight")

    def test_unknown_name_raises(self, registry):
        with pytest.raises(FunctionError):
            registry.hop("no-such")

    def test_unknown_token_raises(self, registry):
        with pytest.raises(FunctionError):
            registry.hop(250)

    def test_register_custom_idempotent(self, registry):
        fn = HopFunction("double", lambda v, w: 2 * v)
        t1 = registry.register_hop(fn)
        t2 = registry.register_hop(HopFunction("double", lambda v, w: 2 * v))
        assert t1 == t2

    def test_threshold_kills_marker(self, registry):
        token = registry.make_threshold(10.0)
        fn = registry.hop(token)
        assert fn.alive(9.0)
        assert fn.alive(10.0)
        assert not fn.alive(10.5)
        assert fn.apply(4.0, 3.0) == 7.0

    def test_threshold_above(self, registry):
        token = registry.make_threshold(5.0, below=False)
        fn = registry.hop(token)
        assert fn.alive(6.0)
        assert not fn.alive(4.0)


class TestCombineFunctions:
    def test_default_is_first(self, registry):
        assert registry.combine(DEFAULT_COMBINE).combine(1.0, 2.0) == 1.0

    @pytest.mark.parametrize(
        "name,expected",
        [("first", 1.0), ("second", 2.0), ("add", 3.0), ("min", 1.0),
         ("max", 2.0), ("mul", 2.0)],
    )
    def test_standard_combines(self, registry, name, expected):
        assert registry.combine(name).combine(1.0, 2.0) == expected


class TestUnaryFunctions:
    def test_default_identity(self, registry):
        assert registry.unary(DEFAULT_UNARY).apply(7.0) == 7.0

    def test_zero_negate_increment(self, registry):
        assert registry.unary("zero").apply(9.0) == 0.0
        assert registry.unary("negate").apply(9.0) == -9.0
        assert registry.unary("increment").apply(9.0) == 10.0

    def test_reciprocal_of_zero_is_inf(self, registry):
        assert registry.unary("reciprocal").apply(0.0) == math.inf
        assert registry.unary("reciprocal").apply(4.0) == 0.25


class TestConditions:
    @pytest.mark.parametrize(
        "name,v,ref,expected",
        [
            ("always", 0.0, 9.9, True),
            ("eq", 2.0, 2.0, True),
            ("ne", 2.0, 2.0, False),
            ("lt", 1.0, 2.0, True),
            ("le", 2.0, 2.0, True),
            ("gt", 3.0, 2.0, True),
            ("ge", 1.0, 2.0, False),
        ],
    )
    def test_comparisons(self, name, v, ref, expected):
        assert condition(name)(v, ref) is expected

    def test_unknown_condition(self):
        with pytest.raises(FunctionError):
            condition("sometimes")
