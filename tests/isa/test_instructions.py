"""The 20-instruction ISA: opcodes, categories, dependency sets."""

import pytest

from repro.isa import (
    AndMarker,
    Category,
    ClearMarker,
    CollectNode,
    INSTRUCTION_SET,
    InstructionError,
    NotMarker,
    NUM_MARKERS,
    OPCODES,
    Propagate,
    SearchNode,
    SetMarker,
    binary_marker,
    check_marker,
    complex_marker,
    is_complex,
    spread,
)


class TestMarkerIds:
    def test_complex_markers_are_low_ids(self):
        assert complex_marker(0) == 0
        assert complex_marker(63) == 63

    def test_binary_markers_are_high_ids(self):
        assert binary_marker(0) == 64
        assert binary_marker(63) == 127

    def test_is_complex(self):
        assert is_complex(complex_marker(5))
        assert not is_complex(binary_marker(5))

    def test_out_of_range_rejected(self):
        with pytest.raises(InstructionError):
            complex_marker(64)
        with pytest.raises(InstructionError):
            binary_marker(-1)
        with pytest.raises(InstructionError):
            check_marker(NUM_MARKERS)

    def test_check_marker_passthrough(self):
        assert check_marker(100) == 100


class TestInstructionSet:
    def test_exactly_twenty_instructions(self):
        assert len(INSTRUCTION_SET) == 20

    def test_opcodes_unique(self):
        assert len(OPCODES) == 20

    def test_every_instruction_categorized(self):
        for cls in INSTRUCTION_SET:
            assert cls.category in Category.ALL

    def test_paper_table_ii_opcodes_present(self):
        expected = {
            "CREATE", "DELETE", "SET-COLOR",
            "SEARCH-NODE", "SEARCH-RELATION", "SEARCH-COLOR",
            "PROPAGATE",
            "MARKER-CREATE", "MARKER-DELETE", "MARKER-SET-COLOR",
            "AND-MARKER", "OR-MARKER", "NOT-MARKER",
            "SET-MARKER", "CLEAR-MARKER", "FUNC-MARKER",
            "COLLECT-NODE", "COLLECT-MARKER", "COLLECT-RELATION",
            "COLLECT-COLOR",
        }
        assert set(OPCODES) == expected


class TestDependencySets:
    def test_propagate_reads_and_writes(self):
        instr = Propagate(1, 2, spread("a", "b"), "identity")
        assert instr.reads() == (1,)
        assert instr.writes() == (2,)

    def test_and_marker(self):
        instr = AndMarker(1, 2, 3)
        assert set(instr.reads()) == {1, 2}
        assert instr.writes() == (3,)

    def test_not_marker(self):
        instr = NotMarker(4, 5)
        assert instr.reads() == (4,)
        assert instr.writes() == (5,)

    def test_set_clear_write_only(self):
        assert SetMarker(7).writes() == (7,)
        assert SetMarker(7).reads() == ()
        assert ClearMarker(7).writes() == (7,)

    def test_search_writes(self):
        assert SearchNode("n", 3).writes() == (3,)

    def test_collect_reads(self):
        assert CollectNode(9).reads() == (9,)
        assert CollectNode(9).writes() == ()

    def test_instructions_are_hashable_and_frozen(self):
        instr = SetMarker(1, 2.0)
        with pytest.raises(AttributeError):
            instr.marker = 3  # type: ignore[misc]
        assert hash(instr) == hash(SetMarker(1, 2.0))
