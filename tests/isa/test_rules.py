"""Propagation-rule state machines and the rule parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    PropagationRule,
    RuleError,
    chain,
    comb,
    custom,
    parse_rule,
    seq,
    spread,
    step,
)


class TestSpread:
    def test_initial_state_allows_both_relations(self):
        rule = spread("is-a", "last")
        moves = dict(rule.moves(0))
        assert moves == {"is-a": 0, "last": 1}

    def test_after_switch_only_r2(self):
        rule = spread("is-a", "last")
        assert dict(rule.moves(1)) == {"last": 1}

    def test_never_terminal(self):
        rule = spread("a", "b")
        assert not rule.is_terminal(0)
        assert not rule.is_terminal(1)


class TestSeq:
    def test_exactly_one_hop_each(self):
        rule = seq("r1", "r2")
        assert dict(rule.moves(0)) == {"r1": 1}
        assert dict(rule.moves(1)) == {"r2": 2}
        assert rule.is_terminal(2)


class TestCombChainStep:
    def test_comb_interleaves(self):
        rule = comb("a", "b")
        assert dict(rule.moves(0)) == {"a": 0, "b": 0}

    def test_chain_single_relation(self):
        rule = chain("r")
        assert dict(rule.moves(0)) == {"r": 0}
        assert rule.num_states == 1

    def test_step_terminal_after_one(self):
        rule = step("r")
        assert dict(rule.moves(0)) == {"r": 1}
        assert rule.is_terminal(1)


class TestCustom:
    def test_custom_table(self):
        rule = custom("zigzag", ("a", "b"), {0: [("a", 1)], 1: [("b", 0)]})
        assert dict(rule.moves(0)) == {"a": 1}
        assert dict(rule.moves(1)) == {"b": 0}

    def test_dangling_state_rejected(self):
        with pytest.raises(RuleError):
            custom("bad", ("a",), {0: [("a", 7)]})

    def test_missing_initial_state_rejected(self):
        with pytest.raises(RuleError):
            PropagationRule("bad", ("a",), {1: ()}, initial_state=0)


class TestParser:
    def test_parse_spread(self):
        rule = parse_rule("spread(is-a, last)")
        assert rule.rule_type == "spread"
        assert rule.relations == ("is-a", "last")

    def test_parse_without_spaces(self):
        rule = parse_rule("seq(first,next)")
        assert rule.relations == ("first", "next")

    def test_parse_single_relation_rules(self):
        assert parse_rule("chain(r)").rule_type == "chain"
        assert parse_rule("step(r)").rule_type == "step"

    def test_str_roundtrip(self):
        rule = spread("is-a", "last")
        assert parse_rule(str(rule)).table == rule.table

    def test_unknown_rule_type(self):
        with pytest.raises(RuleError):
            parse_rule("zigzag(a,b)")

    def test_malformed_syntax(self):
        with pytest.raises(RuleError):
            parse_rule("spread is-a last")

    def test_wrong_arity(self):
        with pytest.raises(RuleError):
            parse_rule("spread(only-one)")


@given(
    r1=st.sampled_from(["is-a", "first", "next", "rel-x"]),
    r2=st.sampled_from(["last", "aux", "rel-y"]),
    kind=st.sampled_from(["spread", "seq", "comb"]),
)
@settings(max_examples=30, deadline=None)
def test_property_all_transitions_target_known_states(r1, r2, kind):
    rule = parse_rule(f"{kind}({r1},{r2})")
    for state in rule.table:
        for _relation, nxt in rule.moves(state):
            assert nxt in rule.table
