"""Fast-mode smoke runs of the experiment modules, asserting that the
paper's headline claims hold in the regenerated data."""

import pytest

from repro.experiments.common import REGISTRY

# Importing the runner registers every experiment.
import repro.experiments.runner  # noqa: F401


@pytest.fixture(scope="module")
def results():
    """Run the cheap experiments once; share across assertions."""
    ids = ("fig06", "fig08", "fig17", "fig19", "fig21", "textstats")
    return {eid: REGISTRY[eid](fast=True) for eid in ids}


class TestFig06Claims:
    def test_propagate_time_exceeds_frequency_share(self, results):
        data = results["fig06"].data
        assert (
            data["time_share"]["propagate"]
            > data["frequency_share"]["propagate"]
        )

    def test_propagate_near_paper_frequency(self, results):
        freq = results["fig06"].data["frequency_share"]["propagate"]
        assert 0.10 < freq < 0.30  # paper: 17%

    def test_propagate_dominates_time(self, results):
        share = results["fig06"].data["time_share"]["propagate"]
        assert share > 0.40  # paper: 64.5%


class TestFig08Claims:
    def test_traffic_is_bursty(self, results):
        data = results["fig08"].data
        assert data["peak"] > 2 * data["mean"]

    def test_bursts_over_30_occur(self, results):
        assert results["fig08"].data["bursts_over_30"] > 0


class TestFig17Claims:
    def test_speedup_saturates_above_16(self, results):
        rows = {r["beta"]: r["speedup"] for r in results["fig17"].data["rows"]}
        gain_low = rows[16] / rows[1]
        gain_high = rows[32] / rows[16]
        assert gain_high < gain_low / 2

    def test_speedup_monotone_nondecreasing(self, results):
        speedups = [r["speedup"] for r in results["fig17"].data["rows"]]
        assert all(b >= a * 0.95 for a, b in zip(speedups, speedups[1:]))


class TestFig19Claims:
    def test_propagate_share_grows_with_kb(self, results):
        rows = results["fig19"].data["rows"]
        shares = [r["propagate_share"] for r in rows]
        assert shares[-1] > shares[0]

    def test_propagation_dominant_at_largest(self, results):
        rows = results["fig19"].data["rows"]
        latency = rows[-1]["latency_us"]
        assert latency["propagate"] == max(latency.values())


class TestFig21Claims:
    def test_all_four_shape_claims(self, results):
        rows = results["fig21"].data["rows"]
        first, last = rows[0], rows[-1]
        # broadcast constant
        assert last["broadcast"] <= 2 * max(first["broadcast"], 1e-9)
        # communication sublinear in clusters
        cluster_ratio = last["clusters"] / first["clusters"]
        if first["communication"] > 0:
            assert (
                last["communication"] / first["communication"]
                < cluster_ratio
            )
        # collection dominant at the largest machine
        assert last["collection"] == max(
            last[k] for k in
            ("broadcast", "communication", "synchronization", "collection")
        )


class TestTextstatsClaims:
    def test_alpha_in_paper_range(self, results):
        alpha = results["textstats"].data["alpha"]
        assert alpha["alpha_max"] >= 10
        assert alpha["alpha_max"] <= 4000

    def test_speech_beta_reaches_paper_band(self, results):
        assert results["textstats"].data["beta_speech_max"] >= 3


class TestRendering:
    def test_every_result_renders(self, results):
        for result in results.values():
            text = result.render()
            assert result.experiment_id in text
            assert "paper:" in text
