"""Synthetic α/β workloads and the experiment registry."""

import pytest

from repro.experiments import (
    REGISTRY,
    alpha_network,
    alpha_program,
    make_alpha_workload,
    make_beta_workload,
)
from repro.experiments.workloads import SEED_COLOR_BASE


class TestAlphaNetwork:
    def test_node_count(self):
        net = alpha_network(alpha=5, path_length=3, streams=2)
        assert net.num_nodes == 2 * 5 * (3 + 1)

    def test_seed_colors_per_stream(self):
        net = alpha_network(alpha=4, path_length=2, streams=3)
        for stream in range(3):
            seeds = net.nodes_with_color(SEED_COLOR_BASE + stream)
            assert len(seeds) == 4

    def test_chains_are_linear(self):
        net = alpha_network(alpha=2, path_length=4)
        for node in net.nodes():
            assert net.fanout(node.node_id) <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            alpha_network(0, 3)
        with pytest.raises(ValueError):
            alpha_network(3, 0)


class TestAlphaProgram:
    def test_streams_are_marker_disjoint(self):
        program = alpha_program(streams=4)
        assert max(program.beta_profile()) == 4

    def test_too_many_streams_rejected(self):
        with pytest.raises(ValueError):
            alpha_program(streams=33)

    def test_collect_appended(self):
        program = alpha_program(streams=1, collect=True)
        assert program[-1].opcode == "COLLECT-NODE"


class TestWorkloadExecution:
    def test_alpha_measured_matches_request(self):
        from repro.baselines import SerialMachine

        workload = make_alpha_workload(alpha=7, path_length=3)
        report = SerialMachine(workload.network).run(workload.program)
        propagate = next(
            t for t in report.traces if t.category == "propagate"
        )
        assert propagate.alpha == 7
        assert propagate.max_hops == 3

    def test_beta_workload_shape(self):
        workload = make_beta_workload(beta=3, alpha_per_stream=2,
                                      path_length=2)
        assert workload.streams == 3
        assert max(workload.program.beta_profile()) == 3

    def test_all_chain_nodes_marked(self):
        from repro.baselines import SerialMachine
        from repro.isa import complex_marker

        workload = make_alpha_workload(alpha=3, path_length=4)
        machine = SerialMachine(workload.network)
        machine.run(workload.program)
        marked = machine.state.marker_set_nodes(complex_marker(32))
        assert len(marked) == 3 * 4


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        from repro.experiments.runner import DEFAULT_ORDER

        for experiment_id in DEFAULT_ORDER:
            assert experiment_id in REGISTRY

    def test_registry_entries_runnable(self):
        """Smoke-run the two cheapest experiments end-to-end."""
        result = REGISTRY["fig21"](fast=True)
        assert result.experiment_id == "fig21"
        assert result.lines
        assert result.data["rows"]
        assert "collection" in result.render()

    def test_run_experiments_unknown_id(self):
        from repro.experiments.runner import run_experiments

        with pytest.raises(KeyError):
            run_experiments(["fig99"])
