"""Chaos experiment: rolling gray failure/repair acceptance criteria."""

import pytest

from repro.experiments.chaos import (
    CHAOS_SEED,
    build_scenario,
    flap_faults,
    gray_faults,
    run,
)


@pytest.fixture(scope="module")
def result():
    return run(fast=True)


class TestFaultRecipes:
    def test_gray_is_silent(self):
        faults = gray_faults(101)
        assert faults.enabled
        assert faults.mu_slowdown_factor == 3.0
        assert faults.marker_drop_prob > 0
        # No static failures: a gray replica looks structurally healthy.
        assert faults.failed_cluster_fraction == 0.0
        assert not faults.failed_clusters
        assert faults.link_fail_prob == 0.0

    def test_flap_is_a_pure_timeline(self):
        faults = flap_faults(202, mean_service_us=400.0)
        fail, repair = faults.schedule.events
        assert fail.kind == "cluster-fail"
        assert repair.kind == "cluster-repair"
        assert fail.cluster == repair.cluster
        assert 0 < fail.time_us < repair.time_us
        # The flap is the only fault: no static or gray degradation.
        assert faults.mu_slowdown_factor == 1.0
        assert faults.marker_drop_prob == 0.0


class TestScenarioShape:
    def test_build_scenario(self):
        network, config, queries, profile = build_scenario(fast=True)
        assert config.health_enabled
        assert config.audit_interval is not None
        assert len(queries) == 140
        assert profile["mean_service_us"] > 0
        # Every replica but 0 is touched; each gets exactly one
        # degradation and one repair event.
        touched = sorted({e.replica for e in config.replica_timeline})
        assert touched == [1, 2, 3]
        for rid in touched:
            events = sorted(
                (e for e in config.replica_timeline if e.replica == rid),
                key=lambda e: e.time_us,
            )
            assert len(events) == 2
            assert events[0].faults is not None
            assert events[1].faults is None  # repair: back to healthy

    def test_arrival_stream_is_seeded(self):
        _, _, a, _ = build_scenario(fast=True)
        _, _, b, _ = build_scenario(fast=True)
        assert [q.arrival_us for q in a] == [q.arrival_us for q in b]
        assert CHAOS_SEED != 0


class TestAcceptanceCriteria:
    def test_all_queries_accounted(self, result):
        data = result.data
        assert data["submitted"] == 140
        assert (
            data["served"] + data["shed"] + data["timed_out"]
            + data["failed"]
        ) == data["submitted"]

    def test_quarantine_fires_on_gray_replicas(self, result):
        quarantines = result.data["quarantines"]
        assert quarantines[1] + quarantines[3] >= 1
        assert quarantines[0] == 0  # untouched replica stays active

    def test_readmission_after_repair(self, result):
        assert sum(result.data["readmissions"].values()) >= 1

    def test_audit_catches_silent_truncation(self, result):
        assert result.data["audit_checks"] > 0
        assert result.data["audit_mismatches"] >= 1

    def test_rendered_checks_all_ok(self, result):
        text = result.render()
        assert "[ok]" in text
        assert "[FAIL]" not in text
