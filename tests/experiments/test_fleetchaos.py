"""Fleetchaos experiment: regional-outage acceptance criteria.

These are the PR's headline invariants: with R=2 and one full-region
outage, at least 99% of in-deadline queries return a correct (possibly
degraded) answer, and post-rebalance replication returns to R.
"""

import pytest

from repro.experiments.fleetchaos import (
    FLEETCHAOS_SEED,
    ROOTS,
    build_fleet_queries,
    build_scenario,
    run,
)


@pytest.fixture(scope="module")
def result():
    return run(fast=True)


class TestScenarioShape:
    def test_build_scenario(self):
        network, config, queries, profile = build_scenario(fast=True)
        assert config.num_regions == 3
        assert config.replication_factor == 2
        assert config.partition_policy == "community"
        assert config.health_enabled
        kinds = [e.kind for e in config.region_schedule.events]
        assert kinds == [
            "region-fail", "region-repair",
            "region-slowdown", "region-slowdown",
        ]
        fail, repair, gray_on, gray_off = config.region_schedule.events
        assert fail.region == repair.region
        assert gray_on.region == gray_off.region != fail.region
        assert gray_on.value > 1.0 and gray_off.value == 1.0
        # The stream spans the whole timeline.
        assert queries[-1].arrival_us > gray_on.time_us

    def test_arrival_stream_is_seeded(self):
        a = build_fleet_queries(50, 2_000.0, 50_000.0, FLEETCHAOS_SEED)
        b = build_fleet_queries(50, 2_000.0, 50_000.0, FLEETCHAOS_SEED)
        assert [(q.arrival_us, q.template) for q in a] == \
               [(q.arrival_us, q.template) for q in b]

    def test_roots_cover_multiple_templates(self):
        queries = build_fleet_queries(
            80, 2_000.0, 50_000.0, FLEETCHAOS_SEED
        )
        assert len({q.template for q in queries}) == len(ROOTS)


class TestAcceptanceCriteria:
    def test_all_queries_accounted(self, result):
        data = result.data
        total = (
            data["complete"] + data["degraded"] + data["failed"]
            + data["shed"] + data["timed_out"]
        )
        assert total == data["submitted"] == 220

    def test_99_percent_answered_correct(self, result):
        data = result.data
        assert data["answered_fraction"] >= 0.99
        answered = data["complete"] + data["degraded"]
        assert data["correct_answered"] == answered

    def test_p99_within_deadline(self, result):
        assert result.data["p99_latency_us"] <= result.data["deadline_us"]

    def test_outage_actually_failed_over(self, result):
        data = result.data
        assert data["total_failovers"] >= 1
        assert data["stale_legs"] >= 1
        assert data["degraded"] >= 1

    def test_replication_returns_to_r(self, result):
        data = result.data
        assert data["final_replication"] == [2, 2, 2, 2]
        assert data["rebuilds_completed"] >= 1

    def test_no_primary_flapping(self, result):
        # 4 shards, each at most one away-and-back cycle (outage or
        # gray quarantine): the ceiling is two moves per shard.
        assert result.data["primary_changes"] <= 8

    def test_rendered_checks_all_ok(self, result):
        text = result.render()
        assert "[ok]" in text
        assert "[FAIL]" not in text
