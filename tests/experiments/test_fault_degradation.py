"""The faultdeg experiment: monotone graceful degradation, counters."""

import pytest

from repro.experiments.common import REGISTRY

# Importing the runner registers every experiment.
import repro.experiments.runner  # noqa: F401


@pytest.fixture(scope="module")
def result():
    """Run the degradation sweep once in fast mode."""
    return REGISTRY["faultdeg"](fast=True)


def _curve(result, rate):
    rows = [r for r in result.data["rows"] if r["fault_rate"] == rate]
    return sorted(rows, key=lambda r: r["failed_fraction"])


class TestRegistration:
    def test_registered_in_default_order(self):
        from repro.experiments.runner import DEFAULT_ORDER

        assert "faultdeg" in REGISTRY
        assert "faultdeg" in DEFAULT_ORDER


class TestDegradationCurve:
    def test_sweep_covers_zero_to_quarter_failed(self, result):
        fractions = {r["failed_fraction"] for r in result.data["rows"]}
        assert min(fractions) == 0.0
        assert max(fractions) == 0.25

    def test_accuracy_declines_monotonically(self, result):
        """Detect-only accuracy falls smoothly with the failed-cluster
        fraction — graceful degradation, not a crash."""
        rates = sorted({r["fault_rate"] for r in result.data["rows"]})
        for rate in rates:
            curve = [
                r["accuracy_detect_only"] for r in _curve(result, rate)
            ]
            assert all(
                later <= earlier + 0.02
                for earlier, later in zip(curve, curve[1:])
            )
            assert curve[0] > 0.9
            assert curve[-1] < curve[0]
            # Declines but never collapses to zero (no crash).
            assert curve[-1] > 0.0

    def test_recovery_stack_restores_accuracy(self, result):
        for row in result.data["rows"]:
            assert (
                row["accuracy_recovered"]
                >= row["accuracy_detect_only"] - 1e-9
            )
        worst = min(
            r["accuracy_recovered"] for r in result.data["rows"]
        )
        assert worst > 0.9

    def test_no_fault_cell_is_perfect(self, result):
        for row in result.data["rows"]:
            if row["failed_fraction"] == 0.0:
                assert row["accuracy_recovered"] == 1.0


class TestCountersSurfaced:
    def test_retry_and_backoff_counters_present(self, result):
        rows = result.data["rows"]
        assert sum(r["transfer_retries"] for r in rows) > 0
        assert sum(r["retry_time_us"] for r in rows) > 0

    def test_rerouting_grows_with_failures(self, result):
        rates = sorted({r["fault_rate"] for r in result.data["rows"]})
        curve = _curve(result, rates[0])
        assert curve[-1]["messages_rerouted"] > curve[0]["messages_rerouted"]

    def test_renders(self, result):
        text = result.render()
        assert "faultdeg" in text
        assert "retries" in text
