"""Overload experiment: the graceful-degradation acceptance criteria."""

import pytest

from repro.experiments.overload import (
    ARRIVAL_SEED,
    FAULT_ARMS,
    LOAD_FACTORS,
    build_queries,
    run,
)


@pytest.fixture(scope="module")
def result():
    return run(fast=True)


class TestArrivalStream:
    def test_deterministic_for_fixed_seed(self):
        a = build_queries(50, rate_per_us=0.01, deadline_us=1000.0)
        b = build_queries(50, rate_per_us=0.01, deadline_us=1000.0)
        assert [(q.arrival_us, q.template) for q in a] == [
            (q.arrival_us, q.template) for q in b
        ]

    def test_rate_compresses_same_pattern(self):
        """Doubling the rate halves every gap but keeps the template
        mix — the monotone-load comparison is apples-to-apples."""
        slow = build_queries(50, rate_per_us=0.01, deadline_us=1000.0)
        fast = build_queries(50, rate_per_us=0.02, deadline_us=1000.0)
        for s, f in zip(slow, fast):
            assert f.arrival_us == pytest.approx(s.arrival_us / 2)
            assert f.template == s.template

    def test_different_seed_different_stream(self):
        a = build_queries(50, 0.01, 1000.0, seed=ARRIVAL_SEED)
        b = build_queries(50, 0.01, 1000.0, seed=ARRIVAL_SEED + 1)
        assert [q.arrival_us for q in a] != [q.arrival_us for q in b]


class TestAcceptanceCriteria:
    def test_sweep_covers_both_arms(self, result):
        rows = result.data["rows"]
        assert len(rows) == len(FAULT_ARMS) * len(LOAD_FACTORS)

    def test_every_query_accounted(self, result):
        """Exactly one outcome bucket per query, in every cell."""
        for row in result.data["rows"]:
            assert row["accounted"]
            buckets = (row["served"] + row["shed"]
                       + row["timed_out"] + row["failed"])
            assert buckets == row["submitted"]

    def test_p99_bounded_at_double_load_with_faults(self, result):
        """At 2x sustainable throughput with degraded replicas, served
        p99 stays within 3x the uncontended p99 (no collapse)."""
        p99_0 = result.data["uncontended_p99_us"]
        for row in result.data["rows"]:
            if row["load_factor"] >= 2.0 and row["served"]:
                assert row["p99_us"] <= 3.0 * p99_0

    def test_shed_fraction_monotone_in_load(self, result):
        """Shedding grows smoothly with offered load in each arm."""
        rows = result.data["rows"]
        for arm in FAULT_ARMS:
            fractions = [
                r["shed_fraction"] for r in rows
                if r["fault_fraction"] == arm
            ]
            assert fractions == sorted(fractions)
            assert fractions[-1] > fractions[0]  # overload actually sheds

    def test_no_crash_under_overload(self, result):
        """The highest-load, faulty cell still serves some queries."""
        worst = [
            r for r in result.data["rows"]
            if r["load_factor"] == max(LOAD_FACTORS)
            and r["fault_fraction"] == max(FAULT_ARMS)
        ][0]
        assert worst["served"] > 0

    def test_run_deterministic(self, result):
        again = run(fast=True)
        assert again.data["rows"] == result.data["rows"]
