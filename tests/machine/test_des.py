"""Discrete-event kernel: ordering, servers, pools."""

import pytest

from repro.machine import (
    Job,
    Server,
    ServerPool,
    SimulationError,
    Simulator,
    Timeout,
    utilization,
)
from repro.machine.des import COMPACT_THRESHOLD


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_broken_by_schedule_order(self):
        sim = Simulator()
        log = []
        for tag in ("x", "y", "z"):
            sim.schedule(2.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_events_may_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(1)
            sim.schedule(3.0, lambda: log.append(2))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1, 2]
        assert sim.now == 4.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("no"))
        sim.cancel(event)
        sim.run()
        assert log == []

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(10.0, lambda: log.append("b"))
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_is_inclusive(self):
        """Events scheduled exactly at ``until`` fire."""
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("at"))
        sim.schedule(5.0 + 1e-9, lambda: log.append("after"))
        sim.run(until=5.0)
        assert log == ["at"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_on_empty_heap(self):
        """Back-to-back run(until=...) calls advance time even when no
        events exist in the window."""
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_schedule_zero_during_processing_is_fifo(self):
        """schedule(0, fn) inside a handler fires after already-queued
        events of the same timestamp, in submission order."""
        sim = Simulator()
        log = []

        def handler():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("chained-1"))
            sim.schedule(0.0, lambda: log.append("chained-2"))

        sim.schedule(2.0, handler)
        sim.schedule(2.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "chained-1", "chained-2"]
        assert sim.now == 2.0

    def test_schedule_zero_at_until_boundary_fires(self):
        """Zero-delay chains at the until boundary still complete."""
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: log.append("z")))
        sim.run(until=5.0)
        assert log == ["z"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestHeapCompaction:
    def test_cancelling_10k_timeouts_keeps_heap_bounded(self):
        """Regression: cancelled watchdogs used to stay in the heap
        until popped, so deadline-heavy serving runs grew the heap
        without bound."""
        sim = Simulator()
        for i in range(10_000):
            watchdog = Timeout(sim, 1_000.0 + i, lambda: None)
            watchdog.cancel()
            assert sim.heap_size <= COMPACT_THRESHOLD + 1
        assert sim.pending == 0
        sim.run()
        assert sim.events_processed == 0

    def test_interleaved_cancel_bounds_heap_to_live_events(self):
        """With half the events cancelled, compaction keeps heap slots
        within ~2x the live-event count."""
        sim = Simulator()
        fired = []
        expected = []
        for i in range(10_000):
            handle = sim.schedule(500.0 + i, fired.append, i)
            if i % 2:
                sim.cancel(handle)
            else:
                expected.append(i)
            assert sim.heap_size <= 2 * sim.pending + COMPACT_THRESHOLD + 1
        sim.run()
        assert fired == expected

    def test_pending_counts_live_events_only(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        for handle in handles[:4]:
            sim.cancel(handle)
        assert sim.pending == 6
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run()
        sim.cancel(handle)
        sim.cancel(handle)
        assert fired == ["x"]
        assert sim.pending == 0


class TestReserveCommit:
    def test_reserved_seq_fixes_tie_break_order(self):
        """A reserved event fires before a same-time event scheduled
        later, even when committed after it — the tie-break follows
        reservation order, not heap-entry order."""
        sim = Simulator()
        log = []
        reserved = sim.reserve(5.0, log.append, "reserved")
        sim.schedule(5.0, log.append, "scheduled")
        sim.commit(reserved)
        sim.run()
        assert log == ["reserved", "scheduled"]

    def test_reserved_event_is_pending_but_not_in_heap(self):
        sim = Simulator()
        event = sim.reserve(3.0, lambda: None)
        assert sim.pending == 1
        assert sim.heap_size == 0
        sim.commit(event)
        assert sim.heap_size == 1
        sim.run()
        assert sim.events_processed == 1
        assert sim.pending == 0

    def test_reserve_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reserve(1.0, lambda: None)


class TestElapsedBusyTime:
    def test_server_prorates_in_service_job(self):
        sim = Simulator()
        server = Server(sim)
        server.submit(Job(10.0))
        sim.run(until=4.0)
        # The accumulator accrues at job start; the elapsed view never
        # counts service that has not happened yet.
        assert server.busy_time == 10.0
        assert server.busy_time_until(sim.now) == 4.0

    def test_pool_prorates_only_unfinished_jobs(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=2)
        pool.submit(Job(2.0))
        pool.submit(Job(10.0))
        sim.run(until=5.0)
        assert pool.busy_time_until(sim.now) == 2.0 + 5.0
        sim.run()
        assert pool.busy_time_until(sim.now) == pool.busy_time == 12.0


class TestServer:
    def test_fifo_serialization(self):
        sim = Simulator()
        server = Server(sim)
        done = []
        server.submit(Job(3.0, on_done=lambda: done.append(sim.now)))
        server.submit(Job(2.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [3.0, 5.0]

    def test_busy_time_accumulates(self):
        sim = Simulator()
        server = Server(sim)
        server.submit(Job(3.0))
        server.submit(Job(2.0))
        sim.run()
        assert server.busy_time == 5.0
        assert server.jobs_done == 2
        assert server.idle

    def test_on_start_called_at_service_start(self):
        sim = Simulator()
        server = Server(sim)
        starts = []
        server.submit(Job(3.0))
        server.submit(Job(1.0, on_start=lambda: starts.append(sim.now)))
        sim.run()
        assert starts == [3.0]

    def test_max_queue(self):
        sim = Simulator()
        server = Server(sim)
        for _ in range(3):
            server.submit(Job(1.0))
        assert server.max_queue >= 2


class TestServerPool:
    def test_parallel_service(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=2)
        done = []
        for _ in range(2):
            pool.submit(Job(4.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [4.0, 4.0]

    def test_capacity_respected(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=2)
        done = []
        for _ in range(4):
            pool.submit(Job(1.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_zero_servers_rejected(self):
        with pytest.raises(SimulationError):
            ServerPool(Simulator(), servers=0)

    def test_idle_transitions(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=1)
        assert pool.idle
        pool.submit(Job(1.0))
        assert not pool.idle
        sim.run()
        assert pool.idle


class TestTimeout:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        watchdog = Timeout(sim, 5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert watchdog.expired
        assert not watchdog.armed

    def test_cancel_disarms(self):
        sim = Simulator()
        fired = []
        watchdog = Timeout(sim, 5.0, lambda: fired.append(sim.now))
        sim.schedule(1.0, watchdog.cancel)
        sim.run()
        assert fired == []
        assert not watchdog.expired
        assert not watchdog.armed


class TestPenaltyHook:
    def test_hook_extends_service_time(self):
        sim = Simulator()
        server = Server(sim)
        server.penalty_hook = lambda job: 2.0
        done = []
        server.submit(Job(3.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [5.0]
        assert server.busy_time == 5.0

    def test_no_hook_is_identical(self):
        sim = Simulator()
        server = Server(sim)
        done = []
        server.submit(Job(3.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [3.0]
        assert server.busy_time == 3.0

    def test_pool_hook(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=2)
        pool.penalty_hook = lambda job: 1.0
        done = []
        for _ in range(2):
            pool.submit(Job(1.0, on_done=lambda: done.append(sim.now)))
        sim.run()
        assert done == [2.0, 2.0]


def test_utilization_helper():
    assert utilization(5.0, servers=2, elapsed=5.0) == 0.5
    assert utilization(1.0, servers=1, elapsed=0.0) == 0.0


class TestStress:
    def test_large_randomized_job_graph_conserves_jobs(self):
        """A few thousand jobs across servers and pools all complete,
        regardless of arrival pattern."""
        import random

        rng = random.Random(99)
        sim = Simulator()
        pool = ServerPool(sim, servers=3)
        server = Server(sim)
        done = {"count": 0}

        def make_job(depth):
            def on_done():
                done["count"] += 1
                if depth > 0 and rng.random() < 0.5:
                    target = pool if rng.random() < 0.5 else server
                    target.submit(Job(rng.uniform(0.1, 2.0),
                                      on_done=make_job(depth - 1).on_done))

            return Job(rng.uniform(0.1, 2.0), on_done=on_done)

        submitted = 400
        for _ in range(submitted):
            (pool if rng.random() < 0.5 else server).submit(make_job(3))
        sim.run()
        assert done["count"] >= submitted
        assert pool.idle and server.idle
        # Busy time conservation: jobs_done matches completions.
        assert pool.jobs_done + server.jobs_done == done["count"]
