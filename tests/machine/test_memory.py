"""Multiport memories, cluster arbiter, semaphore table."""

import pytest

from repro.machine import (
    BoundedQueue,
    ClusterArbiter,
    MemoryError_,
    MultiportMemory,
    SemaphoreTable,
)


class TestMultiportMemory:
    def test_concurrent_reads_allowed(self):
        mem = MultiportMemory(words=16, ports=4)
        mem.write(0, 5, 42)
        mem.begin_cycle()
        assert mem.read(0, 5) == 42
        assert mem.read(1, 5) == 42
        assert mem.read(2, 5) == 42
        mem.end_cycle()

    def test_exclusive_write_violation_detected(self):
        mem = MultiportMemory(words=16, ports=4)
        mem.begin_cycle()
        mem.write(0, 7, 1)
        with pytest.raises(MemoryError_):
            mem.write(1, 7, 2)
        assert mem.conflicts == 1

    def test_same_port_may_rewrite(self):
        mem = MultiportMemory(words=16, ports=4)
        mem.begin_cycle()
        mem.write(0, 7, 1)
        mem.write(0, 7, 2)
        mem.end_cycle()
        assert mem.read(0, 7) == 2

    def test_different_words_parallel_writes_ok(self):
        mem = MultiportMemory(words=16, ports=4)
        mem.begin_cycle()
        mem.write(0, 1, 10)
        mem.write(1, 2, 20)
        mem.end_cycle()
        assert mem.read(3, 1) == 10
        assert mem.read(3, 2) == 20

    def test_bad_port_rejected(self):
        mem = MultiportMemory(words=4, ports=4)
        with pytest.raises(MemoryError_):
            mem.read(4, 0)

    def test_access_counters(self):
        mem = MultiportMemory(words=4)
        mem.write(0, 0, 1)
        mem.read(1, 0)
        assert mem.writes == 1 and mem.reads == 1


class TestClusterArbiter:
    def test_one_grant_at_a_time(self):
        arbiter = ClusterArbiter()
        arbiter.request(0)
        arbiter.request(1)
        first = arbiter.grant()
        assert first in (0, 1)
        assert arbiter.grant() is None  # held
        arbiter.release(first)
        second = arbiter.grant()
        assert second in (0, 1) and second != first

    def test_fcfs_between_batches(self):
        arbiter = ClusterArbiter()
        arbiter.request(2)
        granted = arbiter.grant()
        assert granted == 2
        arbiter.request(1)  # arrives while 2 holds
        arbiter.release(2)
        arbiter.request(3)  # later batch
        assert arbiter.grant() == 1

    def test_simultaneous_requests_random_but_complete(self):
        arbiter = ClusterArbiter(seed=42)
        for port in range(4):
            arbiter.request(port)
        order = []
        for _ in range(4):
            port = arbiter.grant()
            order.append(port)
            arbiter.release(port)
        assert sorted(order) == [0, 1, 2, 3]

    def test_release_without_grant_rejected(self):
        arbiter = ClusterArbiter()
        with pytest.raises(MemoryError_):
            arbiter.release(0)

    def test_bad_port_rejected(self):
        with pytest.raises(MemoryError_):
            ClusterArbiter(ports=4).request(9)


class TestSemaphoreTable:
    def test_test_and_set_race_free_under_grant(self):
        arbiter = ClusterArbiter()
        table = SemaphoreTable(arbiter)
        arbiter.request(0)
        holder = arbiter.grant()
        assert table.acquire(holder, section=3) is True
        assert table.owner(3) == holder
        arbiter.release(holder)
        # Second contender sees the section busy.
        arbiter.request(1)
        second = arbiter.grant()
        assert table.acquire(second, section=3) is False
        arbiter.release(second)

    def test_access_without_grant_rejected(self):
        table = SemaphoreTable(ClusterArbiter())
        with pytest.raises(MemoryError_):
            table.acquire(0, section=0)

    def test_release_section(self):
        arbiter = ClusterArbiter()
        table = SemaphoreTable(arbiter)
        arbiter.request(0)
        holder = arbiter.grant()
        table.acquire(holder, 1)
        table.release_section(holder, 1)
        assert table.owner(1) is None

    def test_release_foreign_section_rejected(self):
        arbiter = ClusterArbiter()
        table = SemaphoreTable(arbiter)
        with pytest.raises(MemoryError_):
            table.release_section(2, 0)


class TestBoundedQueue:
    def test_fifo(self):
        queue = BoundedQueue(capacity=4)
        queue.push("a")
        queue.push("b")
        assert queue.pop() == "a"
        assert queue.pop() == "b"

    def test_soft_capacity_counts_overflow(self):
        queue = BoundedQueue(capacity=2)
        assert queue.push(1) is True
        assert queue.push(2) is True
        assert queue.push(3) is False   # over capacity, still queued
        assert queue.overflows == 1
        assert len(queue) == 3
        assert queue.pop() == 1

    def test_peak_tracking(self):
        queue = BoundedQueue(capacity=10)
        for i in range(5):
            queue.push(i)
        for _ in range(5):
            queue.pop()
        assert queue.peak == 5

    def test_pop_empty_rejected(self):
        with pytest.raises(MemoryError_):
            BoundedQueue(capacity=1).pop()
