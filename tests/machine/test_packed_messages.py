"""Wire-format fidelity: running with real 64-bit packed messages.

With ``pack_messages=True`` every cross-cluster activation round-trips
through the hardware wire format, truncating values to bfloat16.  Set
membership must be identical to the exact run; values may differ only
within bfloat16 relative error accumulated over the path.
"""

from hypothesis import given, settings, strategies as st

from repro.machine import MachineConfig, SnapMachine

from tests.core.test_equivalence import (
    MARKERS,
    random_network,
    random_program,
)


@given(seed=st.integers(min_value=0, max_value=4000))
@settings(max_examples=15, deadline=None)
def test_property_packed_run_preserves_set_membership(seed):
    program = random_program(seed + 11, nodes=18, length=10)

    def run(packed):
        machine = SnapMachine(
            random_network(seed, 18, 45),
            MachineConfig(num_clusters=5, mus_per_cluster=2,
                          pack_messages=packed),
        )
        machine.run(program)
        return machine.state

    exact = run(False)
    packed = run(True)
    for marker in MARKERS:
        assert (
            packed.marker_set_nodes(marker) == exact.marker_set_nodes(marker)
        ), f"marker {marker} set-membership diverged under packing"


@given(seed=st.integers(min_value=0, max_value=4000))
@settings(max_examples=10, deadline=None)
def test_property_packed_values_within_bfloat16_error(seed):
    program = random_program(seed + 23, nodes=18, length=8)

    def run(packed):
        machine = SnapMachine(
            random_network(seed, 18, 45),
            MachineConfig(num_clusters=4, mus_per_cluster=2,
                          pack_messages=packed),
        )
        machine.run(program)
        return machine.state

    exact = run(False)
    packed = run(True)
    for marker in range(6):  # complex markers used by the generator
        for node in exact.marker_set_nodes(marker):
            v_exact = exact.marker_value(marker, node)
            v_packed = packed.marker_value(marker, node)
            tolerance = max(abs(v_exact) * 0.05, 0.05)
            assert abs(v_packed - v_exact) <= tolerance, (
                f"marker {marker} at node {node}: "
                f"{v_packed} vs {v_exact}"
            )
