"""Property-based suite for the fault injector's determinism contract.

Two guarantees the rest of the repo leans on:

* **Seed determinism** — the same :class:`FaultConfig` always realizes
  a bit-identical static pattern *and* an identical transient sample
  sequence, regardless of when or where the injector is built.
* **Zero cost when off** — ``FaultConfig.disabled()`` draws from no
  RNG stream at all, realizes an empty pattern, and reports
  ``enabled`` False, so fault-free runs stay byte-identical to
  pre-fault builds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.machine.faults as faults_module
from repro.machine.faults import FaultConfig, FaultInjector

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
FRACTIONS = st.floats(min_value=0.0, max_value=0.75, allow_nan=False)
CLUSTER_COUNTS = st.sampled_from([2, 4, 8, 16])


def _build(config, num_clusters, mus=3):
    return FaultInjector(config, num_clusters, [mus] * num_clusters)


def _transient_trace(injector, draws=64):
    trace = []
    for _ in range(draws):
        trace.append(injector.transfer_corrupted())
        trace.append(injector.scp_timeout())
        trace.append(injector.marker_dropped())
    return trace


class TestSeedDeterminism:
    @given(
        seed=SEEDS,
        num_clusters=CLUSTER_COUNTS,
        fraction=FRACTIONS,
        mu_loss=PROBS,
        link_fail=PROBS,
    )
    @settings(max_examples=100, deadline=None)
    def test_static_pattern_is_bit_identical(
        self, seed, num_clusters, fraction, mu_loss, link_fail
    ):
        config = FaultConfig(
            seed=seed,
            failed_cluster_fraction=fraction,
            mu_loss_prob=mu_loss,
            link_fail_prob=link_fail,
        )
        a = _build(config, num_clusters)
        b = _build(config, num_clusters)
        assert a.failed_clusters == b.failed_clusters
        assert a.effective_mu_counts == b.effective_mu_counts
        assert a.dead_links == b.dead_links
        assert a.blocked_clusters == b.blocked_clusters
        assert a.blocked_links == b.blocked_links

    @given(
        seed=SEEDS,
        corrupt=PROBS,
        scp=PROBS,
        drop=PROBS,
    )
    @settings(max_examples=100, deadline=None)
    def test_transient_sequence_is_identical(self, seed, corrupt, scp, drop):
        config = FaultConfig(
            seed=seed,
            transfer_corrupt_prob=corrupt,
            scp_timeout_prob=scp,
            marker_drop_prob=drop,
        )
        a = _build(config, 4)
        b = _build(config, 4)
        assert _transient_trace(a) == _transient_trace(b)

    @given(seed=SEEDS, num_clusters=CLUSTER_COUNTS)
    @settings(max_examples=50, deadline=None)
    def test_streams_are_independent_of_draw_order(self, seed, num_clusters):
        """Interleaving transient draws never perturbs the static
        pattern: each knob has its own named stream."""
        config = FaultConfig(
            seed=seed,
            failed_cluster_fraction=0.25,
            transfer_corrupt_prob=0.5,
            scp_timeout_prob=0.5,
        )
        a = _build(config, num_clusters)
        b = _build(config, num_clusters)
        # Drain transient streams on `a` only; the realized patterns
        # were fixed at construction and stay equal.
        _transient_trace(a)
        assert a.failed_clusters == b.failed_clusters
        assert a.dead_links == b.dead_links


class TestDisabledIsFree:
    def test_disabled_flags_and_pattern(self):
        config = FaultConfig.disabled()
        assert not config.enabled
        injector = _build(config, 8)
        assert injector.failed_clusters == frozenset()
        assert injector.dead_links == frozenset()
        assert injector.effective_mu_counts == (3,) * 8
        assert injector.stats.total_injected() == 0
        assert not injector.corruption_possible
        assert not injector.drops_possible
        assert not injector.slowdown_possible

    def test_disabled_config_draws_no_rng(self, monkeypatch):
        draws = []
        real_stream = faults_module._stream

        class _Counting:
            def __init__(self, rng, name):
                self._rng, self._name = rng, name

            def __getattr__(self, attr):
                value = getattr(self._rng, attr)
                if callable(value):
                    def wrapped(*args, **kwargs):
                        draws.append((self._name, attr))
                        return value(*args, **kwargs)
                    return wrapped
                return value

        def counting_stream(config, name):
            return _Counting(real_stream(config, name), name)

        monkeypatch.setattr(faults_module, "_stream", counting_stream)
        injector = _build(FaultConfig.disabled(), 8)
        _transient_trace(injector, draws=16)
        assert draws == []

    @given(seed=SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_zero_probability_knobs_never_sample(self, seed):
        """Any seed with all probabilities at zero is equivalent to
        disabled(): transient queries return False without sampling."""
        injector = _build(FaultConfig(seed=seed), 8)
        assert not any(_transient_trace(injector))
        assert injector._drop_rng is None
