"""Fault injection and recovery: determinism, zero-cost-off, layers."""

import json
from dataclasses import replace

import pytest

from repro.isa import assemble
from repro.isa.allocator import MarkerAllocator
from repro.machine import (
    FaultConfig,
    FaultConfigError,
    FaultInjector,
    MachineConfig,
    RetryPolicy,
    SnapMachine,
    failed_clusters_for,
)
from repro.machine.memory import ClusterArbiter, MemoryError_, MultiportMemory
from repro.network.generator import generate_hierarchy_kb
from repro.network.partition import (
    PartitionError,
    evict_clusters,
    round_robin_partition,
)

PROGRAM = """
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""


def _run(faults, num_nodes=120, num_clusters=16):
    config = MachineConfig(
        num_clusters=num_clusters, mus_per_cluster=2, faults=faults
    )
    machine = SnapMachine(
        generate_hierarchy_kb(num_nodes, branching=3), config
    )
    return machine.run(assemble(PROGRAM))


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            base_backoff_us=1.0, backoff_factor=2.0, max_backoff_us=5.0
        )
        assert policy.backoff(0) == 1.0
        assert policy.backoff(1) == 2.0
        assert policy.backoff(2) == 4.0
        assert policy.backoff(3) == 5.0  # capped
        assert policy.backoff(10) == 5.0

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultConfig:
    def test_disabled_injects_nothing(self):
        config = FaultConfig.disabled()
        assert not config.enabled

    def test_any_rate_enables(self):
        assert FaultConfig(transfer_corrupt_prob=0.1).enabled
        assert FaultConfig(failed_clusters=(3,)).enabled
        assert not FaultConfig(seed=42).enabled

    def test_probability_validation(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(link_fail_prob=1.5)

    @pytest.mark.parametrize("name", [
        "failed_cluster_fraction", "mu_loss_prob", "link_fail_prob",
        "transfer_corrupt_prob", "scp_timeout_prob",
    ])
    def test_probability_errors_name_the_field(self, name):
        """Every out-of-range rate names the offending field and value
        so sweep scripts can report what they got wrong."""
        for bad in (-0.1, 1.5):
            with pytest.raises(FaultConfigError) as excinfo:
                FaultConfig(**{name: bad})
            assert name in str(excinfo.value)
            assert str(bad) in str(excinfo.value)

    def test_negative_penalty_named(self):
        with pytest.raises(FaultConfigError, match="scp_timeout_penalty_us"):
            FaultConfig(scp_timeout_penalty_us=-1.0)

    def test_negative_replay_rounds_named(self):
        with pytest.raises(FaultConfigError, match="max_replay_rounds"):
            FaultConfig(max_replay_rounds=-1)

    def test_negative_failed_cluster_ids_named(self):
        with pytest.raises(FaultConfigError, match="failed_clusters"):
            FaultConfig(failed_clusters=(2, -1))

    @pytest.mark.parametrize("name,bad", [
        ("max_retries", -1),
        ("base_backoff_us", -0.5),
        ("max_backoff_us", -2.0),
        ("timeout_budget_us", -1.0),
        ("backoff_factor", 0.5),
    ])
    def test_retry_policy_errors_name_the_field(self, name, bad):
        with pytest.raises(FaultConfigError) as excinfo:
            RetryPolicy(**{name: bad})
        assert name in str(excinfo.value)
        assert str(bad) in str(excinfo.value)


class TestFailedClusterSelection:
    def test_deterministic_per_seed(self):
        config = FaultConfig(seed=7, failed_cluster_fraction=0.25)
        assert failed_clusters_for(config, 16) == failed_clusters_for(
            config, 16
        )

    def test_different_seeds_differ(self):
        picks = {
            failed_clusters_for(
                FaultConfig(seed=s, failed_cluster_fraction=0.25), 16
            )
            for s in range(20)
        }
        assert len(picks) > 1

    def test_explicit_list_wins(self):
        config = FaultConfig(failed_clusters=(2, 5))
        assert failed_clusters_for(config, 16) == frozenset({2, 5})

    def test_at_least_one_survivor(self):
        config = FaultConfig(failed_clusters=tuple(range(8)))
        assert len(failed_clusters_for(config, 8)) < 8

    def test_zero_fraction_fails_nothing(self):
        config = FaultConfig(seed=3, mu_loss_prob=0.5)
        assert failed_clusters_for(config, 16) == frozenset()


class TestFaultInjector:
    def test_surviving_clusters_keep_one_mu(self):
        config = FaultConfig(seed=1, mu_loss_prob=1.0)
        injector = FaultInjector(config, 4, [3, 3, 2, 2])
        assert all(c >= 1 for c in injector.effective_mu_counts)
        assert injector.stats.mus_lost > 0

    def test_dead_links_are_real_links(self):
        from repro.machine import HypercubeTopology

        config = FaultConfig(seed=5, link_fail_prob=0.5)
        injector = FaultInjector(config, 16, [2] * 16)
        topo = HypercubeTopology(16)
        for a, b in injector.dead_links:
            assert a < b
            assert b in topo.neighbors(a)

    def test_pattern_reproducible(self):
        config = FaultConfig(
            seed=9, failed_cluster_fraction=0.25,
            mu_loss_prob=0.3, link_fail_prob=0.2,
        )
        one = FaultInjector(config, 16, [2] * 16)
        two = FaultInjector(config, 16, [2] * 16)
        assert one.failed_clusters == two.failed_clusters
        assert one.effective_mu_counts == two.effective_mu_counts
        assert one.dead_links == two.dead_links

    def test_mu_count_mismatch_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultInjector(FaultConfig(), 4, [2, 2])


class TestMemoryFaults:
    def test_parity_detects_corruption(self):
        mem = MultiportMemory(words=8)
        mem.write(0, 3, 0b1011)
        mem.corrupt(3, bit=2)
        value, ok = mem.read_checked(1, 3)
        assert not ok
        assert mem.parity_errors == 1

    def test_clean_read_passes_parity(self):
        mem = MultiportMemory(words=8)
        mem.write(0, 3, 0b1011)
        value, ok = mem.read_checked(1, 3)
        assert ok and value == 0b1011
        assert mem.parity_errors == 0


class TestArbiterFaults:
    def test_failed_holder_force_released(self):
        arbiter = ClusterArbiter(ports=4)
        arbiter.request(0)
        arbiter.request(1)
        holder = arbiter.grant()
        arbiter.fail_port(holder)
        assert arbiter.holder is None
        assert arbiter.forced_releases == 1
        # The surviving port can still be granted.
        assert arbiter.grant() is not None

    def test_failed_port_requests_rejected(self):
        arbiter = ClusterArbiter(ports=4)
        arbiter.fail_port(2)
        with pytest.raises(MemoryError_):
            arbiter.request(2)
        assert arbiter.failed_ports == frozenset({2})

    def test_pending_requests_purged(self):
        arbiter = ClusterArbiter(ports=4)
        arbiter.request(1)
        arbiter.request(2)
        arbiter.fail_port(1)
        assert arbiter.grant() == 2


class TestEvictClusters:
    def test_excluded_clusters_emptied(self):
        network = generate_hierarchy_kb(60, branching=3)
        partitioning = round_robin_partition(network, 8)
        evicted, moved = evict_clusters(partitioning, {2, 5})
        sizes = evicted.sizes()
        assert sizes[2] == 0 and sizes[5] == 0
        assert moved == partitioning.sizes()[2] + partitioning.sizes()[5]
        assert sum(sizes) == network.num_nodes

    def test_deterministic(self):
        network = generate_hierarchy_kb(60, branching=3)
        partitioning = round_robin_partition(network, 8)
        one, _ = evict_clusters(partitioning, {1})
        two, _ = evict_clusters(partitioning, {1})
        assert [one.cluster_of(n) for n in range(60)] == [
            two.cluster_of(n) for n in range(60)
        ]

    def test_cannot_evict_everything(self):
        network = generate_hierarchy_kb(20, branching=3)
        partitioning = round_robin_partition(network, 4)
        with pytest.raises(PartitionError):
            evict_clusters(partitioning, {0, 1, 2, 3})


class TestZeroCostOff:
    """The fault layer must be provably invisible when off."""

    def test_disabled_config_byte_identical(self):
        baseline = _run(None)
        disabled = _run(FaultConfig.disabled())
        assert json.dumps(
            baseline.to_json(), sort_keys=True
        ) == json.dumps(disabled.to_json(), sort_keys=True)

    def test_disabled_report_has_no_fault_keys(self):
        report = _run(FaultConfig.disabled())
        assert not report.faults_enabled
        assert "faults" not in report.to_json()
        assert "faults_injected" not in report.summary()
        assert all("failed" not in c for c in report.cluster_busy)


class TestSeededReproducibility:
    FAULTS = FaultConfig(
        seed=11, failed_cluster_fraction=0.25, mu_loss_prob=0.2,
        link_fail_prob=0.05, transfer_corrupt_prob=0.05,
        scp_timeout_prob=0.1,
    )

    def test_same_seed_identical_trace(self):
        one = _run(self.FAULTS)
        two = _run(self.FAULTS)
        assert json.dumps(one.to_json(), sort_keys=True) == json.dumps(
            two.to_json(), sort_keys=True
        )
        assert one.fault_stats.as_dict() == two.fault_stats.as_dict()

    def test_different_seed_different_trace(self):
        one = _run(self.FAULTS)
        two = _run(replace(self.FAULTS, seed=12))
        assert one.fault_stats.as_dict() != two.fault_stats.as_dict()


class TestRecoveryLayers:
    def test_scp_timeouts_counted_and_charged(self):
        report = _run(
            FaultConfig(seed=2, scp_timeout_prob=1.0,
                        scp_timeout_penalty_us=25.0)
        )
        assert report.fault_stats.scp_timeouts > 0
        clean = _run(None)
        assert report.total_time_us > clean.total_time_us

    def test_transfer_retries_surface_in_report(self):
        report = _run(FaultConfig(seed=4, transfer_corrupt_prob=0.3))
        stats = report.fault_stats
        assert stats.transfer_retries > 0
        assert stats.retry_time_us > 0
        assert report.to_json()["faults"]["transfer_retries"] == (
            stats.transfer_retries
        )

    def test_retry_exhaustion_triggers_replay(self):
        faults = FaultConfig(
            seed=4, transfer_corrupt_prob=0.4,
            retry=RetryPolicy(max_retries=0),
            max_replay_rounds=3,
        )
        report = _run(faults)
        stats = report.fault_stats
        assert stats.transfer_failures > 0
        assert stats.replays > 0

    def test_replay_disabled_loses_messages(self):
        faults = FaultConfig(
            seed=4, transfer_corrupt_prob=0.4,
            retry=RetryPolicy(max_retries=0),
            checkpoint_recovery=False,
        )
        report = _run(faults)
        assert report.fault_stats.messages_lost > 0

    def test_failed_clusters_no_crash_with_remap(self):
        faults = FaultConfig(seed=6, failed_cluster_fraction=0.25)
        report = _run(faults)
        stats = report.fault_stats
        assert stats.clusters_failed == 4
        assert stats.nodes_remapped > 0
        # Remap keeps every node reachable: full marked set.
        clean = _run(None)
        assert len(report.results()[0]) == len(clean.results()[0])

    def test_failed_clusters_marked_in_cluster_busy(self):
        faults = FaultConfig(seed=6, failed_cluster_fraction=0.25)
        report = _run(faults)
        flagged = [c for c in report.cluster_busy if c.get("failed")]
        assert len(flagged) == 4

    def test_degradation_without_remap(self):
        faults = FaultConfig(
            seed=6, failed_cluster_fraction=0.25, remap_nodes=False,
        )
        report = _run(faults)
        clean = _run(None)
        # Nodes on dead clusters are lost, but the machine completes.
        assert 0 < len(report.results()[0]) < len(clean.results()[0])
        assert report.fault_stats.messages_unreachable > 0


class TestAllocatorSnapshot:
    def test_snapshot_restore_roundtrip(self):
        alloc = MarkerAllocator()
        alloc.complex("keep")
        checkpoint = alloc.snapshot()
        alloc.complex("scratch-a")
        alloc.binary("scratch-b")
        alloc.restore(checkpoint)
        assert alloc.live() == ["keep"]
        assert "scratch-a" not in alloc
        # Freed registers are reusable after the rollback.
        alloc.complex("scratch-a")
        assert alloc.name_of(alloc["scratch-a"]) == "scratch-a"


class TestQueryVisibleFailures:
    def test_sums_the_damage_counters(self):
        from repro.machine.faults import FaultStats

        stats = FaultStats(
            messages_lost=2, messages_unreachable=3, transfer_failures=1
        )
        assert stats.query_visible_failures() == 6

    def test_recovered_faults_are_not_query_visible(self):
        """Retried transfers and replayed messages hurt latency, not
        the answer: they must not count as query-visible damage."""
        from repro.machine.faults import FaultStats

        stats = FaultStats(
            transfer_retries=7, replays=2, replayed_messages=40,
            scp_timeouts=3, messages_rerouted=5,
        )
        assert stats.query_visible_failures() == 0

    def test_guaranteed_corruption_is_query_visible(self):
        faults = FaultConfig(
            transfer_corrupt_prob=1.0,
            retry=RetryPolicy(max_retries=0),
            checkpoint_recovery=False,
        )
        report = _run(faults)
        assert report.fault_stats.query_visible_failures() > 0
