"""Property-based tests for the memoized ICN routing caches.

The route caches (``docs/PERF.md``) must be invisible: a warm
topology — one that has served and cached thousands of lookups —
must answer every ``route``/``route_avoiding`` query identically to a
freshly constructed topology computing from scratch.  These hypothesis
properties hammer shared warm topologies across cluster counts 1–64
and random fault patterns, comparing every answer against the uncached
code path on a pristine instance.
"""

from hypothesis import given, settings, strategies as st

from repro.machine.icn import HypercubeTopology, TopologyError, link_key

#: Warm topologies shared across every hypothesis example so the LRU
#: caches accumulate (and evict) entries while properties run.
_WARM = {}


def warm_topology(num_clusters):
    topo = _WARM.get(num_clusters)
    if topo is None:
        topo = _WARM[num_clusters] = HypercubeTopology(num_clusters)
    return topo


@st.composite
def cluster_pairs(draw):
    """(num_clusters, src, dst) with both endpoints in range."""
    n = draw(st.integers(1, 64))
    src = draw(st.integers(0, n - 1))
    dst = draw(st.integers(0, n - 1))
    return n, src, dst


@st.composite
def fault_patterns(draw):
    """(num_clusters, src, dst, blocked_clusters, blocked_links)."""
    n, src, dst = draw(cluster_pairs())
    blocked_clusters = frozenset(
        draw(st.sets(st.integers(0, n - 1), max_size=min(n, 8)))
    )
    link_pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=8,
        )
    )
    blocked_links = frozenset(
        link_key(a, b) for a, b in link_pairs if a != b
    )
    return n, src, dst, blocked_clusters, blocked_links


class TestRouteCacheTransparency:
    @given(pair=cluster_pairs())
    @settings(max_examples=200, deadline=None)
    def test_cached_route_equals_fresh_topology(self, pair):
        """A warm topology's (possibly cached) route is identical to a
        pristine instance computing through the uncached path."""
        n, src, dst = pair
        warm = warm_topology(n)
        fresh = HypercubeTopology(n)
        expected = fresh._route_uncached(src, dst)
        first = warm.route(src, dst)
        second = warm.route(src, dst)  # guaranteed cache hit
        assert first == expected
        assert second == expected

    @given(pair=cluster_pairs(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_cached_route_with_order_equals_fresh(self, pair, data):
        """Alternate digit orders — including non-convergent ones that
        raise — round-trip through the cache unchanged."""
        n, src, dst = pair
        warm = warm_topology(n)
        fresh = HypercubeTopology(n)
        order = tuple(
            data.draw(st.permutations(range(fresh.num_digits)))
        )
        try:
            expected = fresh._route_uncached(src, dst, order)
        except TopologyError:
            expected = TopologyError
        for _ in range(2):  # miss, then hit (incl. the _RAISES sentinel)
            if expected is TopologyError:
                try:
                    warm.route(src, dst, order=order)
                except TopologyError:
                    continue
                raise AssertionError("cached route hid a TopologyError")
            assert warm.route(src, dst, order=order) == expected

    @given(pair=cluster_pairs())
    @settings(max_examples=100, deadline=None)
    def test_routes_are_valid_paths(self, pair):
        """Cached or not, a route is a chain of single-digit hops from
        src to dst over existing clusters."""
        n, src, dst = pair
        warm = warm_topology(n)
        path = warm.route(src, dst)
        assert (path == []) == (src == dst)
        previous = src
        for hop in path:
            assert 0 <= hop < n
            assert warm.hamming(previous, hop) == 1
            previous = hop
        if path:
            assert path[-1] == dst


class TestFaultAwareCacheTransparency:
    @given(pattern=fault_patterns())
    @settings(max_examples=200, deadline=None)
    def test_cached_route_avoiding_equals_fresh(self, pattern):
        """The fault-aware cache keys on the blocked sets, so a warm
        topology that has routed around many fault patterns still
        answers every (src, dst, blocked) query like a fresh one."""
        n, src, dst, blocked_clusters, blocked_links = pattern
        warm = warm_topology(n)
        fresh = HypercubeTopology(n)
        expected = fresh._route_avoiding_uncached(
            src, dst, blocked_clusters, blocked_links
        )
        for _ in range(2):  # miss, then hit (incl. the None sentinel)
            got = warm.route_avoiding(
                src, dst, blocked_clusters, blocked_links
            )
            assert got == expected

    @given(pattern=fault_patterns())
    @settings(max_examples=100, deadline=None)
    def test_route_avoiding_respects_blocked_sets(self, pattern):
        n, src, dst, blocked_clusters, blocked_links = pattern
        warm = warm_topology(n)
        path = warm.route_avoiding(
            src, dst, blocked_clusters, blocked_links
        )
        if path is None:
            return
        previous = src
        for hop in path:
            assert hop not in blocked_clusters
            assert link_key(previous, hop) not in blocked_links
            previous = hop
        assert previous == dst

    @given(pattern=fault_patterns())
    @settings(max_examples=100, deadline=None)
    def test_fault_state_churn_never_changes_answers(self, pattern):
        """note_fault_state invalidation (and the repopulation after
        it) is invisible: answers before and after a fault-state flip
        match the fresh topology either way."""
        n, src, dst, blocked_clusters, blocked_links = pattern
        warm = warm_topology(n)
        fresh = HypercubeTopology(n)
        expected = fresh._route_avoiding_uncached(
            src, dst, blocked_clusters, blocked_links
        )
        before = warm.route_avoiding(
            src, dst, blocked_clusters, blocked_links
        )
        warm.note_fault_state(blocked_clusters, blocked_links)
        after = warm.route_avoiding(
            src, dst, blocked_clusters, blocked_links
        )
        warm.note_fault_state(frozenset(), frozenset())
        assert before == expected
        assert after == expected
