"""Property: the timed machine computes exactly what the golden model
computes, for random knowledge bases, programs, and machine shapes."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import FunctionalEngine
from repro.machine import MachineConfig, SnapMachine

from tests.core.test_equivalence import (
    MARKERS,
    random_network,
    random_program,
)


def collect_state(state):
    out = {}
    for marker in MARKERS:
        nodes = state.marker_set_nodes(marker)
        values = None
        if marker < 64:
            values = tuple(
                round(state.marker_value(marker, n), 4) for n in nodes
            )
        out[marker] = (tuple(nodes), values)
    return out


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    clusters=st.sampled_from([1, 2, 4, 7]),
    mus=st.sampled_from([1, 2, 3]),
)
@settings(max_examples=20, deadline=None)
def test_property_timed_machine_matches_golden_model(seed, clusters, mus):
    network_args = (seed, 20, 50)
    program = random_program(seed + 7, nodes=20, length=10)

    golden = FunctionalEngine(random_network(*network_args), 1)
    golden.run(program)

    machine = SnapMachine(
        random_network(*network_args),
        MachineConfig(num_clusters=clusters, mus_per_cluster=mus),
    )
    machine.run(program)

    assert collect_state(machine.state) == collect_state(golden.state)


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=10, deadline=None)
def test_property_collect_results_match(seed):
    from repro.isa import CollectMarker, CollectNode

    program = random_program(seed + 3, nodes=20, length=8)
    program.append(CollectNode(MARKERS[2]))
    program.append(CollectMarker(MARKERS[0]))

    golden = FunctionalEngine(random_network(seed, 20, 50), 1)
    golden_results = [
        r.result for r in golden.run(program).records if r.result is not None
    ]
    machine = SnapMachine(
        random_network(seed, 20, 50),
        MachineConfig(num_clusters=5, mus_per_cluster=2),
    )
    machine_results = machine.run(program).results()
    assert len(machine_results) == len(golden_results)
    for got, expected in zip(machine_results, golden_results):
        assert got == expected
