"""Machine configurations: the prototype's published parameters."""

import pytest

from repro.machine import (
    ConfigError,
    MachineConfig,
    Timing,
    cluster_sweep,
    processor_sweep,
    snap1_16cluster,
    snap1_full,
    uniprocessor,
)


class TestPrototypeConfigs:
    def test_full_machine_is_144_pes(self):
        """Paper abstract: 144 DSPs in 32 clusters."""
        config = snap1_full()
        assert config.num_clusters == 32
        assert config.total_pes == 144

    def test_full_machine_mu_mix(self):
        """16 five-PE clusters (3 MUs) + 16 four-PE clusters (2 MUs)."""
        counts = snap1_full().mu_counts()
        assert counts.count(3) == 16
        assert counts.count(2) == 16

    def test_experiment_machine_is_72_pes(self):
        """§IV: experiments used a 16-cluster, 72-processor array."""
        config = snap1_16cluster()
        assert config.num_clusters == 16
        assert config.total_pes == 72

    def test_clock_speeds(self):
        """§IV: 32 MHz controller, 25 MHz array clock."""
        config = snap1_full()
        assert config.controller_mhz == 32.0
        assert config.array_mhz == 25.0

    def test_machine_capacity_32k_nodes(self):
        """§II-B: 32K semantic network nodes, 1024 per cluster."""
        config = snap1_full()
        assert config.nodes_per_cluster == 1024
        assert config.node_capacity == 32 * 1024

    def test_instruction_queue_depth_64(self):
        """§III-A: up to 64 instructions can be overlapped."""
        assert snap1_full().instruction_queue_depth == 64

    def test_uniprocessor(self):
        config = uniprocessor()
        assert config.num_clusters == 1
        assert config.total_mus == 1


class TestValidation:
    def test_zero_clusters_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_clusters=0)

    def test_zero_mus_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_clusters=2, mus_per_cluster=(1, 0))

    def test_int_mu_count_expands(self):
        config = MachineConfig(num_clusters=4, mus_per_cluster=2)
        assert config.mu_counts() == [2, 2, 2, 2]
        assert config.total_mus == 8

    def test_short_tuple_cycles(self):
        config = MachineConfig(num_clusters=4, mus_per_cluster=(3, 2))
        assert config.mu_counts() == [3, 2, 3, 2]


class TestSweeps:
    def test_cluster_sweep_sizes(self):
        sizes = [c.num_clusters for c in cluster_sweep()]
        assert sizes == [1, 2, 4, 8, 16]

    def test_cluster_sweep_cap(self):
        sizes = [c.num_clusters for c in cluster_sweep(max_clusters=4)]
        assert sizes == [1, 2, 4]

    def test_processor_sweep_monotone_and_ends_at_72(self):
        pes = [c.total_pes for c in processor_sweep()]
        assert pes == sorted(pes)
        assert pes[-1] == 72


class TestTiming:
    def test_hop_time_is_8_transfers_at_80ns(self):
        """§III-B: 8-bit ports, 80 ns port-to-port, 64-bit messages."""
        assert Timing().t_hop == pytest.approx(0.64)

    def test_timing_is_frozen(self):
        with pytest.raises(AttributeError):
            Timing().t_hop = 1.0  # type: ignore[misc]
