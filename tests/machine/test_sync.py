"""Tiered barrier synchronization protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    SyncError,
    SyncStats,
    TieredSynchronizer,
    barrier_cost,
)


class TestTieredCounters:
    def test_balanced_level_completes_when_idle(self):
        sync = TieredSynchronizer(num_pes=4)
        sync.produce(0, level=0)
        sync.produce(1, level=0)
        assert not sync.level_complete(0)
        sync.consume(2, level=0)
        sync.consume(3, level=0)
        assert sync.level_complete(0)

    def test_idle_required(self):
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, 0)
        sync.consume(1, 0)
        sync.set_idle(0, False)
        assert sync.level_balance(0) == 0
        assert not sync.level_complete(0)  # SIGI low
        sync.set_idle(0, True)
        assert sync.level_complete(0)

    def test_tiers_are_independent(self):
        """The point of tiering: level 0 completing is detected even
        while level 1 markers are in transit (no false waiting)."""
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, level=0)
        sync.produce(0, level=1)
        sync.consume(1, level=0)
        assert sync.level_complete(0)
        assert not sync.level_complete(1)
        assert sync.active_levels() == [1]

    def test_global_overconsumption_rejected(self):
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, 0)
        sync.consume(1, 0)
        with pytest.raises(SyncError):
            sync.consume(1, 0)

    def test_cross_pe_balance(self):
        """Production on one PE may be consumed on another (markers
        migrate): only the global sum matters."""
        sync = TieredSynchronizer(num_pes=3)
        sync.produce(0, 0, count=5)
        sync.consume(2, 0, count=5)
        assert sync.level_complete(0)

    def test_all_complete(self):
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, 0)
        assert not sync.all_complete()
        sync.consume(0, 0)
        assert sync.all_complete()

    def test_reset_level(self):
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, 3)
        sync.consume(0, 3)
        sync.reset_level(3)
        assert 3 not in sync.active_levels()

    def test_reset_unbalanced_level_rejected(self):
        sync = TieredSynchronizer(num_pes=2)
        sync.produce(0, 3)
        with pytest.raises(SyncError):
            sync.reset_level(3)

    @given(events=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_property_produce_then_consume_always_balances(self, events):
        """Any schedule of produce/consume pairs returns all counters
        to zero — the protocol's termination guarantee."""
        sync = TieredSynchronizer(num_pes=4)
        for pe, level in events:
            sync.produce(pe, level)
        for pe, level in events:
            sync.consume((pe + 1) % 4, level)
        assert sync.all_complete()


class TestBarrierCost:
    def test_proportional_to_pes_with_small_slope(self):
        cost_small = barrier_cost(8, 2.0, 0.1)
        cost_large = barrier_cost(144, 2.0, 0.1)
        assert cost_large > cost_small
        # "the dependency is small": 18x PEs < 10x cost
        assert cost_large / cost_small < 10


class TestSyncStats:
    def test_messages_per_sync_series(self):
        stats = SyncStats()
        stats.count_message(3)
        stats.barrier(time=10.0, level=0)
        stats.count_message(1)
        stats.count_message(1)
        stats.barrier(time=20.0, level=1)
        stats.barrier(time=30.0, level=2)
        assert stats.messages_per_sync() == [3, 2, 0]
        assert stats.mean_messages == pytest.approx(5 / 3)

    def test_burst_counting(self):
        stats = SyncStats()
        stats.count_message(35)
        stats.barrier(1.0, 0)
        stats.count_message(5)
        stats.barrier(2.0, 1)
        assert stats.bursts(threshold=30) == 1

    def test_points_carry_metadata(self):
        stats = SyncStats()
        point = stats.barrier(time=7.5, level=4)
        assert point.index == 0
        assert point.time == 7.5
        assert point.level == 4
