"""Performance-collection network."""

from repro.machine import (
    EventCode,
    PerformanceCollector,
    RECORD_TRANSFER_US,
)


class TestCollector:
    def test_records_timestamped(self):
        collector = PerformanceCollector()
        collector.record(1.5, source=3, code=EventCode.TASK_START, status=7)
        record = collector.records[0]
        assert record.time == 1.5
        assert record.source == 3
        assert record.name == "task-start"
        assert record.status == 7

    def test_disabled_collector_is_silent(self):
        collector = PerformanceCollector(enabled=False)
        collector.record(1.0, 0, EventCode.BARRIER)
        assert collector.records == []

    def test_status_masked_to_24_bits(self):
        collector = PerformanceCollector()
        collector.record(0.0, 0, EventCode.MSG_SEND, status=1 << 30)
        assert collector.records[0].status < (1 << 24)

    def test_histogram(self):
        collector = PerformanceCollector()
        collector.record(0.0, 0, EventCode.MSG_SEND)
        collector.record(1.0, 1, EventCode.MSG_SEND)
        collector.record(2.0, 0, EventCode.BARRIER)
        assert collector.histogram() == {"msg-send": 2, "barrier": 1}

    def test_timeline_filter(self):
        collector = PerformanceCollector()
        collector.record(0.0, 5, EventCode.MSG_SEND)
        collector.record(1.0, 6, EventCode.BARRIER)
        assert collector.timeline(EventCode.MSG_SEND) == [(0.0, 5)]
        assert len(collector.timeline()) == 2

    def test_serial_transfer_time(self):
        """2 Mb/s link, 32-bit records -> 16 µs per record."""
        assert RECORD_TRANSFER_US == 16.0
        collector = PerformanceCollector()
        for i in range(3):
            collector.record(float(i), 0, EventCode.TASK_END)
        assert collector.serial_backlog_us() == 48.0

    def test_clear(self):
        collector = PerformanceCollector()
        collector.record(0.0, 0, EventCode.COLLECT)
        collector.clear()
        assert collector.records == []

    def test_unknown_code_named_generically(self):
        collector = PerformanceCollector()
        collector.record(0.0, 0, 0xEE)
        assert collector.records[0].name == "event-0xee"
