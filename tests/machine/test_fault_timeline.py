"""Fault timeline: schedule grammar, live-world events, gray modes."""

import dataclasses
import json
from dataclasses import replace

import pytest

from repro.isa import assemble
from repro.machine import (
    EVENT_KINDS,
    FaultConfig,
    FaultConfigError,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultStats,
    MachineConfig,
    SnapMachine,
    failed_clusters_for,
    link_key,
)
from repro.network.generator import generate_hierarchy_kb

PROGRAM = """
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""


def _machine(faults, num_nodes=120, num_clusters=8):
    config = MachineConfig(
        num_clusters=num_clusters, mus_per_cluster=2, faults=faults
    )
    return SnapMachine(
        generate_hierarchy_kb(num_nodes, branching=3), config
    )


def _run(faults, num_nodes=120, num_clusters=8):
    return _machine(faults, num_nodes, num_clusters).run(assemble(PROGRAM))


def _injector(config, num_clusters=8, mus=2):
    return FaultInjector(config, num_clusters, [mus] * num_clusters)


def _fingerprint(report):
    """Comparable digest of everything a run report observed."""
    stats = report.fault_stats.as_dict() if report.fault_stats else {}
    return json.dumps(
        {
            "total_time_us": report.total_time_us,
            "events": report.events_processed,
            "results": [sorted(map(str, r)) for r in report.results()],
            "faults": stats,
        },
        sort_keys=True,
    )


class TestFaultEventValidation:
    def test_known_kinds_construct(self):
        FaultEvent(10.0, "cluster-fail", cluster=1)
        FaultEvent(10.0, "link-fail", link=(0, 1))
        FaultEvent(10.0, "mu-slowdown", cluster=2, value=2.0)
        FaultEvent(10.0, "corrupt-rate", value=0.5)
        FaultEvent(10.0, "marker-drop", value=0.0)
        FaultEvent(10.0, "mu-fail", cluster=0, value=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown"):
            FaultEvent(1.0, "meteor-strike", cluster=0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultConfigError, match="time"):
            FaultEvent(-1.0, "cluster-fail", cluster=0)

    def test_cluster_kinds_require_cluster(self):
        for kind in ("cluster-fail", "cluster-repair", "mu-fail",
                     "mu-repair", "mu-slowdown"):
            with pytest.raises(FaultConfigError, match="cluster"):
                if kind == "mu-slowdown":
                    FaultEvent(1.0, kind, value=2.0)
                else:
                    FaultEvent(1.0, kind)

    def test_link_kinds_require_distinct_pair(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "link-fail")
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "link-fail", link=(2, 2))
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "link-repair", link=(-1, 2))

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "mu-slowdown", cluster=0, value=0.5)

    def test_probability_kinds_bounded(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "corrupt-rate", value=1.5)
        with pytest.raises(FaultConfigError):
            FaultEvent(1.0, "marker-drop", value=-0.1)

    def test_event_kinds_constant_is_exhaustive(self):
        for kind in EVENT_KINDS:
            assert isinstance(kind, str)
        assert "cluster-fail" in EVENT_KINDS
        assert "marker-drop" in EVENT_KINDS


class TestFaultSchedule:
    def test_sorts_by_time_stably(self):
        a = FaultEvent(30.0, "cluster-fail", cluster=1)
        b = FaultEvent(10.0, "cluster-fail", cluster=2)
        c = FaultEvent(10.0, "cluster-repair", cluster=2)
        schedule = FaultSchedule((a, b, c))
        # b and c share a timestamp: submission order is preserved.
        assert schedule.events == (b, c, a)

    def test_empty_is_falsy(self):
        assert not FaultSchedule()
        assert not FaultSchedule.empty()
        assert len(FaultSchedule.empty()) == 0
        assert FaultSchedule((FaultEvent(1.0, "cluster-fail", cluster=0),))

    def test_schedule_alone_enables_config(self):
        schedule = FaultSchedule(
            (FaultEvent(5.0, "cluster-fail", cluster=0),)
        )
        assert not FaultConfig().enabled
        assert FaultConfig(schedule=schedule).enabled

    def test_config_rejects_non_schedule(self):
        with pytest.raises(FaultConfigError, match="FaultSchedule"):
            FaultConfig(schedule=[FaultEvent(1.0, "cluster-fail", cluster=0)])


class TestIdValidation:
    def test_failed_clusters_out_of_range_raises_naming_ids(self):
        config = FaultConfig(failed_clusters=(2, 9, 17))
        with pytest.raises(FaultConfigError) as err:
            failed_clusters_for(config, 8)
        assert "[9, 17]" in str(err.value)
        assert "8-cluster" in str(err.value)

    def test_failed_clusters_in_range_still_realized(self):
        config = FaultConfig(failed_clusters=(2, 5))
        assert failed_clusters_for(config, 8) == frozenset({2, 5})

    def test_injector_surfaces_out_of_range_static_ids(self):
        with pytest.raises(FaultConfigError):
            _injector(FaultConfig(failed_clusters=(99,)))

    def test_schedule_event_out_of_range_cluster(self):
        schedule = FaultSchedule(
            (FaultEvent(5.0, "cluster-fail", cluster=8),)
        )
        with pytest.raises(FaultConfigError) as err:
            _injector(FaultConfig(schedule=schedule), num_clusters=8)
        assert "[8]" in str(err.value)

    def test_schedule_event_out_of_range_link(self):
        schedule = FaultSchedule(
            (FaultEvent(5.0, "link-fail", link=(0, 12)),)
        )
        with pytest.raises(FaultConfigError):
            _injector(FaultConfig(schedule=schedule), num_clusters=8)


class TestApplyEvent:
    def test_cluster_fail_and_repair(self):
        inj = _injector(FaultConfig(schedule=FaultSchedule((
            FaultEvent(1.0, "cluster-fail", cluster=3),
        ))))
        assert inj.apply_event(FaultEvent(1.0, "cluster-fail", cluster=3))
        assert inj.blocked_clusters == frozenset({3})
        assert inj.stats.clusters_failed == 1
        # Idempotent: failing an offline cluster changes nothing.
        assert not inj.apply_event(
            FaultEvent(2.0, "cluster-fail", cluster=3)
        )
        assert inj.stats.clusters_failed == 1
        assert inj.apply_event(FaultEvent(3.0, "cluster-repair", cluster=3))
        assert inj.blocked_clusters == frozenset()
        assert inj.stats.clusters_repaired == 1

    def test_last_survivor_guard(self):
        inj = _injector(FaultConfig(), num_clusters=2)
        assert inj.apply_event(FaultEvent(1.0, "cluster-fail", cluster=0))
        # Taking down the only remaining cluster is refused.
        assert not inj.apply_event(
            FaultEvent(2.0, "cluster-fail", cluster=1)
        )
        assert inj.blocked_clusters == frozenset({0})

    def test_link_flap(self):
        inj = _injector(FaultConfig())
        assert inj.apply_event(FaultEvent(1.0, "link-fail", link=(2, 0)))
        assert inj.blocked_links == frozenset({link_key(0, 2)})
        assert inj.apply_event(FaultEvent(2.0, "link-repair", link=(0, 2)))
        assert inj.blocked_links == frozenset()
        assert inj.stats.links_failed == 1
        assert inj.stats.links_repaired == 1

    def test_mu_loss_and_restore(self):
        inj = _injector(FaultConfig(), mus=3)
        inj.apply_event(FaultEvent(1.0, "mu-fail", cluster=2, value=2))
        assert inj.current_mu_counts[2] == 1
        assert inj.stats.mus_lost == 2
        # Floor at one server: further losses cannot empty the pool.
        inj.apply_event(FaultEvent(2.0, "mu-fail", cluster=2, value=5))
        assert inj.current_mu_counts[2] == 1
        inj.apply_event(FaultEvent(3.0, "mu-repair", cluster=2))
        assert inj.current_mu_counts[2] == 3  # back to configured
        assert inj.stats.mus_restored == 2

    def test_gray_knobs(self):
        inj = _injector(FaultConfig(marker_drop_prob=0.01))
        assert inj.slowdown_for(4) == 1.0
        inj.apply_event(FaultEvent(1.0, "mu-slowdown", cluster=4, value=2.5))
        assert inj.slowdown_for(4) == 2.5
        assert inj.slowdown_for(0) == 1.0
        inj.apply_event(FaultEvent(2.0, "corrupt-rate", value=0.3))
        assert inj._corrupt_prob == 0.3
        inj.apply_event(FaultEvent(3.0, "marker-drop", value=0.0))
        assert not inj.marker_dropped()

    def test_timeline_events_counted(self):
        inj = _injector(FaultConfig())
        inj.apply_event(FaultEvent(1.0, "cluster-fail", cluster=1))
        inj.apply_event(FaultEvent(2.0, "cluster-repair", cluster=1))
        assert inj.stats.timeline_events == 2


class TestTimelineRuns:
    def test_mid_run_fail_and_repair_is_deterministic(self):
        schedule = FaultSchedule((
            FaultEvent(40.0, "cluster-fail", cluster=1),
            FaultEvent(220.0, "cluster-repair", cluster=1),
        ))
        faults = FaultConfig(seed=5, remap_nodes=False, schedule=schedule)
        r1 = _run(faults)
        r2 = _run(faults)
        assert r1.fault_stats.timeline_events == 2
        assert r1.fault_stats.clusters_failed == 1
        assert r1.fault_stats.clusters_repaired == 1
        assert _fingerprint(r1) == _fingerprint(r2)

    def test_marker_drop_is_gray(self):
        clean = _run(FaultConfig.disabled())
        dropped = _run(
            FaultConfig(seed=9, marker_drop_prob=0.2, remap_nodes=False)
        )
        stats = dropped.fault_stats
        assert stats.markers_dropped > 0
        # No query-visible signal: the breaker can never see a drop.
        assert stats.query_visible_failures() == 0
        assert len(dropped.results()[0]) < len(clean.results()[0])

    def test_mu_slowdown_stretches_service(self):
        clean = _run(FaultConfig.disabled())
        slow = _run(
            FaultConfig(seed=9, mu_slowdown_factor=3.0, remap_nodes=False)
        )
        assert slow.fault_stats.slowdown_us > 0
        assert slow.fault_stats.query_visible_failures() == 0
        assert slow.total_time_us > clean.total_time_us
        assert len(slow.results()[0]) == len(clean.results()[0])

    def test_slowdown_event_mid_run(self):
        schedule = FaultSchedule((
            FaultEvent(30.0, "mu-slowdown", cluster=0, value=4.0),
        ))
        report = _run(FaultConfig(seed=9, schedule=schedule))
        assert report.fault_stats.slowdown_us > 0

    def test_mu_fail_event_resizes_pool(self):
        schedule = FaultSchedule((
            FaultEvent(20.0, "mu-fail", cluster=0, value=1),
        ))
        report = _run(FaultConfig(seed=9, schedule=schedule))
        assert report.fault_stats.mus_lost >= 1
        # Utilization stays a valid fraction after the resize.
        assert 0.0 <= report.mu_utilization() <= 1.0

    def test_far_future_event_does_not_inflate_runtime(self):
        baseline = _run(FaultConfig.disabled())
        schedule = FaultSchedule((
            FaultEvent(1e9, "cluster-fail", cluster=1),
        ))
        report = _run(FaultConfig(seed=9, schedule=schedule))
        # The leftover event is cancelled at program completion, so
        # the clock never travels to t=1e9.
        assert report.total_time_us < 1e6
        assert report.total_time_us == pytest.approx(
            baseline.total_time_us, rel=1e-9
        )
        assert report.fault_stats.timeline_events == 0

    def test_empty_schedule_matches_static_behaviour(self):
        static = FaultConfig(seed=5, failed_clusters=(2,), remap_nodes=False)
        timeline = replace(static, schedule=FaultSchedule.empty())
        assert _fingerprint(_run(static)) == _fingerprint(_run(timeline))


class TestFaultStatsSync:
    LEGACY_FIELDS = (
        "clusters_failed", "mus_lost", "links_failed", "nodes_remapped",
        "scp_timeouts", "transfer_retries", "transfer_failures",
        "retry_time_us", "messages_rerouted", "messages_unreachable",
        "replays", "replayed_messages", "messages_lost",
    )

    def test_every_field_reaches_as_dict(self):
        """A field added to FaultStats without an as_dict entry must
        fail here, not silently vanish from reports and goldens."""
        stats = FaultStats()
        for i, f in enumerate(dataclasses.fields(FaultStats)):
            setattr(stats, f.name, i + 1)  # unique nonzero values
        record = stats.as_dict()
        for i, f in enumerate(dataclasses.fields(FaultStats)):
            assert record.get(f.name) == i + 1, (
                f"FaultStats.{f.name} missing from as_dict()"
            )

    def test_conditional_fields_cover_all_non_legacy(self):
        names = {f.name for f in dataclasses.fields(FaultStats)}
        conditional = set(FaultStats._CONDITIONAL_FIELDS)
        assert conditional <= names
        assert names - set(self.LEGACY_FIELDS) == conditional

    def test_zero_timeline_counters_stay_out_of_dict(self):
        record = FaultStats().as_dict()
        assert set(record) == set(self.LEGACY_FIELDS)

    def test_query_visible_failures_sees_losses_not_drops(self):
        stats = FaultStats(
            messages_lost=2, messages_unreachable=3, transfer_failures=1,
            markers_dropped=50,
        )
        assert stats.query_visible_failures() == 6


class TestFaultWindows:
    """Ground-truth extraction: schedules -> exact fault windows."""

    def test_cluster_flap_pairs_into_outage_window(self):
        from repro.machine.faults import FaultWindow

        schedule = FaultSchedule((
            FaultEvent(10.0, "cluster-fail", cluster=1),
            FaultEvent(50.0, "cluster-repair", cluster=1),
            FaultEvent(20.0, "mu-slowdown", cluster=2, value=3.0),
        ))
        windows = schedule.fault_windows()
        assert windows[0] == FaultWindow(
            start_us=10.0, end_us=50.0, kind="outage", target="cluster:1"
        )
        # Never-reverted slowdown stays open.
        assert windows[1].target == "slowdown:2"
        assert windows[1].kind == "gray"
        assert windows[1].end_us is None

    def test_slowdown_reverted_by_unit_factor(self):
        schedule = FaultSchedule((
            FaultEvent(10.0, "mu-slowdown", cluster=2, value=3.0),
            FaultEvent(40.0, "mu-slowdown", cluster=2, value=1.0),
        ))
        (window,) = schedule.fault_windows()
        assert (window.start_us, window.end_us) == (10.0, 40.0)
        assert window.kind == "gray"

    def test_gray_rate_events_closed_by_zero(self):
        schedule = FaultSchedule((
            FaultEvent(5.0, "marker-drop", value=0.1),
            FaultEvent(25.0, "marker-drop", value=0.0),
            FaultEvent(30.0, "corrupt-rate", value=0.2),
        ))
        windows = schedule.fault_windows()
        targets = {w.target: (w.start_us, w.end_us) for w in windows}
        assert targets["marker-drop"] == (5.0, 25.0)
        assert targets["corrupt-rate"] == (30.0, None)

    def test_region_schedule_windows(self):
        from repro.machine.faults import RegionEvent, RegionSchedule

        schedule = RegionSchedule((
            RegionEvent(30.0, "region-fail", 0),
            RegionEvent(300.0, "region-repair", 0),
            RegionEvent(330.0, "region-slowdown", 2, 3.0),
            RegionEvent(400.0, "region-slowdown", 2, 1.0),
        ))
        windows = schedule.fault_windows()
        assert [(w.target, w.kind, w.start_us, w.end_us)
                for w in windows] == [
            ("region:0", "outage", 30.0, 300.0),
            ("slowdown:region:2", "gray", 330.0, 400.0),
        ]

    def test_window_duration_uses_horizon_when_open(self):
        from repro.machine.faults import FaultWindow

        window = FaultWindow(
            start_us=10.0, end_us=None, kind="gray", target="x"
        )
        assert window.duration_us(110.0) == 100.0
        assert window.as_dict()["end_us"] is None
