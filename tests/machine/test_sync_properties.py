"""Property-based tests for the tiered synchronization protocol.

The unit tests in ``test_sync.py`` pin individual behaviours; these
hypothesis properties check protocol invariants over arbitrary
schedules: level balances never go negative, ``all_complete`` is
exactly "SIGI high and every level balanced", and protocol violations
name the offending PE and level.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import SyncError, TieredSynchronizer

NUM_PES = 4
NUM_LEVELS = 3

#: One PE/level pair, the currency of the protocol.
pe_levels = st.tuples(
    st.integers(0, NUM_PES - 1), st.integers(0, NUM_LEVELS - 1)
)


class TestBalanceInvariants:
    @given(events=st.lists(
        st.tuples(pe_levels, st.booleans()), max_size=80,
    ))
    @settings(max_examples=100, deadline=None)
    def test_balance_never_negative(self, events):
        """Whatever interleaving of produce/consume the machine
        generates, an over-consumption raises instead of driving a
        level balance negative — afterwards every balance is >= 0."""
        sync = TieredSynchronizer(num_pes=NUM_PES)
        for (pe, level), is_produce in events:
            if is_produce:
                sync.produce(pe, level)
            else:
                try:
                    sync.consume(pe, level)
                except SyncError:
                    pass  # rejected, state must stay consistent
        for level in range(NUM_LEVELS):
            assert sync.level_balance(level) >= 0

    @given(events=st.lists(pe_levels, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_produce_then_consume_balances_every_level(self, events):
        sync = TieredSynchronizer(num_pes=NUM_PES)
        for pe, level in events:
            sync.produce(pe, level)
        # Markers migrate: consume on a different PE than produced.
        for pe, level in events:
            sync.consume((pe + 1) % NUM_PES, level)
        assert sync.all_complete()
        for level in range(NUM_LEVELS):
            assert sync.level_balance(level) == 0


class TestSigiConsistency:
    @given(
        events=st.lists(pe_levels, max_size=40),
        busy_pes=st.sets(st.integers(0, NUM_PES - 1)),
    )
    @settings(max_examples=100, deadline=None)
    def test_all_complete_iff_sigi_and_balanced(self, events, busy_pes):
        """``all_complete`` must be exactly SIGI AND all-balanced —
        never true while a PE is busy, always true once counters are
        balanced and every idle line is high."""
        sync = TieredSynchronizer(num_pes=NUM_PES)
        for pe, level in events:
            sync.produce(pe, level)
            sync.consume(pe, level)
        for pe in busy_pes:
            sync.set_idle(pe, False)
        assert sync.sigi == (len(busy_pes) == 0)
        assert sync.all_complete() == sync.sigi  # balances all zero
        for level in range(NUM_LEVELS):
            assert sync.level_complete(level) == sync.sigi

    @given(events=st.lists(pe_levels, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_unbalanced_level_blocks_all_complete(self, events):
        sync = TieredSynchronizer(num_pes=NUM_PES)
        for pe, level in events:
            sync.produce(pe, level)
        assert not sync.all_complete()  # markers still in transit
        assert sync.sigi  # ...even though every PE is idle


class TestErrorMessages:
    @given(pe=st.integers(0, NUM_PES - 1), level=st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_overconsumption_names_pe_and_level(self, pe, level):
        sync = TieredSynchronizer(num_pes=NUM_PES)
        with pytest.raises(SyncError) as excinfo:
            sync.consume(pe, level)
        message = str(excinfo.value)
        assert f"pe {pe}" in message
        assert f"level {level}" in message

    @given(
        pe=st.integers(NUM_PES, NUM_PES + 10),
        level=st.integers(0, 5),
        is_produce=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_out_of_range_pe_names_pe_and_level(
        self, pe, level, is_produce
    ):
        sync = TieredSynchronizer(num_pes=NUM_PES)
        action = sync.produce if is_produce else sync.consume
        with pytest.raises(SyncError) as excinfo:
            action(pe, level)
        message = str(excinfo.value)
        assert f"pe {pe}" in message
        assert f"level {level}" in message
        assert f"[0, {NUM_PES})" in message
