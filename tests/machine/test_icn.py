"""4-ary hypercube: addressing, routing, diameter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import HypercubeTopology, IcnStats, TopologyError, link_key


class TestAddressing:
    def test_32_clusters_use_three_digits(self):
        topo = HypercubeTopology(32)
        assert topo.num_digits == 3

    def test_digits_little_endian(self):
        topo = HypercubeTopology(32)
        # Cluster 23 = 113 base-4 (L=3, X=1, Y=1).
        assert topo.digits(23) == (3, 1, 1)

    def test_small_machines_fewer_digits(self):
        assert HypercubeTopology(4).num_digits == 1
        assert HypercubeTopology(16).num_digits == 2

    def test_out_of_range(self):
        topo = HypercubeTopology(8)
        with pytest.raises(TopologyError):
            topo.digits(8)


class TestRouting:
    def test_same_cluster_empty_route(self):
        topo = HypercubeTopology(32)
        assert topo.route(5, 5) == []

    def test_single_digit_difference_is_direct(self):
        topo = HypercubeTopology(32)
        # 0 (000) -> 3 (300): only L digit differs.
        assert topo.route(0, 3) == [3]
        assert topo.distance(0, 3) == 1

    def test_route_ends_at_destination(self):
        topo = HypercubeTopology(32)
        assert topo.route(0, 23)[-1] == 23

    def test_route_corrects_one_digit_per_hop(self):
        topo = HypercubeTopology(32)
        path = [0] + topo.route(0, 23)
        for a, b in zip(path, path[1:]):
            da, db = topo.digits(a), topo.digits(b)
            assert sum(1 for x, y in zip(da, db) if x != y) == 1

    def test_diameter_is_three_for_32_clusters(self):
        """§III-B: at most three intermediate hops for 32 clusters."""
        topo = HypercubeTopology(32)
        assert topo.max_distance() == 3
        worst = max(
            topo.distance(a, b) for a in range(32) for b in range(32)
        )
        assert worst == 3

    def test_dimension_names(self):
        topo = HypercubeTopology(32)
        assert topo.dimension_of_hop(0, 1) == "L"
        assert topo.dimension_of_hop(0, 4) == "X"
        assert topo.dimension_of_hop(0, 16) == "Y"

    def test_dimension_of_multi_hop_rejected(self):
        topo = HypercubeTopology(32)
        with pytest.raises(TopologyError):
            topo.dimension_of_hop(0, 23)

    def test_neighbors_board_local_first(self):
        topo = HypercubeTopology(32)
        neighbors = topo.neighbors(0)
        # Board-local: 1,2,3; X: 4,8,12; Y: 16.
        assert set(neighbors) == {1, 2, 3, 4, 8, 12, 16}

    @given(
        n=st.integers(min_value=1, max_value=32),
        src=st.integers(0, 31),
        dst=st.integers(0, 31),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_routing_reaches_destination(self, n, src, dst):
        src, dst = src % n, dst % n
        topo = HypercubeTopology(n)
        path = topo.route(src, dst)
        assert len(path) == topo.distance(src, dst)
        # Full machines route in <= num_digits hops; partially
        # populated machines may need detours, bounded by 2x.
        assert len(path) <= 2 * topo.num_digits
        if src != dst:
            assert path[-1] == dst
        else:
            assert path == []
        for hop in path:
            assert 0 <= hop < n
        # Every hop changes exactly one digit (a real memory port).
        previous = src
        for hop in path:
            da, db = topo.digits(previous), topo.digits(hop)
            assert sum(1 for x, y in zip(da, db) if x != y) == 1
            previous = hop


class TestNonPowerOfFour:
    """Partially populated machines (cluster count not a power of 4)."""

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 9, 11, 13, 15, 17, 31])
    def test_all_pairs_route(self, n):
        topo = HypercubeTopology(n)
        for src in range(n):
            for dst in range(n):
                path = topo.route(src, dst)
                if src == dst:
                    assert path == []
                else:
                    assert path[-1] == dst
                for hop in path:
                    assert 0 <= hop < n

    @pytest.mark.parametrize("n", [5, 11, 31])
    def test_hops_stay_within_machine(self, n):
        """No route passes through an unpopulated cluster id."""
        topo = HypercubeTopology(n)
        for src in range(n):
            for dst in range(n):
                assert all(hop < n for hop in topo.route(src, dst))


class TestMaxHopClaim:
    """§III-B: any pair "accommodated with at most three intermediate
    hops" — i.e. path length <= num_digits on fully populated machines."""

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_full_machine_distance_bounded_by_digits(self, n):
        topo = HypercubeTopology(n)
        worst = max(
            topo.distance(a, b) for a in range(n) for b in range(n)
        )
        assert worst == topo.num_digits
        assert worst <= 3

    def test_full_machine_distance_equals_hamming(self):
        topo = HypercubeTopology(16)
        for a in range(16):
            for b in range(16):
                assert topo.distance(a, b) == topo.hamming(a, b)


class TestRouteSymmetry:
    @pytest.mark.parametrize("n", [4, 16, 32])
    def test_distance_symmetric_on_full_machines(self, n):
        """On fully populated machines the hop count is symmetric
        (it equals the Hamming distance of the addresses)."""
        topo = HypercubeTopology(n)
        for a in range(n):
            for b in range(n):
                assert topo.distance(a, b) == topo.distance(b, a)

    def test_reverse_route_visits_same_dimensions(self):
        topo = HypercubeTopology(32)
        forward = [0] + topo.route(0, 23)
        backward = [23] + topo.route(23, 0)
        dims_fwd = sorted(
            topo.dimension_of_hop(a, b)
            for a, b in zip(forward, forward[1:])
        )
        dims_bwd = sorted(
            topo.dimension_of_hop(a, b)
            for a, b in zip(backward, backward[1:])
        )
        assert dims_fwd == dims_bwd


class TestRouteAvoiding:
    def test_no_blocks_matches_default_route(self):
        topo = HypercubeTopology(16)
        for src in range(16):
            for dst in range(16):
                assert topo.route_avoiding(src, dst) == topo.route(src, dst)

    def test_detours_around_blocked_cluster(self):
        topo = HypercubeTopology(16)
        default = topo.route(0, 5)
        blocked = frozenset([default[0]])
        detour = topo.route_avoiding(0, 5, blocked_clusters=blocked)
        assert detour is not None
        assert detour[-1] == 5
        assert not blocked & set(detour)

    def test_detours_around_dead_link(self):
        topo = HypercubeTopology(16)
        default = topo.route(0, 1)
        assert default == [1]
        dead = frozenset([link_key(0, 1)])
        detour = topo.route_avoiding(0, 1, blocked_links=dead)
        assert detour is not None
        assert detour[-1] == 1
        previous = 0
        for hop in detour:
            assert link_key(previous, hop) not in dead
            previous = hop

    def test_blocked_destination_unreachable(self):
        topo = HypercubeTopology(16)
        assert topo.route_avoiding(
            0, 5, blocked_clusters=frozenset([5])
        ) is None

    def test_isolated_source_unreachable(self):
        topo = HypercubeTopology(16)
        dead = frozenset(link_key(0, nb) for nb in topo.neighbors(0))
        assert topo.route_avoiding(0, 5, blocked_links=dead) is None

    def test_deterministic(self):
        topo = HypercubeTopology(16)
        blocked = frozenset([1, 4])
        dead = frozenset([link_key(0, 5)])
        first = topo.route_avoiding(
            0, 5, blocked_clusters=blocked, blocked_links=dead
        )
        second = topo.route_avoiding(
            0, 5, blocked_clusters=blocked, blocked_links=dead
        )
        assert first == second


class TestStats:
    def test_record_and_means(self):
        stats = IcnStats()
        stats.record(1, 2.0)
        stats.record(3, 4.0)
        assert stats.messages == 2
        assert stats.mean_hops == 2.0
        assert stats.mean_latency == 3.0
        assert stats.hop_histogram == {1: 1, 3: 1}

    def test_dimension_counting(self):
        stats = IcnStats()
        stats.record_dimension("L")
        stats.record_dimension("L")
        stats.record_dimension("X")
        assert stats.dimension_counts == {"L": 2, "X": 1}

    def test_empty_stats(self):
        stats = IcnStats()
        assert stats.mean_hops == 0.0
        assert stats.mean_latency == 0.0
