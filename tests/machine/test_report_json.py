"""Regression tests: MachineRunReport.to_json must stay JSON-safe.

``InstructionTrace.result`` is typed ``Any`` — nothing stops an
instruction implementation from storing sets, tuples, or arbitrary
objects there.  ``to_json`` must coerce (not crash on, not silently
corrupt) whatever it finds.
"""

import json

from repro.machine.report import (
    InstructionTrace, MachineRunReport, _json_safe,
)


def _trace(index, result):
    return InstructionTrace(
        index=index,
        opcode="COLLECT-NODE",
        category="retrieval",
        issue_time=0.0,
        complete_time=1.0,
        result=result,
    )


class _Opaque:
    def __repr__(self):
        return "<opaque marker-set>"


class TestJsonSafe:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "node"):
            assert _json_safe(value) == value

    def test_tuple_becomes_list(self):
        assert _json_safe(("a", ("b", "c"))) == ["a", ["b", "c"]]

    def test_set_is_sorted_deterministically(self):
        assert _json_safe({"b", "a", "c"}) == ["a", "b", "c"]
        # Mixed types must not raise on comparison.
        assert _json_safe({1, "a"}) == sorted([1, "a"], key=repr)

    def test_dict_keys_stringified(self):
        assert _json_safe({1: {"x"}}) == {"1": ["x"]}

    def test_unknown_object_falls_back_to_repr(self):
        assert _json_safe(_Opaque()) == "<opaque marker-set>"


class TestReportToJson:
    def test_non_json_result_serializes(self):
        report = MachineRunReport(
            traces=[
                _trace(0, {"zebra", "apple"}),
                _trace(1, [("node", 3), _Opaque()]),
                _trace(2, None),
            ]
        )
        dump = json.loads(json.dumps(report.to_json()))
        instructions = dump["instructions"]
        assert instructions[0]["result"] == ["apple", "zebra"]
        assert instructions[1]["result"] == [["node", 3],
                                             "<opaque marker-set>"]
        # None results are dropped, not emitted as null.
        assert "result" not in instructions[2]

    def test_dump_is_deterministic(self):
        def build():
            return MachineRunReport(
                traces=[_trace(0, frozenset({"b", "a"}))]
            )

        assert json.dumps(build().to_json(), sort_keys=True) == json.dumps(
            build().to_json(), sort_keys=True
        )
