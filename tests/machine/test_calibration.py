"""Calibration anchors stay within their paper-derived bands."""

import pytest

from repro.machine.calibration import (
    Anchor,
    calibration_report,
    measure_anchors,
)
from repro.machine.config import Timing


class TestAnchors:
    @pytest.fixture(scope="class")
    def anchors(self):
        return measure_anchors()

    def test_every_anchor_within_band(self, anchors):
        drifted = [a for a in anchors if not a.within_band]
        assert not drifted, "\n".join(a.render() for a in drifted)

    def test_all_published_anchors_measured(self, anchors):
        names = {a.name for a in anchors}
        assert any("SET-MARKER" in n for n in names)
        assert any("PROPAGATE" in n for n in names)
        assert any("ICN hop" in n for n in names)
        assert any("diameter" in n for n in names)
        assert any("144" in str(a.paper_value) or a.paper_value == 144.0
                   for a in anchors)

    def test_hop_time_exact(self, anchors):
        hop = next(a for a in anchors if "ICN hop" in a.name)
        assert hop.measured == pytest.approx(0.64)

    def test_report_renders(self):
        text = calibration_report()
        assert "calibration anchors" in text
        assert "within tolerance" in text

    def test_drift_detected(self):
        """A grossly wrong timing must be flagged."""
        slow = Timing(t_status_word=50.0)  # 250x the calibrated value
        anchors = measure_anchors(slow)
        clear = next(a for a in anchors if "CLEAR-MARKER" in a.name)
        assert not clear.within_band
        assert "DRIFTED" in calibration_report(slow)


class TestAnchorMath:
    def test_ratio_and_band(self):
        anchor = Anchor("x", 100.0, 150.0, "us", 0.5, 2.0, "src")
        assert anchor.ratio == 1.5
        assert anchor.within_band

    def test_zero_paper_value(self):
        anchor = Anchor("x", 0.0, 5.0, "us", 0.5, 2.0, "src")
        assert anchor.ratio == 1.0
