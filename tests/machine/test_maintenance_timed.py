"""Node-maintenance instructions on the timed machine.

CREATE/DELETE/SET-COLOR are controller housekeeping: they drain the
pipeline before executing (§III-C) and charge their table updates to
the affected node's home cluster.
"""

import pytest

from repro.isa import (
    CollectNode,
    Create,
    Delete,
    Propagate,
    SearchNode,
    SetColor,
    SnapProgram,
    chain,
    complex_marker,
)
from repro.machine import MachineConfig, SnapMachine

M0, M1 = complex_marker(0), complex_marker(1)


@pytest.fixture
def machine(fig5_kb):
    return SnapMachine(fig5_kb, MachineConfig(num_clusters=4,
                                              mus_per_cluster=2))


class TestTimedMaintenance:
    def test_create_then_propagate_through_new_link(self, machine):
        report = machine.run(SnapProgram([
            Create("fresh-a", "is-a", 0.5, "fresh-b"),
            SearchNode("fresh-a", M0),
            Propagate(M0, M1, chain("is-a"), "add-weight"),
            CollectNode(M1),
        ]))
        names = {name for _gid, name in report.results()[-1]}
        assert "fresh-b" in names

    def test_create_waits_for_inflight_propagates(self, machine):
        report = machine.run(SnapProgram([
            SearchNode("w:we", M0),
            Propagate(M0, M1, chain("is-a"), "identity"),
            Create("later-a", "r", 0.0, "later-b"),
        ]))
        propagate = report.traces[1]
        create = report.traces[2]
        assert create.issue_time >= propagate.complete_time

    def test_delete_stops_propagation(self, machine):
        report = machine.run(SnapProgram([
            Delete("w:we", "is-a", "animate"),
            SearchNode("w:we", M0),
            Propagate(M0, M1, chain("is-a"), "identity"),
            CollectNode(M1),
        ]))
        names = {name for _gid, name in report.results()[-1]}
        assert "animate" not in names
        assert "noun-phrase" in names  # the other is-a link survives

    def test_set_color_timed(self, machine):
        report = machine.run(SnapProgram([SetColor("w:we", 42)]))
        assert machine.state.network.node("w:we").color == 42
        assert report.traces[0].latency > 0

    def test_maintenance_appears_in_category_busy(self, machine):
        report = machine.run(SnapProgram([
            Create("m-a", "r", 0.0, "m-b"),
        ]))
        assert report.category_busy_us.get("maintenance", 0) > 0
