"""SnapMachine end-to-end: timing, overlap, equivalence, reports."""

import pytest

from repro.core import FunctionalEngine
from repro.isa import (
    CollectNode,
    Propagate,
    SearchColor,
    SnapProgram,
    assemble,
    chain,
    complex_marker,
)
from repro.machine import (
    MachineConfig,
    SnapMachine,
    snap1_16cluster,
    snap1_full,
    uniprocessor,
)
from repro.network import Color, generate_kb, GeneratorSpec


FIG5_PROGRAM = """
SEARCH-NODE w:we m1 0.0
SEARCH-NODE w:saw m2 0.0
PROPAGATE m1 m3 spread(is-a,last) add-weight
PROPAGATE m2 m4 chain(is-a) add-weight
AND-MARKER m3 m4 m5 min
COLLECT-NODE m3
COLLECT-MARKER m4
"""


@pytest.fixture
def small_machine(fig5_kb):
    return SnapMachine(fig5_kb, MachineConfig(num_clusters=4,
                                              mus_per_cluster=2))


class TestExecution:
    def test_program_runs_to_completion(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert report.total_time_us > 0
        assert len(report.traces) == 7

    def test_results_match_functional_engine(self, fig5_kb, small_machine):
        program = assemble(FIG5_PROGRAM)
        machine_results = small_machine.run(program).results()
        engine = FunctionalEngine(fig5_kb, num_clusters=1)
        functional_results = [
            r.result for r in engine.run(program).records
            if r.result is not None
        ]
        assert machine_results == functional_results

    def test_traces_in_program_order(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert [t.index for t in report.traces] == list(range(7))
        opcodes = [t.opcode for t in report.traces]
        assert opcodes[0] == "SEARCH-NODE"
        assert opcodes[-1] == "COLLECT-MARKER"

    def test_instruction_latencies_positive_and_ordered(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        for trace in report.traces:
            assert trace.complete_time > trace.issue_time >= 0

    def test_deterministic(self, fig5_kb):
        import copy

        program = assemble(FIG5_PROGRAM)
        r1 = SnapMachine(copy.deepcopy(fig5_kb),
                         MachineConfig(4, 2)).run(program)
        r2 = SnapMachine(copy.deepcopy(fig5_kb),
                         MachineConfig(4, 2)).run(program)
        assert r1.total_time_us == r2.total_time_us
        assert [t.latency for t in r1.traces] == [
            t.latency for t in r2.traces
        ]

    def test_state_persists_between_runs(self, small_machine):
        small_machine.run(assemble("SEARCH-NODE w:we m1"))
        results = small_machine.run_and_collect(assemble("COLLECT-NODE m1"))
        assert results[-1][0][1] == "w:we"

    def test_run_accepts_instruction_list(self, small_machine):
        report = small_machine.run(
            [SearchColor(Color.LEXICAL, complex_marker(0)),
             CollectNode(complex_marker(0))]
        )
        assert len(report.results()[-1]) == 3


class TestOverlapAndBarriers:
    def test_independent_propagates_overlap(self, fig5_kb):
        """β-parallelism: L4/L5-style propagates share the pipeline."""
        machine = SnapMachine(fig5_kb, MachineConfig(4, 2))
        report = machine.run(assemble(FIG5_PROGRAM))
        p1 = next(t for t in report.traces if t.index == 2)
        p2 = next(t for t in report.traces if t.index == 3)
        assert p2.issue_time < p1.complete_time, "no overlap observed"

    def test_dependent_instruction_waits(self, fig5_kb):
        machine = SnapMachine(fig5_kb, MachineConfig(4, 2))
        report = machine.run(assemble(FIG5_PROGRAM))
        and_trace = next(t for t in report.traces if t.opcode == "AND-MARKER")
        for index in (2, 3):
            propagate = next(t for t in report.traces if t.index == index)
            assert and_trace.issue_time >= propagate.complete_time

    def test_collect_forces_full_barrier(self, fig5_kb):
        machine = SnapMachine(fig5_kb, MachineConfig(4, 2))
        report = machine.run(assemble("""
        SEARCH-NODE w:we m1
        PROPAGATE m1 m2 chain(is-a) identity
        COLLECT-NODE m9
        """))
        collect = report.traces[-1]
        propagate = report.traces[1]
        assert collect.issue_time >= propagate.complete_time


class TestReport:
    def test_category_busy_covers_all_categories_run(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert set(report.category_busy_us) >= {
            "search", "propagate", "boolean", "collect"
        }

    def test_overheads_populated(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert report.overheads.broadcast > 0
        assert report.overheads.synchronization > 0
        assert report.overheads.collection > 0

    def test_sync_points_recorded_per_propagate(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert len(report.sync_stats.points) == 2

    def test_alpha_recorded(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        stats = report.alpha_stats()
        assert stats["min"] == 1.0  # single-seed propagates

    def test_summary_keys(self, small_machine):
        summary = small_machine.run(assemble(FIG5_PROGRAM)).summary()
        for key in ("time_ms", "instructions", "propagates", "messages",
                    "mu_utilization", "overhead_us"):
            assert key in summary

    def test_cluster_busy_reported(self, small_machine):
        report = small_machine.run(assemble(FIG5_PROGRAM))
        assert len(report.cluster_busy) == 4
        assert all("mu_busy" in c for c in report.cluster_busy)


class TestScaling:
    def test_more_clusters_speed_up_heavy_propagation(self):
        spec = GeneratorSpec(total_nodes=600)
        program = SnapProgram([
            SearchColor(Color.LEXICAL, complex_marker(0)),
            Propagate(complex_marker(0), complex_marker(1),
                      chain("is-a"), "add-weight"),
        ])
        small = SnapMachine(generate_kb(spec), uniprocessor()).run(program)
        large = SnapMachine(
            generate_kb(spec), MachineConfig(8, 3)
        ).run(program)
        assert large.total_time_us < small.total_time_us

    def test_message_traffic_only_with_multiple_clusters(self, fig5_kb):
        import copy

        program = assemble(FIG5_PROGRAM)
        one = SnapMachine(copy.deepcopy(fig5_kb), uniprocessor()).run(program)
        many = SnapMachine(
            copy.deepcopy(fig5_kb), MachineConfig(4, 2)
        ).run(program)
        assert one.icn_stats.messages == 0
        assert many.icn_stats.messages > 0

    def test_packed_messages_mode_runs(self, fig5_kb):
        config = MachineConfig(4, 2, pack_messages=True)
        machine = SnapMachine(fig5_kb, config)
        report = machine.run(assemble(FIG5_PROGRAM))
        assert report.total_time_us > 0

    def test_config_mismatch_rejected(self, fig5_kb):
        from repro.core import MachineState
        from repro.machine import SnapSimulation

        state = MachineState(fig5_kb, num_clusters=2)
        with pytest.raises(ValueError):
            SnapSimulation(state, MachineConfig(num_clusters=4))


class TestJsonExport:
    def test_to_json_round_trips_through_json(self, small_machine):
        import json

        report = small_machine.run(assemble(FIG5_PROGRAM))
        dump = json.loads(json.dumps(report.to_json()))
        assert dump["total_time_us"] == report.total_time_us
        assert len(dump["instructions"]) == len(report.traces)
        assert dump["num_clusters"] == 4
        assert "collection" in dump["overheads_us"]
        assert dump["icn"]["messages"] == report.icn_stats.messages


class TestBudgetedRun:
    """Deadline budgets on the nested run (the serving layer's knife)."""

    def test_tiny_budget_aborts_instead_of_deadlocking(self, fig5_kb):
        machine = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        report = machine.run(assemble(FIG5_PROGRAM), budget_us=1.0)
        assert report.aborted
        assert report.total_time_us <= 1.0

    def test_generous_budget_runs_to_completion(self, fig5_kb):
        machine = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        unbudgeted = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        ).run(assemble(FIG5_PROGRAM))
        report = machine.run(
            assemble(FIG5_PROGRAM), budget_us=10 * unbudgeted.total_time_us
        )
        assert not report.aborted
        assert report.total_time_us == unbudgeted.total_time_us
        assert report.results() == unbudgeted.results()

    def test_aborted_flag_in_json(self, fig5_kb):
        machine = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        report = machine.run(assemble(FIG5_PROGRAM), budget_us=1.0)
        assert report.to_json()["aborted"] is True

    def test_aborted_run_utilization_stays_within_capacity(self, fig5_kb):
        """Regression: busy time accrues a job's full service at start,
        so a run aborted mid-service used to count MU time that never
        elapsed — with long service times relative to the budget,
        ``mu_utilization()`` came out above 1 (12x over, for this
        timing).  The elapsed-busy-time view pins it to capacity."""
        from repro.machine.config import Timing

        timing = Timing(t_node_visit=500.0)
        for budget in (5.0, 20.0, 50.0, 100.0):
            machine = SnapMachine(
                fig5_kb,
                MachineConfig(
                    num_clusters=4, mus_per_cluster=2, timing=timing
                ),
            )
            report = machine.run(assemble(FIG5_PROGRAM), budget_us=budget)
            assert report.aborted
            assert report.mu_utilization() <= 1.0

    def test_marker_reset_clears_prior_query_state(self, fig5_kb):
        """Back-to-back runs on one machine (the serving pattern) see
        identical results once markers are wiped between queries."""
        machine = SnapMachine(
            fig5_kb, MachineConfig(num_clusters=4, mus_per_cluster=2)
        )
        first = machine.run(assemble(FIG5_PROGRAM)).results()
        machine.reset_markers()
        second = machine.run(assemble(FIG5_PROGRAM)).results()
        assert first == second
