"""Timeline rendering and overlap measurement."""

import pytest

from repro.analysis import (
    cluster_activity,
    instruction_gantt,
    overlap_factor,
    render_report_timeline,
)
from repro.isa import assemble
from repro.machine import MachineConfig, SnapMachine
from repro.machine.perfnet import EventCode, PerfRecord
from repro.machine.report import InstructionTrace


def trace(index, opcode, issue, complete):
    return InstructionTrace(
        index=index, opcode=opcode, category="propagate",
        issue_time=issue, complete_time=complete,
    )


class TestGantt:
    def test_bars_cover_span(self):
        traces = [trace(0, "PROPAGATE", 0.0, 50.0),
                  trace(1, "PROPAGATE", 10.0, 60.0)]
        text = instruction_gantt(traces, width=20)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "#" in lines[1] and "#" in lines[2]
        # Second bar starts later than the first.
        assert lines[2].index("#") > lines[1].index("#")

    def test_empty(self):
        assert instruction_gantt([]) == "(no instructions)"

    def test_row_cap(self):
        traces = [trace(i, "X", i, i + 1) for i in range(50)]
        text = instruction_gantt(traces, max_rows=10)
        assert "more instructions" in text


class TestClusterActivity:
    def test_rows_per_source(self):
        records = [
            PerfRecord(1.0, 0, EventCode.TASK_START),
            PerfRecord(5.0, 3, EventCode.MSG_SEND),
            PerfRecord(9.0, -1, EventCode.BARRIER),
        ]
        text = cluster_activity(records, total_time_us=10.0, width=10)
        assert " ctl |" in text
        assert " c00 |" in text
        assert " c03 |" in text

    def test_empty(self):
        assert "no monitoring" in cluster_activity([], 0.0)


class TestOverlapFactor:
    def test_sequential_is_one(self):
        traces = [trace(0, "A", 0.0, 10.0), trace(1, "B", 10.0, 20.0)]
        assert overlap_factor(traces) == pytest.approx(1.0)

    def test_fully_overlapped_is_two(self):
        traces = [trace(0, "A", 0.0, 10.0), trace(1, "B", 0.0, 10.0)]
        assert overlap_factor(traces) == pytest.approx(2.0)

    def test_empty(self):
        assert overlap_factor([]) == 0.0


class TestEndToEnd:
    def test_render_real_report(self, fig5_kb):
        machine = SnapMachine(fig5_kb, MachineConfig(4, 2))
        report = machine.run(assemble("""
        SEARCH-NODE w:we m1
        SEARCH-NODE w:saw m2
        PROPAGATE m1 m3 chain(is-a) identity
        PROPAGATE m2 m4 chain(is-a) identity
        COLLECT-NODE m3
        """))
        text = render_report_timeline(report)
        assert "Gantt" in text
        assert "PROPAGATE" in text
        assert "cluster activity" in text
        assert "mean in-flight" in text
        # The two independent propagates overlap in real runs.
        assert overlap_factor(report.traces) > 1.0
