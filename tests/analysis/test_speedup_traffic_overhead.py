"""Speedup curves, traffic summaries, overhead sweeps, α/β stats."""

import pytest

from repro.analysis import (
    OverheadSweep,
    SpeedupCurve,
    SweepPoint,
    format_overhead_table,
    format_speedup_table,
    format_traffic_series,
    knee,
    measure_beta,
    parallelism_stats,
    summarize_traffic,
    traffic_histogram,
)
from repro.machine.report import OverheadBreakdown


class TestSpeedupCurve:
    def make_curve(self):
        curve = SpeedupCurve("demo")
        for pes, time in ((1, 100.0), (4, 30.0), (16, 10.0), (64, 9.0)):
            curve.add(SweepPoint(pes, pes, time))
        return curve

    def test_baseline_is_smallest_config(self):
        assert self.make_curve().baseline_time_us == 100.0

    def test_speedups_ascending_processors(self):
        speedups = self.make_curve().speedups()
        assert [p for p, _s in speedups] == [1, 4, 16, 64]
        assert speedups[0][1] == 1.0
        assert speedups[2][1] == pytest.approx(10.0)

    def test_speedup_at(self):
        assert self.make_curve().speedup_at(16) == pytest.approx(10.0)
        assert self.make_curve().speedup_at(99) is None

    def test_max_and_efficiency(self):
        curve = self.make_curve()
        assert curve.max_speedup() == pytest.approx(100 / 9)
        eff = dict(curve.efficiency())
        assert eff[1] == pytest.approx(1.0)
        assert eff[64] < 0.2

    def test_knee_detects_saturation(self):
        assert knee(self.make_curve(), threshold=0.05) == 16

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            SpeedupCurve("empty").baseline_time_us

    def test_table_renders_all_curves(self):
        a, b = self.make_curve(), self.make_curve()
        b.label = "other"
        text = format_speedup_table([a, b])
        assert "demo" in text and "other" in text


class TestTraffic:
    def test_summary(self):
        summary = summarize_traffic([10, 40, 5, 0])
        assert summary.sync_points == 4
        assert summary.total_messages == 55
        assert summary.mean == pytest.approx(13.75)
        assert summary.peak == 40
        assert summary.bursts_over_30 == 1
        assert summary.bursty

    def test_empty_series(self):
        summary = summarize_traffic([])
        assert summary.sync_points == 0
        assert not summary.bursty

    def test_histogram_buckets(self):
        hist = traffic_histogram([0, 3, 7, 12], bucket=5)
        assert hist == {"0-4": 2, "5-9": 1, "10-14": 1}

    def test_render(self):
        text = format_traffic_series([5, 35], title="t")
        assert "t" in text
        assert "mean=" in text


class TestOverheadSweep:
    def make_sweep(self):
        sweep = OverheadSweep()
        sweep.add(1, 5, OverheadBreakdown(10, 0, 1, 100))
        sweep.add(4, 20, OverheadBreakdown(10, 20, 3, 400))
        sweep.add(16, 72, OverheadBreakdown(11, 40, 9, 1600))
        return sweep

    def test_series(self):
        sweep = self.make_sweep()
        assert sweep.series("collection") == [
            (1, 100.0), (4, 400.0), (16, 1600.0)
        ]

    def test_shape_checks(self):
        sweep = self.make_sweep()
        assert sweep.is_roughly_constant("broadcast")
        assert sweep.is_sublinear("communication")
        assert not sweep.is_sublinear("collection")
        assert sweep.dominant_component() == "collection"

    def test_growth_ratio(self):
        assert self.make_sweep().growth_ratio("collection") == 16.0

    def test_render(self):
        text = format_overhead_table(self.make_sweep())
        assert "clusters" in text
        assert "collection" in text


class TestParallelismStats:
    def test_beta_from_programs(self):
        from repro.isa import Propagate, SnapProgram, chain

        program = SnapProgram([
            Propagate(0, 10, chain("r")),
            Propagate(1, 11, chain("r")),
            Propagate(10, 12, chain("r")),  # dependent
        ])
        assert measure_beta([program]) == [2, 1]

    def test_combined_stats(self, fig5_kb):
        from repro.baselines import SerialMachine
        from repro.isa import assemble

        program = assemble("""
        SEARCH-NODE w:we m1
        SEARCH-NODE w:saw m2
        PROPAGATE m1 m3 chain(is-a) identity
        PROPAGATE m2 m4 chain(is-a) identity
        """)
        report = SerialMachine(fig5_kb).run(program)
        stats = parallelism_stats([report], [program])
        assert stats.propagates == 2
        assert stats.alpha_min == 1
        assert stats.beta_max == 2.0
        assert "alpha_mean" in stats.as_dict()

    def test_empty(self):
        stats = parallelism_stats([], [])
        assert stats.propagates == 0
