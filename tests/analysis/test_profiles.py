"""Profile aggregation and rendering."""

import pytest

from repro.analysis import (
    CATEGORY_ORDER,
    Profile,
    format_profile_table,
    profile_from_parse_results,
    profile_from_report,
)
from repro.analysis.profiles import category_latency
from repro.baselines import SerialMachine
from repro.isa import assemble


class TestProfile:
    def test_shares_sum_to_one(self):
        profile = Profile()
        profile.add_counts({"propagate": 2, "setclear": 6})
        profile.add_time({"propagate": 80.0, "setclear": 20.0})
        assert sum(profile.frequency_share().values()) == pytest.approx(1.0)
        assert sum(profile.time_share().values()) == pytest.approx(1.0)
        assert profile.frequency_share()["propagate"] == pytest.approx(0.25)
        assert profile.time_share()["propagate"] == pytest.approx(0.8)

    def test_merge(self):
        a = Profile({"search": 1}, {"search": 5.0})
        b = Profile({"search": 2}, {"search": 3.0})
        a.merge(b)
        assert a.counts["search"] == 3
        assert a.time_us["search"] == 8.0

    def test_empty_shares(self):
        assert Profile().frequency_share() == {}
        assert Profile().time_share() == {}

    def test_totals(self):
        profile = Profile({"boolean": 4}, {"boolean": 7.5})
        assert profile.total_instructions == 4
        assert profile.total_time_us == 7.5


class TestExtraction:
    def test_profile_from_serial_report(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(
            "SEARCH-NODE w:we m1\nPROPAGATE m1 m2 chain(is-a) identity"
        ))
        profile = profile_from_report(report)
        assert profile.counts == {"search": 1, "propagate": 1}
        assert profile.total_time_us == pytest.approx(report.total_time_us)

    def test_category_latency_serial(self, fig5_kb):
        report = SerialMachine(fig5_kb).run(assemble(
            "SEARCH-NODE w:we m1\nPROPAGATE m1 m2 chain(is-a) identity"
        ))
        latency = category_latency([report])
        assert set(latency) == {"search", "propagate"}

    def test_category_latency_machine(self, fig5_kb):
        from repro.machine import MachineConfig, SnapMachine

        machine = SnapMachine(fig5_kb, MachineConfig(2, 2))
        report = machine.run(assemble(
            "SEARCH-NODE w:we m1\nPROPAGATE m1 m2 chain(is-a) identity"
        ))
        latency = category_latency([report])
        assert latency["propagate"] > 0


class TestRendering:
    def test_table_contains_categories_and_total(self):
        profile = Profile(
            {"propagate": 2, "collect": 1},
            {"propagate": 10.0, "collect": 1.0},
        )
        text = format_profile_table(profile, title="demo")
        assert "demo" in text
        assert "propagate" in text
        assert "total" in text

    def test_category_order_starts_with_propagate(self):
        assert CATEGORY_ORDER[0] == "propagate"
