"""SemanticNetwork: construction, lookup, mutation, validation."""

import pytest

from repro.network import Color, GraphError, NodeError, SemanticNetwork
from repro.network.node import Link, Node


class TestNodes:
    def test_ids_are_dense_and_ordered(self):
        net = SemanticNetwork()
        nodes = [net.add_node(f"n{i}") for i in range(5)]
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]

    def test_duplicate_name_rejected(self):
        net = SemanticNetwork()
        net.add_node("x")
        with pytest.raises(GraphError):
            net.add_node("x")

    def test_resolve_by_name_id_and_node(self):
        net = SemanticNetwork()
        node = net.add_node("alpha")
        assert net.resolve("alpha") == node.node_id
        assert net.resolve(node.node_id) == node.node_id
        assert net.resolve(node) == node.node_id

    def test_resolve_unknown_name(self):
        net = SemanticNetwork()
        with pytest.raises(GraphError):
            net.resolve("ghost")

    def test_resolve_out_of_range_id(self):
        net = SemanticNetwork()
        net.add_node("only")
        with pytest.raises(GraphError):
            net.resolve(7)

    def test_contains(self):
        net = SemanticNetwork()
        net.add_node("present")
        assert "present" in net
        assert "absent" not in net
        assert 0 in net
        assert 1 not in net

    def test_ensure_node_creates_once(self):
        net = SemanticNetwork()
        a = net.ensure_node("n", Color.SYNTAX)
        b = net.ensure_node("n", Color.LEXICAL)
        assert a.node_id == b.node_id
        assert net.node("n").color == Color.SYNTAX  # first wins

    def test_invalid_color_rejected(self):
        with pytest.raises(NodeError):
            Node(0, "bad", color=300)

    def test_set_color(self):
        net = SemanticNetwork()
        net.add_node("n", Color.GENERIC)
        net.set_color("n", Color.CS_ROOT)
        assert net.node("n").color == Color.CS_ROOT


class TestLinks:
    def test_add_link_registers_relation(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        link = net.add_link("a", "my-rel", "b", 2.5)
        assert net.relations.name_of(link.relation) == "my-rel"
        assert link.weight == 2.5

    def test_outgoing_by_relation(self):
        net = SemanticNetwork()
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.add_link("a", "r1", "b")
        net.add_link("a", "r2", "c")
        r1_links = net.outgoing_by_relation("a", "r1")
        assert len(r1_links) == 1
        assert r1_links[0].dest == net.resolve("b")
        assert net.outgoing_by_relation("a", "never") == []

    def test_remove_link(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b")
        assert net.remove_link("a", "r", "b") is True
        assert net.num_links == 0
        assert net.remove_link("a", "r", "b") is False

    def test_remove_only_first_matching(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b", 1.0)
        net.add_link("a", "r", "b", 2.0)
        net.remove_link("a", "r", "b")
        remaining = net.outgoing("a")
        assert len(remaining) == 1
        assert remaining[0].weight == 2.0

    def test_in_degree_tracks_mutations(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b")
        assert net.in_degree("b") == 1
        net.remove_link("a", "r", "b")
        assert net.in_degree("b") == 0

    def test_fanout(self):
        net = SemanticNetwork()
        net.add_node("hub")
        for i in range(5):
            net.add_node(f"d{i}")
            net.add_link("hub", "r", f"d{i}")
        assert net.fanout("hub") == 5

    def test_link_reversed(self):
        link = Link(1, 2, 3, 4.0)
        back = link.reversed()
        assert (back.source, back.dest) == (3, 1)
        assert back.relation == 2 and back.weight == 4.0

    def test_links_iterates_all(self, fig5_kb):
        assert len(list(fig5_kb.links())) == fig5_kb.num_links


class TestQueriesAndStats:
    def test_nodes_with_color(self, fig5_kb):
        lexical = fig5_kb.nodes_with_color(Color.LEXICAL)
        assert {n.name for n in lexical} == {"w:we", "w:saw", "w:terrorists"}

    def test_stats_keys(self, fig5_kb):
        stats = fig5_kb.stats()
        assert stats["nodes"] == fig5_kb.num_nodes
        assert stats["links"] == fig5_kb.num_links
        assert stats["max_fanout"] >= 1
        assert stats["relation_types"] >= 3

    def test_color_histogram_sums_to_nodes(self, fig5_kb):
        hist = fig5_kb.color_histogram()
        assert sum(hist.values()) == fig5_kb.num_nodes

    def test_validate_passes_on_good_graph(self, fig5_kb):
        fig5_kb.validate()

    def test_validate_detects_corruption(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b")
        # Corrupt internals deliberately.
        net._num_links = 5
        with pytest.raises(GraphError):
            net.validate()
