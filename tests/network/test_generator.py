"""Synthetic KB generator: determinism, proportions, structure."""

import pytest

from repro.network import (
    Color,
    GeneratorSpec,
    HIERARCHY_ROOT,
    generate_hierarchy_kb,
    generate_kb,
    kb_size_sweep,
    layer_histogram,
    nonlexical_proportions,
)


class TestGenerateKb:
    def test_deterministic_for_seed(self):
        a = generate_kb(GeneratorSpec(total_nodes=500, seed=3))
        b = generate_kb(GeneratorSpec(total_nodes=500, seed=3))
        assert a.num_nodes == b.num_nodes
        assert a.num_links == b.num_links
        assert [n.name for n in a.nodes()] == [n.name for n in b.nodes()]

    def test_different_seeds_differ(self):
        a = generate_kb(GeneratorSpec(total_nodes=500, seed=1))
        b = generate_kb(GeneratorSpec(total_nodes=500, seed=2))
        assert a.num_links != b.num_links or (
            [n.name for n in a.nodes()] != [n.name for n in b.nodes()]
        )

    def test_node_budget_respected(self):
        net = generate_kb(GeneratorSpec(total_nodes=2000))
        assert abs(net.num_nodes - 2000) / 2000 < 0.05

    def test_paper_layer_proportions(self):
        net = generate_kb(GeneratorSpec(total_nodes=4000))
        mix = nonlexical_proportions(net)
        assert abs(mix["concept-sequences"] - 0.75) < 0.10
        assert abs(mix["hierarchy"] - 0.15) < 0.05
        assert abs(mix["syntax"] - 0.05) < 0.03

    def test_lexical_fraction(self):
        net = generate_kb(GeneratorSpec(total_nodes=3000))
        hist = layer_histogram(net)
        lexical_share = hist["lexical"] / net.num_nodes
        assert abs(lexical_share - 0.33) < 0.05

    def test_mean_fanout_near_paper(self):
        # Paper KB: 12K nodes / 48K links => mean fanout ~4; ours is
        # built to land in the 2.5-4.5 band.
        net = generate_kb(GeneratorSpec(total_nodes=4000))
        mean = net.num_links / net.num_nodes
        assert 2.0 < mean < 5.0

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpec(cs_fraction=0.9, hierarchy_fraction=0.3)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpec(total_nodes=10)

    def test_sweep_monotone_sizes(self):
        nets = kb_size_sweep([300, 600, 1200])
        sizes = [n.num_nodes for n in nets]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]


class TestHierarchyKb:
    def test_structure(self):
        net = generate_hierarchy_kb(100, branching=4)
        # 100 concepts + property nodes.
        concepts = [
            n for n in net.nodes() if n.color == Color.SEMANTIC
        ]
        assert len(concepts) == 100
        assert HIERARCHY_ROOT in net

    def test_every_nonroot_has_is_a_parent(self):
        net = generate_hierarchy_kb(60)
        root = net.resolve(HIERARCHY_ROOT)
        for node in net.nodes():
            if node.color != Color.SEMANTIC or node.node_id == root:
                continue
            assert net.outgoing_by_relation(node.node_id, "is-a")

    def test_downward_links_installed(self):
        net = generate_hierarchy_kb(60)
        down = net.outgoing_by_relation(HIERARCHY_ROOT, "inverse:is-a")
        assert len(down) == 4  # branching children of the root

    def test_properties_at_root(self):
        net = generate_hierarchy_kb(50, properties_at_root=3)
        props = net.outgoing_by_relation(HIERARCHY_ROOT, "has-property")
        assert len(props) == 3

    def test_reachability_root_to_all(self):
        net = generate_hierarchy_kb(80)
        seen = set()
        frontier = [net.resolve(HIERARCHY_ROOT)]
        while frontier:
            nid = frontier.pop()
            if nid in seen:
                continue
            seen.add(nid)
            frontier.extend(
                l.dest for l in net.outgoing_by_relation(nid, "inverse:is-a")
            )
        concepts = {
            n.node_id for n in net.nodes() if n.color == Color.SEMANTIC
        }
        assert concepts <= seen
