"""Knowledge-base serialization round-trips."""

import pytest

from repro.network import generate_kb, GeneratorSpec, preprocess_fanout
from repro.network.io import FormatError, load_network, loads, save_network, saves


class TestRoundTrip:
    def test_fig5_roundtrip(self, fig5_kb):
        text = saves(fig5_kb)
        back = loads(text)
        assert back.num_nodes == fig5_kb.num_nodes
        assert back.num_links == fig5_kb.num_links
        for node in fig5_kb.nodes():
            other = back.node(node.name)
            assert other.node_id == node.node_id
            assert other.color == node.color
        original_links = sorted(
            (l.source, l.relation, l.dest, l.weight)
            for l in fig5_kb.links()
        )
        # Relation ids may renumber; compare by name.
        def key(net):
            return sorted(
                (net.node(l.source).name,
                 net.relations.name_of(l.relation),
                 net.node(l.dest).name,
                 round(l.weight, 6))
                for l in net.links()
            )

        assert key(back) == key(fig5_kb)

    def test_generated_kb_roundtrip(self):
        net = generate_kb(GeneratorSpec(total_nodes=300))
        back = loads(saves(net))
        assert back.num_nodes == net.num_nodes
        assert back.num_links == net.num_links

    def test_physical_network_with_subnodes(self):
        from repro.network import SemanticNetwork

        net = SemanticNetwork()
        net.add_node("hub")
        for i in range(30):
            net.add_node(f"d{i}")
            net.add_link("hub", "r", f"d{i}")
        physical = preprocess_fanout(net)
        back = loads(saves(physical))
        subnodes = [n for n in back.nodes() if n.is_subnode]
        assert subnodes
        assert subnodes[0].parent_id == back.resolve("hub")

    def test_file_roundtrip(self, fig5_kb, tmp_path):
        path = tmp_path / "kb.snapkb"
        save_network(fig5_kb, path)
        back = load_network(path)
        assert back.num_nodes == fig5_kb.num_nodes

    def test_weights_exact(self, tmp_path):
        from repro.network import SemanticNetwork

        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "r", "b", 0.1234567)
        back = loads(saves(net))
        assert list(back.links())[0].weight == 0.1234567


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(FormatError, match="header"):
            loads("node\ta\t0\t0\t-\n")

    def test_empty_input(self):
        with pytest.raises(FormatError):
            loads("")

    def test_bad_version(self):
        with pytest.raises(FormatError, match="version"):
            loads("snapkb 99\n")

    def test_unknown_record(self):
        with pytest.raises(FormatError, match="unknown record"):
            loads("snapkb 1\nfrobnicate\tx\n")

    def test_truncated_record(self):
        with pytest.raises(FormatError, match="line 2"):
            loads("snapkb 1\nnode\tonly-name\n")

    def test_tab_in_name_rejected_on_save(self):
        from repro.network import SemanticNetwork

        net = SemanticNetwork()
        net.add_node("bad\tname")
        with pytest.raises(FormatError):
            saves(net)

    def test_comments_and_blanks_ignored(self, fig5_kb):
        text = saves(fig5_kb)
        padded = "# leading comment\n\n" + text + "\n# trailing\n"
        assert loads(padded).num_nodes == fig5_kb.num_nodes


from hypothesis import given, settings, strategies as st

from tests.core.test_equivalence import random_network


@given(seed=st.integers(0, 5000))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip_random_networks(seed):
    """saves/loads is the identity on structure for arbitrary graphs."""
    net = random_network(seed, nodes=20, links=50)
    back = loads(saves(net))
    assert back.num_nodes == net.num_nodes
    assert back.num_links == net.num_links

    def shape(network):
        return sorted(
            (network.node(l.source).name,
             network.relations.name_of(l.relation),
             network.node(l.dest).name,
             l.weight)
            for l in network.links()
        )

    assert shape(back) == shape(net)
