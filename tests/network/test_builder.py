"""Fanout pre-processor and knowledge-base builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    CONT_RELATION,
    Color,
    KnowledgeBaseBuilder,
    MAX_FANOUT,
    SemanticNetwork,
    logical_fanout,
    preprocess_fanout,
)


def make_hub(fanout: int) -> SemanticNetwork:
    net = SemanticNetwork()
    net.add_node("hub")
    for i in range(fanout):
        net.add_node(f"d{i}")
        net.add_link("hub", "rel", f"d{i}", float(i))
    return net


class TestFanoutPreprocessor:
    def test_small_network_returned_unchanged(self):
        net = make_hub(MAX_FANOUT)
        assert preprocess_fanout(net) is net

    def test_overflow_creates_subnodes(self):
        net = make_hub(40)
        physical = preprocess_fanout(net)
        assert physical.num_nodes > net.num_nodes
        subnodes = [n for n in physical.nodes() if n.is_subnode]
        assert subnodes, "expected continuation subnodes"
        for sub in subnodes:
            assert sub.color == Color.SUBNODE
            assert sub.parent_id == physical.resolve("hub")

    def test_physical_fanout_bounded(self):
        physical = preprocess_fanout(make_hub(100))
        for node in physical.nodes():
            assert physical.fanout(node.node_id) <= MAX_FANOUT

    def test_original_ids_preserved(self):
        net = make_hub(40)
        original = {n.name: n.node_id for n in net.nodes()}
        physical = preprocess_fanout(net)
        for name, nid in original.items():
            assert physical.resolve(name) == nid

    def test_logical_fanout_preserved(self):
        net = make_hub(53)
        physical = preprocess_fanout(net)
        assert logical_fanout(physical, "hub") == 53

    def test_link_destinations_preserved(self):
        net = make_hub(40)
        physical = preprocess_fanout(net)
        cont = physical.relations.id_of(CONT_RELATION)
        dests = set()
        nid = physical.resolve("hub")
        while nid is not None:
            nxt = None
            for link in physical.outgoing(nid):
                if link.relation == cont:
                    nxt = link.dest
                else:
                    dests.add(physical.node(link.dest).name)
            nid = nxt
        assert dests == {f"d{i}" for i in range(40)}

    def test_rejects_tiny_max_fanout(self):
        with pytest.raises(ValueError):
            preprocess_fanout(make_hub(3), max_fanout=1)

    @given(fanout=st.integers(min_value=1, max_value=80))
    @settings(max_examples=25, deadline=None)
    def test_property_fanout_and_weights_preserved(self, fanout):
        net = make_hub(fanout)
        physical = preprocess_fanout(net)
        physical.validate()
        assert logical_fanout(physical, "hub") == fanout
        for node in physical.nodes():
            assert physical.fanout(node.node_id) <= MAX_FANOUT


class TestKnowledgeBaseBuilder:
    def test_word_links_to_classes(self):
        builder = KnowledgeBaseBuilder()
        builder.add_word("we", ["animate", "noun-phrase"])
        net = builder.network
        links = net.outgoing_by_relation("w:we", "is-a")
        names = {net.node(l.dest).name for l in links}
        assert names == {"animate", "noun-phrase"}
        assert net.node("w:we").color == Color.LEXICAL

    def test_class_hierarchy_links(self):
        builder = KnowledgeBaseBuilder()
        builder.add_class("human", ["animate"])
        links = builder.network.outgoing_by_relation("human", "is-a")
        assert len(links) == 1

    def test_concept_sequence_structure(self, fig5_kb):
        net = fig5_kb
        # root --first--> first element
        first = net.outgoing_by_relation("seeing-event", "first")
        assert len(first) == 1
        assert net.node(first[0].dest).name == "seeing-event.experiencer"
        # elements chained by next
        nxt = net.outgoing_by_relation("seeing-event.experiencer", "next")
        assert net.node(nxt[0].dest).name == "seeing-event.see"
        # last element links back to root
        last = net.outgoing_by_relation("seeing-event.object", "last")
        assert net.node(last[0].dest).name == "seeing-event"
        # every element links element-of to the root
        for el in ("experiencer", "see", "object"):
            eo = net.outgoing_by_relation(f"seeing-event.{el}", "element-of")
            assert net.node(eo[0].dest).name == "seeing-event"

    def test_concept_sequence_constraints_bidirectional(self, fig5_kb):
        net = fig5_kb
        # constraint --syntax-of--> element, element --is-a--> constraint
        refl = net.outgoing_by_relation("animate", "syntax-of")
        names = {net.node(l.dest).name for l in refl}
        assert "seeing-event.experiencer" in names
        up = net.outgoing_by_relation("seeing-event.experiencer", "is-a")
        up_names = {net.node(l.dest).name for l in up}
        assert "animate" in up_names

    def test_empty_concept_sequence_rejected(self):
        builder = KnowledgeBaseBuilder()
        with pytest.raises(ValueError):
            builder.add_concept_sequence("empty", [])

    def test_auxiliary_sequence_color(self):
        builder = KnowledgeBaseBuilder()
        builder.add_concept_sequence(
            "time-case", [("when", ["time-expr"])], auxiliary=True
        )
        assert builder.network.node("time-case").color == Color.CS_AUX

    def test_add_property(self):
        builder = KnowledgeBaseBuilder()
        builder.add_class("bird", [])
        builder.add_property("bird", "flies", 0.9)
        net = builder.network
        links = net.outgoing_by_relation("bird", "has-property")
        assert net.node(links[0].dest).name == "p:flies"
        assert net.node("p:flies").color == Color.PROPERTY

    def test_build_validates(self, fig5_kb):
        # build(physical=True) must yield a valid bounded-fanout net.
        builder = KnowledgeBaseBuilder()
        builder.add_class("c", [])
        for i in range(30):
            builder.network.add_node(f"t{i}")
            builder.network.add_link("c", "r", f"t{i}")
        physical = builder.build(physical=True)
        for node in physical.nodes():
            assert physical.fanout(node.node_id) <= MAX_FANOUT
