"""NetworkX bridge."""

import networkx as nx
import pytest

from repro.network import Color, generate_kb, GeneratorSpec
from repro.network.nx import from_networkx, kb_graph_metrics, to_networkx


class TestToNetworkx:
    def test_counts(self, fig5_kb):
        graph = to_networkx(fig5_kb)
        assert graph.number_of_nodes() == fig5_kb.num_nodes
        assert graph.number_of_edges() == fig5_kb.num_links

    def test_attributes(self, fig5_kb):
        graph = to_networkx(fig5_kb)
        nid = fig5_kb.resolve("w:we")
        assert graph.nodes[nid]["name"] == "w:we"
        assert graph.nodes[nid]["color"] == Color.LEXICAL
        relations = {
            a["relation"] for _u, _v, a in graph.edges(data=True)
        }
        assert "is-a" in relations and "first" in relations

    def test_roundtrip(self, fig5_kb):
        back = from_networkx(to_networkx(fig5_kb))
        assert back.num_nodes == fig5_kb.num_nodes
        assert back.num_links == fig5_kb.num_links
        # Structure preserved: same outgoing relation multiset per node.
        for node in fig5_kb.nodes():
            original = sorted(
                (fig5_kb.relations.name_of(l.relation),
                 fig5_kb.node(l.dest).name)
                for l in fig5_kb.outgoing(node.node_id)
            )
            mirrored = sorted(
                (back.relations.name_of(l.relation),
                 back.node(l.dest).name)
                for l in back.outgoing(node.name)
            )
            assert original == mirrored


class TestFromNetworkx:
    def test_plain_digraph(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", relation="is-a", weight=2.0)
        net = from_networkx(graph)
        links = net.outgoing_by_relation("a", "is-a")
        assert len(links) == 1
        assert links[0].weight == 2.0

    def test_undirected_becomes_bidirectional(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        net = from_networkx(graph)
        assert net.outgoing_by_relation("a", "related-to")
        assert net.outgoing_by_relation("b", "related-to")

    def test_usable_by_machine(self):
        from repro.baselines import SerialMachine
        from repro.isa import assemble

        graph = nx.path_graph(6, create_using=nx.DiGraph)
        net = from_networkx(graph)
        machine = SerialMachine(net)
        report = machine.run(assemble(
            "SEARCH-NODE 0 m1\n"
            "PROPAGATE m1 m2 chain(related-to) count-hops\n"
            "COLLECT-MARKER m2"
        ))
        collected = report.results()[-1]
        assert len(collected) == 5
        assert max(v for _g, v, _o in collected) == 5.0


class TestMetrics:
    def test_generated_kb_metrics(self):
        net = generate_kb(GeneratorSpec(total_nodes=400))
        metrics = kb_graph_metrics(net)
        assert metrics["nodes"] == net.num_nodes
        assert metrics["largest_component_fraction"] > 0.9
        assert metrics.get("is_a_depth", 0) >= 2
