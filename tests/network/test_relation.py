"""Relation registry: ids, names, inverses, capacity."""

import pytest

from repro.network.relation import (
    MAX_RELATION_TYPES,
    RelationError,
    RelationRegistry,
    STANDARD_RELATIONS,
)


class TestRegistration:
    def test_standard_relations_preregistered(self):
        registry = RelationRegistry()
        for name in STANDARD_RELATIONS:
            assert name in registry

    def test_register_returns_dense_ids(self):
        registry = RelationRegistry()
        base = len(registry)
        assert registry.register("rel-a") == base
        assert registry.register("rel-b") == base + 1

    def test_register_is_idempotent(self):
        registry = RelationRegistry()
        first = registry.register("agent-of")
        second = registry.register("agent-of")
        assert first == second
        assert len([n for n in registry if n == "agent-of"]) == 1

    def test_id_name_roundtrip(self):
        registry = RelationRegistry()
        rid = registry.register("part-of-x")
        assert registry.name_of(rid) == "part-of-x"
        assert registry.id_of("part-of-x") == rid

    def test_unknown_name_raises(self):
        registry = RelationRegistry()
        with pytest.raises(RelationError):
            registry.id_of("no-such-relation")

    def test_unknown_id_raises(self):
        registry = RelationRegistry()
        with pytest.raises(RelationError):
            registry.name_of(999_999)

    def test_get_returns_none_for_unknown(self):
        registry = RelationRegistry()
        assert registry.get("missing") is None

    def test_len_counts_registrations(self):
        registry = RelationRegistry()
        before = len(registry)
        registry.register("one-more")
        assert len(registry) == before + 1

    def test_capacity_is_64k(self):
        assert MAX_RELATION_TYPES == 64 * 1024


class TestInverses:
    def test_inverse_name_convention(self):
        registry = RelationRegistry()
        assert registry.inverse_name("is-a") == "inverse:is-a"

    def test_inverse_of_inverse_is_original(self):
        registry = RelationRegistry()
        assert registry.inverse_name("inverse:is-a") == "is-a"

    def test_register_inverse(self):
        registry = RelationRegistry()
        rid = registry.register_inverse("is-a")
        assert registry.name_of(rid) == "inverse:is-a"
