"""Layered KB organization: histograms, proportions, discipline."""

from repro.network import (
    Color,
    KnowledgeBaseBuilder,
    LAYERS,
    LEXICAL_LAYER,
    PAPER_NONLEXICAL_PROPORTIONS,
    SemanticNetwork,
    layer_histogram,
    layer_of_color,
    layering_violations,
    nonlexical_proportions,
)


class TestLayerMapping:
    def test_three_layers_bottom_to_top(self):
        assert [l.level for l in LAYERS] == [0, 1, 2]

    def test_lexical_color_maps_to_lexical_layer(self):
        assert layer_of_color(Color.LEXICAL) is LEXICAL_LAYER

    def test_cs_colors_map_to_top_layer(self):
        for color in (Color.CS_ROOT, Color.CS_ELEMENT, Color.CS_AUX):
            assert layer_of_color(color).name == "concept-sequences"

    def test_unknown_color_defaults_to_constraints(self):
        assert layer_of_color(200).name == "constraints"

    def test_paper_proportions_sum_to_one(self):
        assert abs(sum(PAPER_NONLEXICAL_PROPORTIONS.values()) - 1.0) < 1e-9


class TestHistograms:
    def test_histogram_counts(self, fig5_kb):
        hist = layer_histogram(fig5_kb)
        assert hist["lexical"] == 3
        assert hist["concept-sequences"] == 4  # root + 3 elements
        assert sum(hist.values()) == fig5_kb.num_nodes

    def test_nonlexical_proportions_empty_graph(self):
        assert set(nonlexical_proportions(SemanticNetwork()).values()) == {0.0}

    def test_proportions_exclude_lexical(self, fig5_kb):
        mix = nonlexical_proportions(fig5_kb)
        assert abs(sum(mix.values()) - 1.0) < 1e-9


class TestDiscipline:
    def test_clean_kb_has_no_violations(self, fig5_kb):
        assert layering_violations(fig5_kb) == []

    def test_is_a_into_lexical_flagged(self):
        builder = KnowledgeBaseBuilder()
        builder.add_word("we", ["animate"])
        builder.add_class("animate", [])
        builder.network.add_link("animate", "is-a", "w:we")
        violations = layering_violations(builder.network)
        assert len(violations) == 1
        assert "w:we" in violations[0]

    def test_no_is_a_relation_is_fine(self):
        net = SemanticNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "other", "b")
        assert layering_violations(net) == []
