"""Partitioning policies: coverage, balance, addressing, locality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    PartitionError,
    Partitioning,
    SemanticNetwork,
    community_partition,
    detect_communities,
    make_partition,
    round_robin_partition,
    semantic_partition,
    sequential_partition,
)


def line_network(n: int) -> SemanticNetwork:
    net = SemanticNetwork()
    net.add_node("n0")
    for i in range(1, n):
        net.add_node(f"n{i}")
        net.add_link(f"n{i-1}", "r", f"n{i}")
    return net


def clustered_network(groups: int, size: int) -> SemanticNetwork:
    """Disconnected cliques — the ideal case for semantic allocation."""
    net = SemanticNetwork()
    for g in range(groups):
        names = [f"g{g}n{i}" for i in range(size)]
        for name in names:
            net.add_node(name)
        for a in names:
            for b in names:
                if a != b:
                    net.add_link(a, "r", b)
    return net


ALL_POLICIES = ["sequential", "round-robin", "semantic", "community"]


class TestCoverage:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("clusters", [1, 2, 7, 16])
    def test_every_node_assigned_exactly_once(self, policy, clusters):
        net = line_network(50)
        part = make_partition(net, clusters, policy)
        seen = []
        for cid in range(clusters):
            seen.extend(part.members(cid))
        assert sorted(seen) == list(range(50))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_address_roundtrip(self, policy):
        net = line_network(30)
        part = make_partition(net, 4, policy)
        for nid in range(30):
            cluster, local = part.address_of(nid)
            assert part.global_id(cluster, local) == nid
            assert part.cluster_of(nid) == cluster
            assert part.local_id(nid) == local

    def test_unknown_policy(self):
        with pytest.raises(PartitionError):
            make_partition(line_network(5), 2, "magic")

    def test_capacity_violation(self):
        with pytest.raises(PartitionError):
            make_partition(line_network(50), 2, "round-robin", capacity=10)

    def test_zero_clusters_rejected(self):
        with pytest.raises(PartitionError):
            round_robin_partition(line_network(5), 0)


class TestBalance:
    def test_round_robin_is_maximally_balanced(self):
        part = round_robin_partition(line_network(37), 5)
        sizes = part.sizes()
        assert max(sizes) - min(sizes) <= 1
        assert part.imbalance() < 1.1

    def test_sequential_blocks_are_contiguous(self):
        part = sequential_partition(line_network(40), 4)
        for cid in range(4):
            members = part.members(cid)
            assert members == list(range(members[0], members[0] + len(members)))

    def test_semantic_respects_target(self):
        net = clustered_network(groups=4, size=10)
        part = semantic_partition(net, 4)
        assert max(part.sizes()) <= 10


class TestLocality:
    def test_semantic_beats_round_robin_on_clustered_graph(self):
        net = clustered_network(groups=8, size=8)
        semantic_cut = semantic_partition(net, 8).cut_links(net)
        rr_cut = round_robin_partition(net, 8).cut_links(net)
        assert semantic_cut < rr_cut

    def test_semantic_perfect_on_disconnected_cliques(self):
        net = clustered_network(groups=4, size=5)
        part = semantic_partition(net, 4)
        assert part.cut_links(net) == 0

    def test_cut_links_zero_on_single_cluster(self):
        net = clustered_network(groups=2, size=4)
        part = round_robin_partition(net, 1)
        assert part.cut_links(net) == 0


class TestCommunityDetection:
    def test_empty_network_yields_no_communities(self):
        assert detect_communities(SemanticNetwork()) == []

    def test_cliques_detected_exactly(self):
        net = clustered_network(groups=3, size=5)
        communities = detect_communities(net)
        assert sorted(sorted(c) for c in communities) == [
            list(range(g * 5, g * 5 + 5)) for g in range(3)
        ]

    def test_deterministic_run_to_run(self):
        net = clustered_network(groups=4, size=6)
        assert detect_communities(net) == detect_communities(net)

    def test_ordering_largest_first_lowest_member_tiebreak(self):
        net = clustered_network(groups=3, size=4)
        communities = detect_communities(net)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)
        # Equal sizes: ordered by smallest member id.
        firsts = [c[0] for c in communities]
        assert firsts == sorted(firsts)


class TestCommunityPartition:
    def test_empty_network_partitions_cleanly(self):
        part = community_partition(SemanticNetwork(), 4)
        assert part.num_nodes == 0
        assert part.sizes() == [0, 0, 0, 0]

    def test_single_community_split_instead_of_raising(self):
        # One fully connected component larger than any cluster: the
        # BFS-order split must apportion it without error.
        net = clustered_network(groups=1, size=12)
        part = community_partition(net, 4)
        seen = sorted(
            nid for cid in range(4) for nid in part.members(cid)
        )
        assert seen == list(range(12))
        assert max(part.sizes()) <= 3

    def test_perfect_on_disconnected_cliques(self):
        net = clustered_network(groups=4, size=5)
        part = community_partition(net, 4)
        assert part.cut_links(net) == 0

    def test_beats_round_robin_on_clustered_graph(self):
        net = clustered_network(groups=8, size=8)
        community_cut = community_partition(net, 8).cut_links(net)
        rr_cut = round_robin_partition(net, 8).cut_links(net)
        assert community_cut < rr_cut

    def test_deterministic_run_to_run(self):
        net = clustered_network(groups=4, size=7)
        a = community_partition(net, 3)
        b = community_partition(net, 3)
        assert [a.members(c) for c in range(3)] == \
               [b.members(c) for c in range(3)]

    def test_capacity_respected(self):
        net = line_network(20)
        part = community_partition(net, 4, capacity=5)
        assert max(part.sizes()) <= 5


class TestPartitioningObject:
    def test_invalid_assignment_rejected(self):
        with pytest.raises(PartitionError):
            Partitioning([0, 5, 0], num_clusters=2)

    def test_num_nodes(self):
        part = Partitioning([0, 1, 0, 1], num_clusters=2)
        assert part.num_nodes == 4
        assert part.sizes() == [2, 2]


@given(
    n=st.integers(min_value=1, max_value=120),
    clusters=st.integers(min_value=1, max_value=16),
    policy=st.sampled_from(ALL_POLICIES),
)
@settings(max_examples=60, deadline=None)
def test_property_partition_covers_all_nodes(n, clusters, policy):
    net = line_network(n)
    part = make_partition(net, clusters, policy, capacity=max(1, n))
    seen = sorted(
        nid for cid in range(clusters) for nid in part.members(cid)
    )
    assert seen == list(range(n))
    # Locals are dense per cluster.
    for cid in range(clusters):
        members = part.members(cid)
        for index, nid in enumerate(members):
            assert part.local_id(nid) == index
