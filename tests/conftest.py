"""Shared fixtures: small knowledge bases used across the test suite."""

from __future__ import annotations

import pytest

from repro.network import KnowledgeBaseBuilder, SemanticNetwork


@pytest.fixture
def fig5_kb() -> SemanticNetwork:
    """The paper's Fig. 1/Fig. 5 mini knowledge base.

    Words *we* and *saw*, syntax classes NP/VP, the *seeing-event*
    concept sequence with experiencer/see/object elements.
    """
    builder = KnowledgeBaseBuilder()
    builder.add_class("animate", ["thing"])
    builder.add_syntax_class("noun-phrase")
    builder.add_syntax_class("verb-phrase")
    builder.add_word("we", ["animate", "noun-phrase"])
    builder.add_word("saw", ["verb-phrase"])
    builder.add_word("terrorists", ["animate", "noun-phrase"])
    builder.add_concept_sequence(
        "seeing-event",
        [
            ("experiencer", ["animate", "noun-phrase"]),
            ("see", ["verb-phrase"]),
            ("object", ["thing"]),
        ],
        cost=1.0,
    )
    return builder.build(physical=False)


@pytest.fixture
def chain_kb() -> SemanticNetwork:
    """A simple weighted chain a0 -r-> a1 -r-> ... -r-> a5."""
    network = SemanticNetwork()
    previous = network.add_node("a0").node_id
    for i in range(1, 6):
        node = network.add_node(f"a{i}")
        network.add_link(previous, "r", node.node_id, float(i))
        previous = node.node_id
    return network


@pytest.fixture
def diamond_kb() -> SemanticNetwork:
    """Two paths of different cost from src to dst (min-cost tests).

    src -r(1)-> left -r(1)-> dst   (cost 2)
    src -r(5)-> right -r(5)-> dst  (cost 10)
    """
    network = SemanticNetwork()
    for name in ("src", "left", "right", "dst"):
        network.add_node(name)
    network.add_link("src", "r", "left", 1.0)
    network.add_link("left", "r", "dst", 1.0)
    network.add_link("src", "r", "right", 5.0)
    network.add_link("right", "r", "dst", 5.0)
    return network
