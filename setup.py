"""Setup shim so editable installs work without the `wheel` package.

`pip install -e .` requires `wheel` on this interpreter; in offline
environments without it, use `python setup.py develop` which produces
an equivalent editable install.
"""
from setuptools import setup

setup()
