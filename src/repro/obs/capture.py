"""Trace-capture workloads: ``python -m repro trace <workload>``.

One-command Perfetto captures of the canonical workloads (the same
scenarios the wall-clock benchmark exercises, sized for a readable
timeline rather than a stopwatch):

``propagate``
    Fan-out-heavy marker propagation on a healthy 16-cluster machine:
    pipeline lanes, per-cluster decode spans, MU occupancy, and ICN
    message traffic.
``faults``
    The same propagation under an aggressive fault pattern: offline
    clusters, dead links, transfer retries/timeouts, and checkpoint
    replays on the ``faults`` track.
``overload``
    The serving host under bursty 2x overload with half the replicas
    degraded (slow and damaged) and hedging enabled: per-query span
    trees, queue depth, breaker trips, and a hedged-retry rescue —
    open the trace in ``ui.perfetto.dev`` and look for the ``hedge
    q…`` span that finishes while its doomed primary is cancelled
    (the worked example in ``EXPERIMENTS.md``).
``chaos``
    Rolling gray failure and repair under sustained load: replicas
    turn slow-and-lossy mid-stream (plus one mid-propagation cluster
    flap from a machine-level ``FaultSchedule``) and are later
    repaired; the timeline shows ``fault-*`` instants inside nested
    runs, ``health-quarantined``/``health-active`` lifecycle
    transitions on the replica tracks, and ``audit-mismatch`` marks
    where shadow re-execution caught a silently-incomplete answer.
``fleetchaos``
    The sharded fleet through a full-region outage and a later gray
    (3x-slow) region: per-query scatter-gather span trees on the
    ``fleet-queries`` process, per-shard ``failover`` instants as
    serving moves off the dead region, ``rebuild-done`` marks as the
    rebalancer restores the replication factor, and the restore-home
    moves after the repair.

The emitted file is Chrome trace-event JSON (object form) with the
run's :class:`repro.obs.metrics.MetricsRegistry` dump under the extra
top-level ``"metrics"`` key.  Every capture is validated with
:mod:`repro.obs.validate` before it is written.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from .chrome import export_chrome_json
from .metrics import MetricsRegistry
from .tracer import Tracer
from .validate import validate_chrome_trace

#: Workload ids, in help/display order.
WORKLOADS = ("propagate", "faults", "overload", "chaos", "fleetchaos")


def _propagate_setup(faulty: bool):
    from ..isa import assemble
    from ..machine import SnapMachine
    from ..machine.config import MachineConfig, snap1_16cluster
    from ..network.generator import generate_hierarchy_kb

    network = generate_hierarchy_kb(360, branching=3)
    if faulty:
        from ..machine.faults import FaultConfig

        config = MachineConfig(
            num_clusters=16,
            mus_per_cluster=3,
            faults=FaultConfig(
                seed=11,
                failed_cluster_fraction=0.125,
                mu_loss_prob=0.1,
                link_fail_prob=0.15,
                transfer_corrupt_prob=0.08,
                scp_timeout_prob=0.02,
            ),
        )
    else:
        config = snap1_16cluster()
    machine = SnapMachine(network, config)
    programs = [
        assemble(text)
        for text in (
            """
            SEARCH-NODE thing b0
            PROPAGATE b0 b1 chain(inverse:is-a)
            COLLECT-NODE b1
            """,
            """
            SEARCH-NODE c1 b2
            PROPAGATE b2 b3 chain(inverse:is-a)
            COLLECT-NODE b3
            """,
        )
    ]
    return machine, programs


def _capture_machine(
    faulty: bool, smoke: bool
) -> Tuple[Tracer, MetricsRegistry, Dict[str, Any]]:
    machine, programs = _propagate_setup(faulty)
    if smoke:
        programs = programs[:1]
    tracer = Tracer()
    metrics = MetricsRegistry()
    offset = 0.0
    total = 0.0
    for program in programs:
        machine.reset_markers()
        # Back-to-back programs share one timeline: each run starts
        # where the previous one ended.
        report = machine.run(
            program, tracer=tracer, metrics=metrics, trace_offset_us=offset
        )
        offset += report.total_time_us
        total = offset
    return tracer, metrics, {
        "runs": len(programs),
        "simulated_us": round(total, 3),
    }


def capture_propagate(smoke: bool = False):
    """Healthy propagation capture (machine layer only)."""
    return _capture_machine(faulty=False, smoke=smoke)


def capture_faults(smoke: bool = False):
    """Propagation-under-faults capture (recovery events visible)."""
    return _capture_machine(faulty=True, smoke=smoke)


def capture_overload(smoke: bool = False):
    """Serving-host capture: bursty overload + degraded replicas + hedging.

    Tuned so every resilience mechanism fires on one timeline.  Half
    the replicas are degraded *slow-and-damaged* (heavy SCP-timeout
    penalties stretch their service several-fold before the offline
    clusters damage the answer), and the arrival stream alternates 2x
    overload bursts with drain lulls:

    * during a burst the queue overflows (shedding) and completed
      damaged attempts trip the per-replica breakers;
    * at a burst/lull boundary the healthy replicas drain while a
      straggler is still grinding on a degraded replica — the hedge
      timer fires, finds spare capacity, and the hedge *wins*,
      serving the query while the doomed primary is cancelled.  That
      hedged-retry rescue is the worked example in ``EXPERIMENTS.md``:
      open the trace in ``ui.perfetto.dev`` and find the query whose
      ``attempt-cancelled`` carries ``damage > 0`` next to a served
      outcome.
    """
    from dataclasses import replace

    from ..experiments.overload import build_queries, uncontended_profile
    from ..host import HostConfig, ServingHost
    from ..machine.faults import FaultConfig, RetryPolicy
    from ..network.generator import generate_hierarchy_kb

    count = 150 if smoke else 300
    burst, lull_us = 30, 3_000.0
    network = generate_hierarchy_kb(240, branching=3)
    base = dict(
        num_replicas=4,
        clusters_per_replica=4,
        mus_per_cluster=2,
        queue_capacity=16,
        shed_policy="reject-newest",
        max_attempts=2,
        faulty_replica_fraction=0.5,
        fault_seed=3,
        replica_fault_template=FaultConfig(
            failed_cluster_fraction=0.25,
            transfer_corrupt_prob=0.05,
            scp_timeout_prob=0.9,
            scp_timeout_penalty_us=400.0,
            remap_nodes=False,
            retry=RetryPolicy(max_retries=1),
        ),
    )
    mean_service, p99 = uncontended_profile(network, HostConfig(**base))
    sustainable = HostConfig(**base).num_replicas / mean_service
    config = HostConfig(**base, hedge_after_us=0.9 * p99)
    queries = build_queries(count, 2.0 * sustainable, 20.0 * p99)
    # Re-time the uniform stream into burst/lull cycles: a drain lull
    # after every `burst` arrivals is what leaves healthy replicas
    # idle while a degraded-replica straggler is still in flight.
    queries = [
        replace(q, arrival_us=q.arrival_us + (q.query_id // burst) * lull_us)
        for q in queries
    ]
    tracer = Tracer()
    metrics = MetricsRegistry()
    host = ServingHost(network, config, tracer=tracer, metrics=metrics)
    report = host.serve(queries)
    return tracer, metrics, {
        "queries": count,
        "served": report.served,
        "shed": report.shed,
        "timed_out": report.timed_out,
        "failed": report.failed,
        "hedges_issued": metrics.counter("host.hedges_issued").value,
        "breaker_opens": metrics.counter("host.breaker.opens").value,
        "simulated_us": round(report.total_time_us, 3),
    }


def capture_chaos(smoke: bool = False):
    """Live-fault capture: gray replicas, quarantine, readmit, audit.

    The :mod:`repro.experiments.chaos` scenario under full tracing:
    two replicas degrade *gray* (3x-slow MUs + silent marker drop)
    and one suffers a mid-propagation cluster flap, each repaired
    later in the run.  Look for ``health-quarantined`` instants on
    the gray replica tracks shortly after their degradation point,
    ``health-active`` (reason ``readmitted``) after their repair, and
    ``audit-mismatch`` marks where the shadow re-execution caught a
    silently-truncated answer the breaker never saw.
    """
    from ..experiments.chaos import build_scenario
    from ..host import ServingHost

    network, config, queries, profile = build_scenario(fast=True)
    if smoke:
        queries = queries[: len(queries) // 2]
    tracer = Tracer()
    metrics = MetricsRegistry()
    host = ServingHost(network, config, tracer=tracer, metrics=metrics)
    report = host.serve(queries)
    return tracer, metrics, {
        "queries": len(queries),
        "served": report.served,
        "shed": report.shed,
        "timed_out": report.timed_out,
        "failed": report.failed,
        "quarantines": sum(
            r.health_quarantines for r in report.replicas
        ),
        "readmissions": sum(
            r.health_readmissions for r in report.replicas
        ),
        "audit_checks": report.audit_checks,
        "audit_mismatches": report.audit_mismatches,
        "simulated_us": round(report.total_time_us, 3),
    }


def capture_fleetchaos(smoke: bool = False):
    """Fleet capture: regional outage, failover, rebalance, gray region.

    The :mod:`repro.experiments.fleetchaos` scenario under full
    tracing: region 0 dies at 30 ms and is repaired at 300 ms, then
    region 2 turns 3x-slow for 70 ms.  Look for ``failover`` instants
    on the shard tracks at the outage (serving moves to the surviving
    replica), ``rebuild-done`` as the rebalancer restores R during the
    outage, the restore-home ``failover`` instants after the repair,
    and a second failover wave on the gray region's shards when the
    phi-accrual health lifecycle quarantines their slowed replicas.
    """
    from ..experiments.fleetchaos import build_scenario
    from ..fleet import FleetRouter

    network, config, queries, profile = build_scenario(fast=True)
    if smoke:
        queries = queries[: len(queries) // 2]
    tracer = Tracer()
    metrics = MetricsRegistry()
    router = FleetRouter(network, config, tracer=tracer, metrics=metrics)
    report = router.serve(queries)
    return tracer, metrics, {
        "queries": len(queries),
        "complete": report.complete,
        "degraded": report.degraded,
        "failed": report.failed,
        "shed": report.shed,
        "timed_out": report.timed_out,
        "failovers": report.total_failovers,
        "primary_changes": len(report.primary_changes),
        "rebuilds_completed": report.rebuilds_completed,
        "final_replication": list(report.final_replication),
        "simulated_us": round(report.total_time_us, 3),
    }


_RUNNERS = {
    "propagate": capture_propagate,
    "faults": capture_faults,
    "overload": capture_overload,
    "chaos": capture_chaos,
    "fleetchaos": capture_fleetchaos,
}


def capture(workload: str, smoke: bool = False) -> Dict[str, Any]:
    """Run a workload under tracing; return the validated document.

    The returned Chrome trace document carries the run summary under
    the extra top-level ``"capture"`` key.
    """
    runner = _RUNNERS.get(workload)
    if runner is None:
        raise KeyError(
            f"unknown workload {workload!r}; available: {list(WORKLOADS)}"
        )
    tracer, metrics, info = runner(smoke=smoke)
    document = export_chrome_json(tracer, metrics=metrics)
    document["capture"] = {"workload": workload, "smoke": smoke, **info}
    validate_chrome_trace(document)
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro trace``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="capture a Perfetto trace of a canonical workload",
    )
    parser.add_argument(
        "workload", choices=WORKLOADS,
        help="scenario to capture",
    )
    parser.add_argument(
        "--out", default="trace.json",
        help="output path (default: trace.json); open in ui.perfetto.dev",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI smoke runs",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="also dump the run's MetricsRegistry as standalone JSON "
             "(snapshots can then be diffed without the trace)",
    )
    args = parser.parse_args(argv)
    document = capture(args.workload, smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    if args.metrics_out:
        # The standalone dump carries the capture envelope too, so a
        # metrics file is self-describing (workload, sizes) on its own.
        standalone = {
            "capture": document["capture"],
            "metrics": document["metrics"],
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(standalone, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.metrics_out} (metrics registry dump)")
    events = len(document["traceEvents"])
    for key, value in document["capture"].items():
        print(f"  {key}: {value}")
    print(f"wrote {args.out} ({events} events) — open in ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
