"""Metrics: counters, gauges, and fixed-bucket histograms.

The aggregate half of the observability layer.  Where the tracer
(:mod:`repro.obs.tracer`) answers *when did it happen*, the registry
answers *how often and how much*: monotone counters (hedges issued,
messages per ICN dimension, breaker trips), time-stamped gauge series
(queue depth, replicas busy), and fixed-bucket histograms (served
latency, instruction latency).

All timestamps are simulated microseconds supplied by the caller.
Everything exports to plain dicts (:meth:`MetricsRegistry.as_dict`)
and rides along inside the Chrome trace JSON under the top-level
``"metrics"`` key, so one artifact carries both views of a run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


#: Default histogram bucket upper bounds, in simulated µs.  Chosen to
#: straddle the serving layer's typical latencies (hundreds of µs to
#: tens of ms); the final implicit bucket is +inf.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0, 100_000.0,
)


class Counter:
    """A monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A sampled value series over simulated time.

    By default keeps every ``(ts, value)`` sample (runs are bounded,
    and the series *is* the product — queue depth over time is exactly
    what post-hoc totals could not show).  Long-running workloads can
    bound retention with ``max_points``: when the series fills, it is
    compacted in place to every second retained sample and the record
    stride doubles, so memory stays within the cap while the retained
    points remain evenly spaced over the whole run.  ``last`` and
    ``peak`` are tracked as exact scalars over *all* observations —
    downsampling never changes them.
    """

    __slots__ = (
        "name", "samples", "max_points",
        "_stride", "_count", "_last", "_peak",
    )

    def __init__(self, name: str, max_points: Optional[int] = None) -> None:
        if max_points is not None and max_points < 2:
            raise ValueError(
                f"gauge max_points must be >= 2: {max_points}"
            )
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self.max_points = max_points
        self._stride = 1
        self._count = 0
        self._last = 0.0
        self._peak: Optional[float] = None

    def set(self, ts: float, value: float) -> None:
        """Record the gauge's value at simulated time ``ts``."""
        self._count += 1
        self._last = value
        if self._peak is None or value > self._peak:
            self._peak = value
        if (self._count - 1) % self._stride:
            return
        self.samples.append((ts, value))
        if self.max_points is not None and len(self.samples) > self.max_points:
            # Keep even indices: exactly the observations at the
            # doubled stride, so future appends stay evenly spaced.
            del self.samples[1::2]
            self._stride *= 2

    @property
    def observations(self) -> int:
        """Total ``set`` calls, including downsampled-away ones."""
        return self._count

    @property
    def last(self) -> float:
        """Most recent observed value (0.0 when never set)."""
        return self._last if self._count else 0.0

    @property
    def peak(self) -> float:
        """Largest observed value (0.0 when never set)."""
        return self._peak if self._peak is not None else 0.0


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus +inf)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> None:
        ordered = tuple(bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"bucket bounds must increase: {ordered}")
        self.name = name
        self.bounds = ordered
        #: One count per bound, plus the trailing +inf bucket.
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Add one observation to its bucket."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation within the fixed buckets (the
        ``histogram_quantile`` convention): the target rank is located
        in its bucket's cumulative count and positioned proportionally
        between the bucket's bounds.  The first bucket interpolates
        from 0; the +inf overflow bucket cannot be interpolated and
        clamps to the last finite bound.  Returns 0.0 when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if self.total == 0:
            return 0.0
        rank = q / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = self.bounds[index]
                return low + (high - low) * (rank - cumulative) / count
            cumulative += count
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling
    twice with the same name returns the same instrument, so producers
    (the host layer, the machine layer) need no shared setup.
    """

    def __init__(self, gauge_max_points: Optional[int] = None) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Default retention cap applied to gauges created without an
        #: explicit ``max_points`` (None = keep every sample).
        self._gauge_max_points = gauge_max_points

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, max_points: Optional[int] = None) -> Gauge:
        """The gauge called ``name`` (created on first use).

        ``max_points`` applies only on creation (falling back to the
        registry-wide default); a later call with a *different*
        explicit cap raises rather than silently re-bounding.
        """
        instrument = self._gauges.get(name)
        if instrument is None:
            cap = (
                max_points if max_points is not None
                else self._gauge_max_points
            )
            instrument = self._gauges[name] = Gauge(name, cap)
        elif max_points is not None and max_points != instrument.max_points:
            raise ValueError(
                f"gauge {name!r} already exists with max_points "
                f"{instrument.max_points}, requested {max_points}"
            )
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` applies only on creation; a later call with
        different bounds raises rather than silently re-bucketing.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None
                else DEFAULT_LATENCY_BUCKETS_US
            )
        elif bounds is not None and tuple(bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{instrument.bounds}, requested {tuple(bounds)}"
            )
        return instrument

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump of every instrument.

        Gauge series are emitted in full (the time series is the
        point); counters as plain numbers; histograms with bounds and
        per-bucket counts.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "samples": [[ts, value] for ts, value in g.samples],
                    "last": g.last,
                    "peak": g.peak,
                }
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
        }

    def summary(self) -> Dict[str, Any]:
        """Headline view: counter totals + gauge peaks + histogram means."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauge_peaks": {
                name: g.peak for name, g in sorted(self._gauges.items())
            },
            "histogram_means": {
                name: round(h.mean, 3)
                for name, h in sorted(self._histograms.items())
            },
        }
