"""`repro.obs` — unified tracing + metrics for the whole stack.

The paper's §II-B "integrated measurement system" reported end-of-run
aggregates; this package adds the *timeline*: simulated-time-native
spans, instants, counters (:mod:`.tracer`), aggregate metric
instruments (:mod:`.metrics`), and a Chrome-trace-event/Perfetto
exporter (:mod:`.chrome`) so a full PROPAGATE wave or an overloaded
serving run opens directly in ``ui.perfetto.dev``.

Instrumented layers (all default to the zero-overhead
:data:`NULL_TRACER` — see ``docs/OBSERVABILITY.md`` for the overhead
contract and the metric catalogue):

* the DES kernel (:meth:`repro.machine.des.Simulator.run_traced`):
  heap occupancy and pending-event sampling;
* the machine simulator: per-instruction phase spans, per-cluster
  decode/MU/CU activity, ICN message traffic, fault injection and
  recovery events;
* the serving host: one span tree per query (admission → attempts →
  hedges → outcome), queue-depth and replica-occupancy series,
  breaker transitions.

Live monitoring lives in :mod:`.live`: a telemetry-event sink the
host and fleet layers stream into, windowed aggregation, burn-rate
SLO alerting, and ground-truth detection scoring over the injected
fault schedules (``python -m repro monitor <workload>``).

Wall-clock performance observability lives in :mod:`.perf`: a
background-thread sampling profiler with flamegraph export
(``python -m repro perf profile <lane>``), the ``BENCH_HISTORY.jsonl``
trajectory, and the statistical bench-regression gate
(``python -m repro perf check``).

Capture entry points: ``python -m repro trace <workload>``
(:mod:`.capture`), the ``--trace PATH`` flags on ``serve`` and
``experiments``, or programmatically::

    from repro.obs import Tracer, MetricsRegistry
    tracer, metrics = Tracer(), MetricsRegistry()
    report = ServingHost(net, cfg, tracer=tracer, metrics=metrics).serve(qs)
    tracer.to_chrome_json(metrics)   # -> dict for ui.perfetto.dev
"""

from .chrome import export_chrome_json, write_chrome_json
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
)
from .live import TelemetryEvent, TelemetrySink
from .perf import Profile, SamplingProfiler
from .validate import (
    TraceValidationError,
    metrics_errors,
    validate_chrome_trace,
    validation_errors,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_US",
    "export_chrome_json",
    "write_chrome_json",
    "validate_chrome_trace",
    "validation_errors",
    "metrics_errors",
    "TraceValidationError",
    "TelemetrySink",
    "TelemetryEvent",
    "SamplingProfiler",
    "Profile",
]
