"""Low-overhead wall-clock sampling profiler.

Everything else in :mod:`repro.obs` observes *simulated* time; this
module observes the **host clock** — where the real seconds go while
the simulator runs.  A background thread wakes at a configurable rate
and snapshots the target thread's Python stack via
``sys._current_frames()`` (no ``sys.setprofile`` hooks, no signals:
the workload executes unmodified, and overhead is bounded by the
sampling rate rather than by the event rate of the profiled code).

Three consumers of one sample table:

* **Folded stacks** (:meth:`Profile.folded`): the
  ``root;child;leaf count`` format every flamegraph renderer accepts
  (``flamegraph.pl``, speedscope, ``inferno``).
* **Hot-spot report** (:meth:`Profile.report`): top frames by
  inclusive/exclusive samples plus a module-level rollup into
  subsystem buckets (``repro.core.backends``, ``repro.machine``,
  ``repro.host``, …) so "which layer burns the wall" needs no
  renderer.  The report *structure* is deterministic — sections,
  columns, sort order — while the counts are measurements.
* **Wall-vs-simulated join** (:func:`wall_simulated_join`): when a
  simulated-time trace was captured on the same run, attribute real
  seconds to pipeline phases by matching phase names against sampled
  frames — e.g. how much wall the vectorized backend's remaining
  scalar fallbacks cost inside a PROPAGATE that is "cheap" in
  simulated time.

Sampling honesty: the sampler sees only the frames the GIL lets it
see, at the cadence the host scheduler grants.  Counts are estimates;
ratios between frames on the same profile are the signal.
"""

from __future__ import annotations

import re
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default sampling rate (samples/second).  A prime-ish off-round rate
#: avoids lockstep with periodic work in the profiled code.
DEFAULT_HZ = 197.0

#: Stacks deeper than this are truncated at the root end (the leaf —
#: where the time is spent — is always kept).
MAX_STACK_DEPTH = 128

#: Subsystem buckets for the module rollup, longest prefix wins.
#: ``repro.core.backends`` is split out from ``repro.core`` (and
#: ``repro.machine.des`` from ``repro.machine``) because those two
#: modules are the hot kernels the bench lanes exist to watch.
BUCKET_PREFIXES = (
    "repro.core.backends",
    "repro.core",
    "repro.machine.des",
    "repro.machine",
    "repro.host",
    "repro.fleet",
    "repro.obs",
    "repro.network",
    "repro.isa",
    "repro.experiments",
    "repro.apps",
    "repro.baselines",
    "repro",
)

#: Non-repro top-level packages worth naming in the rollup (numpy is
#: where vectorized-kernel time should land); everything else is
#: ``other``.
NAMED_FOREIGN_BUCKETS = ("numpy",)


def module_of(filename: str) -> str:
    """Dotted module path for a frame's source file.

    Files under a ``repro`` package root map to ``repro.x.y``;
    site-packages files map to their package path; anything else
    (stdlib, scripts) maps to its basename.
    """
    parts = [p for p in filename.replace("\\", "/").split("/") if p]
    anchor = None
    for marker in ("site-packages", "dist-packages"):
        if marker in parts:
            anchor = parts.index(marker) + 1
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    if anchor is None or anchor >= len(parts):
        tail = [parts[-1]] if parts else ["<unknown>"]
    else:
        tail = parts[anchor:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__" and len(tail) > 1:
        tail = tail[:-1]
    return ".".join(tail)


def frame_label(filename: str, function: str) -> str:
    """Canonical ``module:function`` label for one stack frame."""
    return f"{module_of(filename)}:{function}"


def bucket_of(label: str) -> str:
    """Subsystem bucket for a frame label (longest matching prefix)."""
    module = label.split(":", 1)[0]
    for prefix in BUCKET_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    top = module.split(".", 1)[0]
    if top in NAMED_FOREIGN_BUCKETS:
        return top
    return "other"


@dataclass
class Profile:
    """The result of one sampling run: a stack → sample-count table."""

    #: ``{(root_label, ..., leaf_label): samples}``.
    samples: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    sample_count: int = 0
    duration_s: float = 0.0
    hz: float = DEFAULT_HZ

    @property
    def effective_hz(self) -> float:
        """Achieved sampling rate (scheduler pressure lowers it)."""
        if self.duration_s <= 0:
            return 0.0
        return self.sample_count / self.duration_s

    @property
    def seconds_per_sample(self) -> float:
        """Wall seconds one sample represents on this profile."""
        if self.sample_count == 0:
            return 0.0
        return self.duration_s / self.sample_count

    # -- folded stacks --------------------------------------------------
    def folded(self) -> str:
        """Flamegraph-compatible folded stacks, sorted for determinism.

        One line per distinct stack: ``root;child;leaf count``.  Empty
        profiles fold to the empty string.
        """
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- frame tables ---------------------------------------------------
    def exclusive_counts(self) -> Dict[str, int]:
        """Samples whose *leaf* is each frame (self time)."""
        counts: Dict[str, int] = {}
        for stack, count in self.samples.items():
            counts[stack[-1]] = counts.get(stack[-1], 0) + count
        return counts

    def inclusive_counts(self) -> Dict[str, int]:
        """Samples with each frame *anywhere* on the stack.

        Recursive frames count once per sample, so no frame can exceed
        ``sample_count``.
        """
        counts: Dict[str, int] = {}
        for stack, count in self.samples.items():
            for label in set(stack):
                counts[label] = counts.get(label, 0) + count
        return counts

    def hot_frames(
        self, top: int = 15
    ) -> List[Dict[str, Any]]:
        """Top frames by inclusive samples, with exclusive alongside."""
        inclusive = self.inclusive_counts()
        exclusive = self.exclusive_counts()
        ranked = sorted(
            inclusive.items(), key=lambda item: (-item[1], item[0])
        )[:top]
        return [
            {
                "frame": label,
                "inclusive": count,
                "exclusive": exclusive.get(label, 0),
                "inclusive_share": (
                    count / self.sample_count if self.sample_count else 0.0
                ),
            }
            for label, count in ranked
        ]

    def bucket_rollup(self) -> List[Dict[str, Any]]:
        """Module-level rollup into subsystem buckets.

        Exclusive counts attribute each sample to the bucket of its
        leaf frame (where the time is actually spent); inclusive
        counts each sample once per bucket present on the stack.
        Sorted by exclusive samples (desc), then name.
        """
        exclusive: Dict[str, int] = {}
        inclusive: Dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf_bucket = bucket_of(stack[-1])
            exclusive[leaf_bucket] = exclusive.get(leaf_bucket, 0) + count
            for bucket in {bucket_of(label) for label in stack}:
                inclusive[bucket] = inclusive.get(bucket, 0) + count
        return [
            {
                "bucket": bucket,
                "exclusive": exclusive.get(bucket, 0),
                "inclusive": inclusive[bucket],
                "exclusive_share": (
                    exclusive.get(bucket, 0) / self.sample_count
                    if self.sample_count else 0.0
                ),
            }
            for bucket in sorted(
                inclusive,
                key=lambda b: (-exclusive.get(b, 0), -inclusive[b], b),
            )
        ]

    # -- report ---------------------------------------------------------
    def report(
        self,
        label: str = "workload",
        top: int = 15,
        join_rows: Optional[List[Dict[str, Any]]] = None,
    ) -> str:
        """Deterministic-structure markdown hot-spot report."""
        lines = [f"# Wall-clock profile — {label}", ""]
        if self.sample_count == 0:
            lines.append(
                "no samples captured (workload faster than one sampling "
                f"interval at {self.hz:g} hz, or profiler never started)"
            )
            return "\n".join(lines) + "\n"
        lines.append(
            f"- samples: {self.sample_count} over {self.duration_s:.3f} s "
            f"wall (target {self.hz:g} hz, effective "
            f"{self.effective_hz:.0f} hz)"
        )
        lines.append(f"- distinct stacks: {len(self.samples)}")
        lines += ["", "## Subsystem rollup (by exclusive samples)", ""]
        lines.append("| bucket | exclusive | excl % | inclusive |")
        lines.append("|---|---|---|---|")
        for row in self.bucket_rollup():
            lines.append(
                f"| {row['bucket']} | {row['exclusive']} "
                f"| {100.0 * row['exclusive_share']:.1f}% "
                f"| {row['inclusive']} |"
            )
        lines += ["", f"## Hottest frames (top {top} by inclusive)", ""]
        lines.append("| frame | inclusive | incl % | exclusive |")
        lines.append("|---|---|---|---|")
        for row in self.hot_frames(top):
            lines.append(
                f"| {row['frame']} | {row['inclusive']} "
                f"| {100.0 * row['inclusive_share']:.1f}% "
                f"| {row['exclusive']} |"
            )
        if join_rows is not None:
            lines += ["", "## Wall vs simulated time (phase join)", ""]
            if not join_rows:
                lines.append(
                    "no simulated-time phase spans captured on this run"
                )
            else:
                lines.append(
                    "| phase | simulated us | sim % | wall s | wall % |"
                )
                lines.append("|---|---|---|---|---|")
                for row in join_rows:
                    lines.append(
                        f"| {row['phase']} | {row['simulated_us']:.0f} "
                        f"| {100.0 * row['simulated_share']:.1f}% "
                        f"| {row['wall_s']:.4f} "
                        f"| {100.0 * row['wall_share']:.1f}% |"
                    )
        return "\n".join(lines) + "\n"

    def as_dict(
        self, top: int = 15, join_rows: Optional[List[Dict[str, Any]]] = None
    ) -> Dict[str, Any]:
        """JSON-ready view: summary, rollup, hot frames, optional join."""
        record: Dict[str, Any] = {
            "kind": "repro-perf-profile",
            "sample_count": self.sample_count,
            "duration_s": self.duration_s,
            "hz": self.hz,
            "effective_hz": self.effective_hz,
            "distinct_stacks": len(self.samples),
            "buckets": self.bucket_rollup(),
            "hot_frames": self.hot_frames(top),
        }
        if join_rows is not None:
            record["phase_join"] = join_rows
        return record


class SamplingProfiler:
    """Background-thread stack sampler for the calling thread.

    ``start()`` records the caller as the target and launches the
    sampler thread; ``stop()`` joins it and returns the
    :class:`Profile`.  Both are idempotent: a second ``start()`` while
    running is a no-op, ``stop()`` without a running sampler returns
    the profile collected so far (empty if never started).  Usable as
    a context manager::

        profiler = SamplingProfiler(hz=200)
        with profiler:
            run_workload()
        print(profiler.profile().folded())
    """

    def __init__(self, hz: float = DEFAULT_HZ):
        if not hz > 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._samples: Dict[Tuple[str, ...], int] = {}
        self._sample_count = 0
        self._duration_s = 0.0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_ident: Optional[int] = None
        self._started_at = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread.  No-op when running."""
        if self._thread is not None:
            return self
        self._target_ident = threading.get_ident()
        self._stop_event.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-perf-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling and return the profile.  Safe to call twice."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
            self._duration_s += time.perf_counter() - self._started_at
        return self.profile()

    def profile(self) -> Profile:
        """The samples collected so far (live while running)."""
        duration = self._duration_s
        if self._thread is not None:
            duration += time.perf_counter() - self._started_at
        return Profile(
            samples=dict(self._samples),
            sample_count=self._sample_count,
            duration_s=duration,
            hz=self.hz,
        )

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampler thread -------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop_event.wait(self._interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                code = frame.f_code
                stack.append(frame_label(code.co_filename, code.co_name))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            key = tuple(stack)
            self._samples[key] = self._samples.get(key, 0) + 1
            self._sample_count += 1


# ----------------------------------------------------------------------
# Wall-vs-simulated phase join
# ----------------------------------------------------------------------
_INSTANCE_SUFFIX = re.compile(r"\s*#\d+$")
_NORMALIZE = re.compile(r"[^a-z0-9]+")


def normalize_phase(name: str) -> str:
    """Canonical token for matching phase names against frame labels.

    Strips per-instance suffixes (``PROPAGATE #3`` → ``propagate``)
    and everything non-alphanumeric.
    """
    return _NORMALIZE.sub("", _INSTANCE_SUFFIX.sub("", name).lower())


def phase_durations_us(model: Any) -> Dict[str, float]:
    """Total simulated microseconds per span name over a trace model.

    ``model`` is an :class:`repro.obs.analyze.TraceModel`.  Span names
    are normalized only for instance suffixes (``#N``), so every
    PROPAGATE instruction rolls into one ``PROPAGATE`` phase while
    ``broadcast``/``deliver``-style phase spans keep their names.
    """
    totals: Dict[str, float] = {}
    for track in model.tracks:
        for span in track.all_spans():
            name = _INSTANCE_SUFFIX.sub("", span.name)
            totals[name] = totals.get(name, 0.0) + span.duration_us
    return {name: us for name, us in totals.items() if us > 0.0}


def wall_simulated_join(
    profile: Profile,
    phase_us: Mapping[str, float],
    top: int = 12,
) -> List[Dict[str, Any]]:
    """Attribute wall seconds to simulated-time phases.

    For each phase (by simulated duration, descending), wall time is
    the inclusive sample share of frames whose label contains the
    normalized phase token — e.g. phase ``PROPAGATE`` claims samples
    inside ``repro.core.backends:propagate`` and the scalar-fallback
    helpers under it.  Phases with no matching frames report zero
    wall: simulated-expensive but wall-cheap (the vectorized-backend
    success mode).  Per-instance names (``PROPAGATE #3``) merge into
    one phase.  Deterministic given the profile and phase table.
    """
    merged: Dict[str, float] = {}
    for name, us in phase_us.items():
        key = _INSTANCE_SUFFIX.sub("", name)
        merged[key] = merged.get(key, 0.0) + float(us)
    phase_us = merged
    total_sim = sum(phase_us.values())
    if total_sim <= 0:
        return []
    inclusive = profile.inclusive_counts()
    normalized = [
        (label, normalize_phase(label.split(":", 1)[-1]), count)
        for label, count in inclusive.items()
    ]
    rows: List[Dict[str, Any]] = []
    ranked = sorted(phase_us.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    for phase, us in ranked:
        token = normalize_phase(phase)
        matched = (
            sum(
                count for _, frame_token, count in normalized
                if token and token in frame_token
            )
            if token else 0
        )
        matched = min(matched, profile.sample_count)
        rows.append(
            {
                "phase": phase,
                "simulated_us": us,
                "simulated_share": us / total_sim,
                "wall_s": matched * profile.seconds_per_sample,
                "wall_share": (
                    matched / profile.sample_count
                    if profile.sample_count else 0.0
                ),
            }
        )
    return rows
