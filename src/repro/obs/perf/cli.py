"""``python -m repro perf`` — profile lanes, gate on bench history.

Two subcommands:

``profile WORKLOAD``
    Run one bench lane under the sampling profiler.  Emits folded
    stacks (``--folded-out``, flamegraph-compatible), the hot-spot
    report (``--report``, stdout by default), and/or the structured
    record (``--json``).  ``--trace-join`` additionally captures a
    simulated-time trace on the same run and joins real seconds onto
    pipeline phases (DES lanes; engine lanes report an empty join).

``check``
    Read ``BENCH_HISTORY.jsonl`` and classify the newest record of
    every lane against its trailing window (median baseline, MAD or
    bootstrap band — see :mod:`.history`).  Exits 1 on any
    ``regression`` verdict; everything else (noise, improvement,
    insufficient history, unreliable) exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .history import (
    DEFAULT_HISTORY,
    DEFAULT_MIN_WINDOW,
    DEFAULT_REL_FLOOR,
    DEFAULT_WINDOW,
    check_history,
    load_history,
)
from .profiler import (
    DEFAULT_HZ,
    SamplingProfiler,
    phase_durations_us,
    wall_simulated_join,
)


def _profile_workload(args) -> int:
    from ...bench import _RUNNERS, BackendDivergenceError

    runner = _RUNNERS[args.workload]
    tracer = None
    if args.trace_join:
        from .. import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
    profiler = SamplingProfiler(hz=args.hz)
    profiler.start()
    try:
        lane = runner(smoke=args.smoke, backend=args.backend)
    except BackendDivergenceError as exc:
        print(f"perf profile: {exc}", file=sys.stderr)
        return 1
    finally:
        profile = profiler.stop()
        if tracer is not None:
            from .. import set_tracer

            set_tracer(None)

    join_rows: Optional[List[Dict[str, Any]]] = None
    if tracer is not None:
        from ..analyze import from_tracer

        join_rows = wall_simulated_join(
            profile, phase_durations_us(from_tracer(tracer))
        )

    label = args.workload + (" --smoke" if args.smoke else "")
    report = profile.report(label=label, top=args.top, join_rows=join_rows)
    if profile.sample_count == 0:
        print(
            "perf profile: no samples captured — raise --hz or profile "
            "a longer (non-smoke) run", file=sys.stderr,
        )
    if args.folded_out:
        with open(args.folded_out, "w") as handle:
            handle.write(profile.folded())
        print(f"wrote {args.folded_out} ({len(profile.samples)} stacks)")
    if args.json:
        record = profile.as_dict(top=args.top, join_rows=join_rows)
        record["workload"] = args.workload
        record["smoke"] = args.smoke
        record["backend"] = args.backend
        record["lane"] = {
            key: value for key, value in lane.items()
            if isinstance(value, (int, float, str, bool)) or value is None
        }
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report)
        print(f"wrote {args.report} ({profile.sample_count} samples)")
    else:
        print(report, end="")
    return 0


def _check_history(args) -> int:
    try:
        records = load_history(args.history)
    except FileNotFoundError:
        print(
            f"perf check: no history at {args.history!r} "
            "(run `python -m repro bench` to start one)",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"perf check: {exc}", file=sys.stderr)
        return 2
    ok, checks = check_history(
        records, window=args.window, min_window=args.min_window,
        rel_floor=args.rel_floor, band=args.band,
    )
    if not checks:
        print(f"perf check: history {args.history!r} holds no lane records")
    for check in checks:
        prefix = "REGRESSION " if check.gating else ""
        print(prefix + check.describe())
    if args.json:
        document = {
            "kind": "repro-perf-check",
            "history": args.history,
            "ok": ok,
            "lanes": [
                {
                    "lane": check.lane,
                    "verdict": check.verdict,
                    "newest_rate": check.newest_rate,
                    "baseline_rate": check.baseline_rate,
                    "change": check.change,
                    "allowed": check.allowed,
                    "window": check.window,
                    "detail": check.detail,
                }
                for check in checks
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    print("perf check: " + ("ok" if ok else "regression detected"))
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from ...bench import BACKEND_CHOICES, WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "profile", help="sample a bench lane's wall-clock stacks"
    )
    p.add_argument("workload", choices=WORKLOADS,
                   help="bench lane to run under the profiler")
    p.add_argument("--smoke", action="store_true",
                   help="small lane sizes (shorter profile)")
    p.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                   help="propagation backend for engine lanes")
    p.add_argument("--hz", type=float, default=DEFAULT_HZ,
                   help=f"sampling rate (default {DEFAULT_HZ:g})")
    p.add_argument("--top", type=int, default=15,
                   help="frames in the hot-frame table (default 15)")
    p.add_argument("--folded-out", metavar="PATH",
                   help="write flamegraph-compatible folded stacks")
    p.add_argument("--report", metavar="PATH",
                   help="write the hot-spot report here (default: stdout)")
    p.add_argument("--json", metavar="PATH",
                   help="write the structured profile record")
    p.add_argument("--trace-join", action="store_true",
                   help="capture a simulated-time trace on the same run "
                        "and join wall seconds onto pipeline phases")
    p.set_defaults(fn=_profile_workload)

    p = sub.add_parser(
        "check", help="gate on the bench-history trajectory"
    )
    p.add_argument("--history", default=DEFAULT_HISTORY,
                   help=f"history path (default {DEFAULT_HISTORY})")
    p.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                   help="trailing records per lane to compare against "
                        f"(default {DEFAULT_WINDOW})")
    p.add_argument("--min-window", type=int, default=DEFAULT_MIN_WINDOW,
                   help="comparable records required before a verdict "
                        f"(default {DEFAULT_MIN_WINDOW})")
    p.add_argument("--rel-floor", type=float, default=DEFAULT_REL_FLOOR,
                   help="relative band floor around the baseline "
                        f"(default {DEFAULT_REL_FLOOR:g})")
    p.add_argument("--band", choices=("mad", "bootstrap"), default="mad",
                   help="window-spread estimator (default mad)")
    p.add_argument("--json", metavar="PATH",
                   help="write the check verdicts as JSON")
    p.set_defaults(fn=_check_history)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
