"""`repro.obs.perf` — wall-clock performance observatory.

The rest of :mod:`repro.obs` watches *simulated* time; this package
watches the **host clock**, the quantity the ROADMAP's "as fast as
the hardware allows" north star is denominated in:

* :mod:`.profiler` — a background-thread sampling profiler (no
  ``sys.setprofile``, no signals) producing folded flamegraph stacks,
  a deterministic hot-spot report with subsystem bucket rollups, and
  a wall-vs-simulated join that attributes real seconds to pipeline
  phases when a trace is captured on the same run.
* :mod:`.history` — ``BENCH_HISTORY.jsonl`` (one line per bench lane
  per run, with per-run walls and an environment fingerprint) and a
  robust median/MAD/bootstrap regression detector over the trailing
  window.
* :mod:`.cli` — ``python -m repro perf profile <lane>`` and
  ``python -m repro perf check`` (exits 1 on a significant
  regression; the CI gate).
"""

from .history import (
    DEFAULT_HISTORY,
    HISTORY_KIND,
    LaneCheck,
    append_history,
    check_history,
    check_lane,
    environment_fingerprint,
    load_history,
    record_rate,
    records_from_bench,
)
from .profiler import (
    BUCKET_PREFIXES,
    DEFAULT_HZ,
    Profile,
    SamplingProfiler,
    bucket_of,
    frame_label,
    module_of,
    phase_durations_us,
    wall_simulated_join,
)

__all__ = [
    "BUCKET_PREFIXES",
    "DEFAULT_HISTORY",
    "DEFAULT_HZ",
    "HISTORY_KIND",
    "LaneCheck",
    "Profile",
    "SamplingProfiler",
    "append_history",
    "bucket_of",
    "check_history",
    "check_lane",
    "environment_fingerprint",
    "frame_label",
    "load_history",
    "module_of",
    "phase_durations_us",
    "record_rate",
    "records_from_bench",
    "wall_simulated_join",
]
