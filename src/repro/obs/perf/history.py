"""Bench-history persistence and statistical regression detection.

``BENCH_PERF.json`` is a single overwritten snapshot; this module
gives the bench a *trajectory*: every ``python -m repro bench`` run
appends one JSON line per lane to ``BENCH_HISTORY.jsonl`` —

::

    {"kind": "repro-bench-history", "lane": "propagate",
     "events": 55220, "events_per_sec": 119463.4,
     "wall_runs": [...], "wall_median_s": ..., "unreliable": false,
     "smoke": false, "backend": null,
     "environment": {"python": "3.11.7", "cpu_count": 8,
                     "git_sha": "...", ...}}

— and :func:`check_history` turns the trajectory into a gate.

**Detection model.**  Per lane, the newest record is compared against
the trailing window of comparable records (same ``smoke``/``backend``
shape, ``unreliable`` rows excluded).  A record's rate is the
*median-of-runs* rate (events per run over the median per-run wall)
when per-run walls are present, falling back to aggregate
``events_per_sec``.  The baseline is the window median; the allowed
band is the wider of a relative floor (machine-to-machine jitter that
no amount of statistics removes) and a spread estimate from the
window itself — ``mad``: 3 × the MAD-derived robust sigma
(1.4826 · MAD), or ``bootstrap``: a seeded bootstrap of window
medians (order-invariant: resampling runs over the *sorted* rates).
Outside the band below → ``regression``; above → ``improvement``;
inside → ``noise``.  Both estimators are order-invariant, so
permuting the window never changes a verdict — pinned by a property
test.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Default history path (repo-root trajectory file, like BENCH_PERF).
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

#: Document marker on every history line.
HISTORY_KIND = "repro-bench-history"

#: Trailing-window size the checker compares the newest record against.
DEFAULT_WINDOW = 8

#: Minimum comparable records in the window before a verdict is made.
DEFAULT_MIN_WINDOW = 3

#: Relative band floor: rate moves within ±10% of the baseline are
#: never flagged, however tight the window's own spread is.
DEFAULT_REL_FLOOR = 0.10

#: MAD multiplier (≈3 robust sigmas) for the ``mad`` band.
MAD_K = 3.0

#: 1.4826 · MAD estimates sigma for normally-distributed noise.
MAD_SIGMA_SCALE = 1.4826

#: Bootstrap resamples for the ``bootstrap`` band (seeded, cheap).
BOOTSTRAP_ITERS = 300


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------
def git_sha() -> Optional[str]:
    """Current commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint(
    backend: Optional[str] = None, smoke: Optional[bool] = None
) -> Dict[str, Any]:
    """Where a measurement came from — everything that can move a
    wall-clock rate without a code change."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
        "backend": backend,
        "smoke": smoke,
    }


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------
def records_from_bench(record: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-lane history records from one ``run_bench`` result."""
    environment = dict(
        record.get("environment")
        or environment_fingerprint(
            backend=record.get("backend"), smoke=record.get("smoke")
        )
    )
    rows: List[Dict[str, Any]] = []
    for lane, row in (record.get("workloads") or {}).items():
        entry: Dict[str, Any] = {
            "kind": HISTORY_KIND,
            "lane": lane,
            "recorded_at": time.time(),
            "events": row.get("events"),
            "runs": row.get("runs"),
            "events_per_sec": row.get("events_per_sec"),
            "wall_s": row.get("wall_s"),
            "unreliable": bool(row.get("unreliable")),
            "smoke": bool(record.get("smoke")),
            "backend": record.get("backend"),
            "environment": environment,
        }
        for key in ("wall_runs", "wall_min_s", "wall_median_s",
                    "wall_stdev_s", "speedup"):
            if key in row:
                entry[key] = row[key]
        rows.append(entry)
    return rows


def append_history(
    record: Mapping[str, Any], path: str = DEFAULT_HISTORY
) -> int:
    """Append one line per lane of a bench record; returns the count."""
    rows = records_from_bench(record)
    if rows:
        with open(path, "a") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def load_history(path: str = DEFAULT_HISTORY) -> List[Dict[str, Any]]:
    """Chronological history records (other document kinds skipped)."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed history line: {exc}"
                ) from exc
            if (
                isinstance(document, dict)
                and document.get("kind") == HISTORY_KIND
            ):
                records.append(document)
    return records


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------
def record_rate(record: Mapping[str, Any]) -> float:
    """Robust rate for one record: median-of-runs when available.

    ``events / runs`` over the median per-run wall shrugs off a single
    slow run (GC pause, noisy neighbour) that would skew the aggregate
    ``events_per_sec``.
    """
    walls = record.get("wall_runs") or []
    events = record.get("events")
    if walls and events:
        median_wall = statistics.median(walls)
        if median_wall > 0:
            return (float(events) / len(walls)) / median_wall
    return float(record.get("events_per_sec") or 0.0)


def _mad_band(rates: List[float]) -> float:
    baseline = statistics.median(rates)
    mad = statistics.median(abs(rate - baseline) for rate in rates)
    return MAD_K * MAD_SIGMA_SCALE * mad


def _bootstrap_band(rates: List[float]) -> float:
    """Half-width of a ~95% bootstrap interval of the window median.

    Resampling indexes the *sorted* rates with a fixed seed, so the
    band is a pure function of the multiset of rates — permuting the
    window cannot change it.
    """
    ordered = sorted(rates)
    rng = Random(0)
    n = len(ordered)
    medians = sorted(
        statistics.median(ordered[rng.randrange(n)] for _ in range(n))
        for _ in range(BOOTSTRAP_ITERS)
    )
    lo = medians[int(0.025 * (BOOTSTRAP_ITERS - 1))]
    hi = medians[int(0.975 * (BOOTSTRAP_ITERS - 1))]
    baseline = statistics.median(ordered)
    return max(baseline - lo, hi - baseline)


@dataclass
class LaneCheck:
    """Verdict for one lane's newest record vs its trailing window."""

    lane: str
    #: "regression" | "improvement" | "noise" | "insufficient-history"
    #: | "unreliable"
    verdict: str
    newest_rate: Optional[float] = None
    baseline_rate: Optional[float] = None
    #: Relative change of the newest rate vs the baseline (signed).
    change: Optional[float] = None
    #: Allowed relative band around the baseline.
    allowed: Optional[float] = None
    window: int = 0
    detail: str = ""

    @property
    def gating(self) -> bool:
        return self.verdict == "regression"

    def describe(self) -> str:
        head = f"{self.lane}: {self.verdict}"
        if self.baseline_rate is None or self.newest_rate is None:
            return f"{head} ({self.detail})" if self.detail else head
        return (
            f"{head} — newest {self.newest_rate:,.0f} ev/s vs baseline "
            f"{self.baseline_rate:,.0f} ev/s "
            f"({100.0 * (self.change or 0.0):+.1f}%, allowed "
            f"±{100.0 * (self.allowed or 0.0):.1f}%, "
            f"window {self.window})"
        )


def _comparable(record: Mapping[str, Any], newest: Mapping[str, Any]) -> bool:
    """Window membership: the same lane shape as the newest record."""
    return (
        bool(record.get("smoke")) == bool(newest.get("smoke"))
        and record.get("backend") == newest.get("backend")
    )


def check_lane(
    records: List[Mapping[str, Any]],
    window: int = DEFAULT_WINDOW,
    min_window: int = DEFAULT_MIN_WINDOW,
    rel_floor: float = DEFAULT_REL_FLOOR,
    band: str = "mad",
) -> LaneCheck:
    """Classify the newest record of one lane's chronological history."""
    if band not in ("mad", "bootstrap"):
        raise ValueError(f"unknown band estimator {band!r}")
    if not records:
        raise ValueError("check_lane needs at least one record")
    lane = str(records[-1].get("lane"))
    newest = records[-1]
    if newest.get("unreliable"):
        return LaneCheck(
            lane, "unreliable",
            detail="newest record is flagged unreliable; not gated",
        )
    trailing = [
        record for record in records[:-1]
        if not record.get("unreliable") and _comparable(record, newest)
    ][-window:]
    if len(trailing) < min_window:
        return LaneCheck(
            lane, "insufficient-history", window=len(trailing),
            detail=(
                f"{len(trailing)} comparable record(s) in window, "
                f"need {min_window}"
            ),
        )
    rates = [record_rate(record) for record in trailing]
    baseline = statistics.median(rates)
    newest_rate = record_rate(newest)
    if baseline <= 0:
        return LaneCheck(
            lane, "insufficient-history", window=len(trailing),
            detail="baseline rate is zero",
        )
    spread = (
        _bootstrap_band(rates) if band == "bootstrap" else _mad_band(rates)
    )
    allowed_abs = max(rel_floor * baseline, spread)
    delta = newest_rate - baseline
    if delta < -allowed_abs:
        verdict = "regression"
    elif delta > allowed_abs:
        verdict = "improvement"
    else:
        verdict = "noise"
    return LaneCheck(
        lane, verdict,
        newest_rate=newest_rate,
        baseline_rate=baseline,
        change=delta / baseline,
        allowed=allowed_abs / baseline,
        window=len(trailing),
    )


def check_history(
    records: Iterable[Mapping[str, Any]],
    window: int = DEFAULT_WINDOW,
    min_window: int = DEFAULT_MIN_WINDOW,
    rel_floor: float = DEFAULT_REL_FLOOR,
    band: str = "mad",
) -> Tuple[bool, List[LaneCheck]]:
    """Check every lane in a history; ok iff no lane regressed."""
    by_lane: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        by_lane.setdefault(str(record.get("lane")), []).append(record)
    checks = [
        check_lane(
            lane_records, window=window, min_window=min_window,
            rel_floor=rel_floor, band=band,
        )
        for _, lane_records in sorted(by_lane.items())
    ]
    return (not any(check.gating for check in checks), checks)
