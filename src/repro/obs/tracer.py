"""Simulated-time-native tracing: spans, instants, and counters.

The tracer is the event-capture half of the observability layer
(:mod:`repro.obs`).  Every timestamp is **simulated microseconds**
supplied by the caller — the tracer never reads a wall clock — so a
trace is as deterministic as the run that produced it and two traces
of the same seed are byte-identical.

Event model (mirrors the Chrome trace-event format the exporter
targets; see :mod:`repro.obs.chrome`):

*spans*
    A named interval on a track.  Either emitted complete
    (:meth:`Tracer.span`, when begin time and duration are both known)
    or opened with :meth:`Tracer.begin` and closed later with
    :meth:`Tracer.end` — the handle is a plain list, so closing costs
    one item assignment.
*instants*
    A point event on a track (:meth:`Tracer.instant`) — fault
    injections, breaker trips, sheds.
*counters*
    A sampled numeric series on a track (:meth:`Tracer.counter`) —
    queue depth, MU-pool occupancy, heap size.  The value may be a
    number or a dict of named series sharing one timestamp.

A *track* is a ``(process, thread)`` pair interned to a small integer
by :meth:`Tracer.track`; the exporter maps processes and threads to
Perfetto track groups.  Tracks are cheap — the serving host gives
every query its own thread so a query's admission → attempts → hedges
→ outcome renders as one self-contained span tree.

The default tracer everywhere is :data:`NULL_TRACER`, whose
``enabled`` flag is ``False``: instrumented hot paths guard on that
flag (one attribute read) and skip all event construction, which is
how the bench contract (≤5 % overhead with tracing disabled, see
``docs/OBSERVABILITY.md``) is met.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

#: Counter values: one number, or named series sharing a timestamp.
CounterValue = Union[int, float, Dict[str, float]]


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    ``enabled`` is ``False`` so instrumented code can skip event
    construction entirely instead of calling into the no-ops.
    """

    __slots__ = ()
    enabled = False

    def track(self, process: str, thread: str) -> int:
        """Accept and ignore a track registration."""
        return 0

    def span(self, track: int, name: str, ts: float, dur: float,
             **args: Any) -> None:
        """Ignore a complete span."""

    def begin(self, track: int, name: str, ts: float,
              **args: Any) -> Optional[list]:
        """Ignore a span open; the returned handle is ``None``."""
        return None

    def end(self, handle: Optional[list], ts: float, **args: Any) -> None:
        """Ignore a span close."""

    def instant(self, track: int, name: str, ts: float,
                **args: Any) -> None:
        """Ignore an instant event."""

    def counter(self, track: int, name: str, ts: float,
                value: CounterValue) -> None:
        """Ignore a counter sample."""

    def to_chrome_json(self, metrics: Any = None) -> Dict[str, Any]:
        """An empty but valid Chrome trace-event document."""
        return {"traceEvents": []}


#: The process-wide disabled tracer (shared; it holds no state).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects simulated-time events for one run (or one CLI capture).

    Not thread-safe — the simulator is single-threaded.  Events are
    held in flat lists of tuples; nothing is formatted until
    :meth:`to_chrome_json` runs, so capture cost per event is one
    append.
    """

    enabled = True

    def __init__(self) -> None:
        self._track_ids: Dict[Tuple[str, str], int] = {}
        #: ``(process, thread)`` per track id, in registration order.
        self.tracks: List[Tuple[str, str]] = []
        #: Open/closed spans: ``[track, name, begin_ts, end_ts, args]``
        #: (``end_ts`` is ``None`` while the span is open).
        self.spans: List[list] = []
        #: ``(track, name, ts, args)``
        self.instants: List[tuple] = []
        #: ``(track, name, ts, value)``
        self.counters: List[tuple] = []

    # ------------------------------------------------------------------
    def track(self, process: str, thread: str) -> int:
        """Intern a ``(process, thread)`` pair; returns its track id."""
        key = (process, thread)
        track_id = self._track_ids.get(key)
        if track_id is None:
            track_id = len(self.tracks)
            self._track_ids[key] = track_id
            self.tracks.append(key)
        return track_id

    def span(self, track: int, name: str, ts: float, dur: float,
             **args: Any) -> None:
        """Record a complete span (begin time + duration known)."""
        self.spans.append([track, name, ts, ts + dur, args or None])

    def begin(self, track: int, name: str, ts: float, **args: Any) -> list:
        """Open a span; close it by passing the handle to :meth:`end`."""
        handle = [track, name, ts, None, args or None]
        self.spans.append(handle)
        return handle

    def end(self, handle: Optional[list], ts: float, **args: Any) -> None:
        """Close a span opened by :meth:`begin`.

        Extra ``args`` are merged into the span's (shown on the slice
        in Perfetto).  Closing ``None`` or an already-closed handle is
        a no-op, so callers need no liveness bookkeeping.
        """
        if handle is None or handle[3] is not None:
            return
        handle[3] = ts
        if args:
            merged = handle[4] or {}
            merged.update(args)
            handle[4] = merged

    def instant(self, track: int, name: str, ts: float,
                **args: Any) -> None:
        """Record a point event."""
        self.instants.append((track, name, ts, args or None))

    def counter(self, track: int, name: str, ts: float,
                value: CounterValue) -> None:
        """Record one counter sample (number, or dict of series)."""
        self.counters.append((track, name, ts, value))

    # ------------------------------------------------------------------
    def close_open_spans(self, ts: float) -> int:
        """Close every still-open span at ``ts`` (end-of-run sweep).

        Returns the number of spans closed.  Aborted runs (budget
        cut-offs, cancelled attempts) can leave spans open; the
        exporter requires every span to have an end.  Force-closed
        spans are marked with an ``open_at_eof`` arg so a trace
        consumer (:mod:`repro.obs.analyze`) can still tell a clean
        close from an end-of-capture sweep.
        """
        closed = 0
        for handle in self.spans:
            if handle[3] is None:
                handle[3] = max(ts, handle[2])
                merged = handle[4] or {}
                merged["open_at_eof"] = True
                handle[4] = merged
                closed += 1
        return closed

    @property
    def num_events(self) -> int:
        """Total captured events across all kinds."""
        return len(self.spans) + len(self.instants) + len(self.counters)

    def to_chrome_json(self, metrics: Any = None) -> Dict[str, Any]:
        """Export as a Chrome trace-event / Perfetto JSON document.

        Open spans are closed at the latest captured timestamp first.
        ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) is
        embedded under the top-level ``"metrics"`` key when given.
        """
        from .chrome import export_chrome_json

        return export_chrome_json(self, metrics=metrics)


# ----------------------------------------------------------------------
# Process-global tracer (the `--trace` plumbing).
#
# Components default their `tracer=None` constructor argument to the
# global tracer, so `python -m repro experiments --trace out.json` can
# capture a whole experiment sweep without threading a tracer through
# every call site.  The default global tracer is NULL_TRACER.
# ----------------------------------------------------------------------

_GLOBAL_TRACER: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (:data:`NULL_TRACER` unless set)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install (or with ``None``, clear) the process-global tracer."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer if tracer is not None else NULL_TRACER
