"""The alert lifecycle: fire → ack → resolve, with hysteresis.

:class:`AlertManager` consumes the per-window
:class:`~repro.obs.live.slo.RuleEvaluation` stream and maintains one
state machine per rule:

* **fire** — the first breached evaluation while clear opens an
  :class:`Alert` at that window's end time.
* **ack** — the simulated on-call acknowledges a fixed
  ``ack_after_us`` after firing (deterministic stand-in for a human;
  time-to-ack is then measurable without randomness).
* **resolve** — the alert closes only after ``clear_windows``
  *consecutive* clear evaluations (hysteresis: a single good window
  inside an incident doesn't flap the alert closed), at the end time
  of the last clear window in the streak.

A rule re-fires if it breaches again after resolving — each incident
is its own :class:`Alert` record.  Muted rules are still evaluated
(their breaches are visible in the timeline) but never open alerts;
the CI missed-alert gate mutes one rule and asserts the detection
score collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .slo import RuleEvaluation


class AlertState(Enum):
    """Lifecycle states of an alert."""

    FIRING = "firing"
    ACKED = "acked"
    RESOLVED = "resolved"


@dataclass
class Alert:
    """One incident: a rule's fire→ack→resolve episode."""

    rule: str
    severity: str
    fired_at_us: float
    #: Deterministic simulated-on-call acknowledgement time.
    ack_at_us: float
    resolved_at_us: Optional[float] = None
    #: Peak rule value observed while the alert was open.
    peak_value: float = 0.0
    #: Breached evaluations inside the episode.
    breach_count: int = 0

    @property
    def state(self) -> AlertState:
        if self.resolved_at_us is not None:
            return AlertState.RESOLVED
        return AlertState.ACKED

    def duration_us(self) -> Optional[float]:
        """Fire-to-resolve span (None while still open)."""
        if self.resolved_at_us is None:
            return None
        return self.resolved_at_us - self.fired_at_us

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state.value,
            "fired_at_us": self.fired_at_us,
            "ack_at_us": self.ack_at_us,
            "resolved_at_us": self.resolved_at_us,
            "peak_value": round(self.peak_value, 6),
            "breach_count": self.breach_count,
        }


class _RuleTracker:
    """Per-rule incident state machine."""

    __slots__ = ("open_alert", "clear_streak")

    def __init__(self) -> None:
        self.open_alert: Optional[Alert] = None
        self.clear_streak = 0


class AlertManager:
    """Turns rule evaluations into the run's alert history."""

    def __init__(
        self,
        ack_after_us: float = 5_000.0,
        clear_windows: int = 2,
        muted: Iterable[str] = (),
    ) -> None:
        if ack_after_us < 0:
            raise ValueError(f"ack_after_us must be >= 0: {ack_after_us}")
        if clear_windows < 1:
            raise ValueError(
                f"clear_windows must be >= 1: {clear_windows}"
            )
        self.ack_after_us = ack_after_us
        self.clear_windows = clear_windows
        self.muted: Set[str] = set(muted)
        self.alerts: List[Alert] = []
        self._trackers: Dict[str, _RuleTracker] = {}

    def process(
        self, evaluations: Sequence[RuleEvaluation]
    ) -> List[Alert]:
        """Run the lifecycle over an evaluation stream.

        Evaluations must be grouped per rule in time order (the
        :meth:`SLOEngine.evaluate` output is).  Returns the full
        alert history, fired-time ordered; alerts still open at the
        end of the stream keep ``resolved_at_us=None``.
        """
        for ev in evaluations:
            if ev.rule in self.muted:
                continue
            tracker = self._trackers.setdefault(ev.rule, _RuleTracker())
            alert = tracker.open_alert
            if ev.breached:
                tracker.clear_streak = 0
                if alert is None:
                    alert = Alert(
                        rule=ev.rule,
                        severity=ev.severity,
                        fired_at_us=ev.at_us,
                        ack_at_us=ev.at_us + self.ack_after_us,
                        peak_value=ev.value,
                        breach_count=1,
                    )
                    tracker.open_alert = alert
                    self.alerts.append(alert)
                else:
                    alert.breach_count += 1
                    alert.peak_value = max(alert.peak_value, ev.value)
            elif alert is not None:
                tracker.clear_streak += 1
                if tracker.clear_streak >= self.clear_windows:
                    alert.resolved_at_us = ev.at_us
                    tracker.open_alert = None
                    tracker.clear_streak = 0
        self.alerts.sort(key=lambda a: (a.fired_at_us, a.rule))
        return self.alerts

    def open_alerts(self) -> List[Alert]:
        """Alerts not yet resolved at the end of the stream."""
        return [a for a in self.alerts if a.resolved_at_us is None]
