"""The telemetry stream: timestamped events from the serving layers.

A :class:`TelemetrySink` is the fourth observability hook next to
``tracer``/``metrics`` (and the cheapest): producers call
:meth:`TelemetrySink.emit` with a simulated timestamp, an event kind,
and flat keyword fields; the sink appends.  Nothing is scheduled on
the DES, no state is read back, and the default (``sink=None``)
skips every call site behind one ``is not None`` check — attaching a
sink can never change a run's behaviour or report.

Event kinds emitted today (field names in parentheses):

``arrival``
    A query entered the system (``query_id``).
``query``
    A query reached a terminal state (``query_id``, ``status``,
    ``arrival_us``, ``latency_us``, and for shed queries ``reason``).
    Fleet outcomes also carry ``ok`` (answered-with-quorum) and
    ``stale`` (stale legs in the answer).
``leg``
    One shard's slice of a fleet scatter-gather resolved (``shard``,
    ``status`` fresh/stale/shed, ``region`` when dispatched,
    ``service_us``/``miss`` for answered legs).
``health``
    A replica health-lifecycle transition (``replica`` or
    ``shard``+``region``, ``from_state``, ``to_state``, ``reason``).
``breaker``
    A circuit-breaker transition (``replica``, ``from_state``,
    ``to_state``).
``audit``
    One answer-integrity audit (``query_id``, ``replica``, ``ok``).
``fault``
    A fault-layer timeline event reaching the serving layer (region
    events today: ``event`` kind, ``region``, optional ``value``).
    Ground truth for detection scoring does *not* come from these —
    it is exported straight from the schedules
    (:meth:`repro.machine.faults.RegionSchedule.fault_windows`) — but
    they annotate the ops timeline report.

The stream is not guaranteed time-ordered at the sink (lifecycle
trails are replayed post-run); consumers sort by ``(ts_us, seq)``,
which is deterministic because emission order is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One timestamped telemetry record."""

    ts_us: float
    kind: str
    #: Emission sequence number (the deterministic tie-break).
    seq: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        """Field accessor (missing fields return ``default``)."""
        return self.fields.get(name, default)


class TelemetrySink:
    """An append-only collector of :class:`TelemetryEvent` records."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def emit(self, ts_us: float, kind: str, **fields: Any) -> None:
        """Record one event at simulated time ``ts_us``."""
        self.events.append(
            TelemetryEvent(ts_us, kind, len(self.events), fields)
        )

    def __len__(self) -> int:
        return len(self.events)

    def ordered(self) -> List[TelemetryEvent]:
        """Events sorted by ``(ts_us, seq)`` (emission-stable)."""
        return sorted(self.events, key=lambda e: (e.ts_us, e.seq))
