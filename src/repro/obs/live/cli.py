"""`python -m repro monitor` — run the live SLO monitor on a workload.

Replays a canonical workload with a telemetry sink attached (or
ingests an existing trace capture), renders the deterministic ops
timeline report, and optionally:

* ``--json PATH`` — write the flat monitor snapshot (the same
  document shape ``analyze --compare`` consumes);
* ``--compare GOLDEN`` — drift-gate the snapshot against a golden
  (exit 1 on drift);
* ``--check`` — enforce the detection gate (exit 1 when any injected
  fault was missed, detected too slowly, or a warmup alert fired);
* ``--mute RULE[,RULE…]`` — suppress alert rules (the CI
  missed-alert gate mutes a detector and asserts ``--check`` fails).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..analyze.drift import compare_snapshots
from .monitor import (
    MONITOR_WORKLOADS,
    MonitorRun,
    events_from_trace,
    monitor_snapshot,
    run_pipeline,
)
from .report import render_monitor_report


def _parse_mutes(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="live SLO monitoring over a canonical workload",
    )
    parser.add_argument(
        "workload", choices=sorted(MONITOR_WORKLOADS),
        help="workload to replay under the monitor",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="full-size run (default: fast/smoke size)",
    )
    parser.add_argument(
        "--from-trace", metavar="TRACE",
        help="ingest an existing trace capture instead of replaying "
        "(timeline only: trace-fed runs carry no fault ground truth)",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="write the ops timeline report here (default: stdout)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the monitor snapshot (drift-gate document) here",
    )
    parser.add_argument(
        "--compare", metavar="GOLDEN",
        help="compare the snapshot against a golden; exit 1 on drift",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the detection gate passes",
    )
    parser.add_argument(
        "--mute", metavar="RULES",
        help="comma-separated alert rules to mute",
    )
    args = parser.parse_args(argv)
    muted = _parse_mutes(args.mute)

    if args.from_trace:
        with open(args.from_trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        events = events_from_trace(document)
        from .monitor import chaos_spec, fleetchaos_spec

        if args.workload == "fleetchaos":
            spec = fleetchaos_spec()
        else:
            # Window the ingested stream on its own horizon: the
            # trace does not carry the profile's mean service time.
            horizon = max((e.ts_us for e in events), default=0.0)
            spec = chaos_spec(max(horizon / 22.0, 1.0))
        run = run_pipeline(spec, events, truth=(), muted=muted)
    else:
        run = MONITOR_WORKLOADS[args.workload](
            fast=not args.full, muted=muted
        )

    rendered = render_monitor_report(run)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote ops timeline report to {args.report}")
    else:
        print(rendered)

    snapshot = monitor_snapshot(run)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote monitor snapshot to {args.json}")

    exit_code = 0
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        drift = compare_snapshots(snapshot, golden)
        for line in drift.describe():
            print(line)
        if not drift.ok:
            exit_code = 1
    if args.check:
        problems = run.gate_problems()
        if problems:
            for problem in problems:
                print(f"DETECTION GATE: {problem}", file=sys.stderr)
            exit_code = 1
        else:
            print("detection gate: PASS")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
