"""SLO definitions, error budgets, and burn-rate alert rules.

An :class:`SLOSpec` maps each :class:`~repro.obs.live.windows.WindowSnapshot`
to a ``(good, total)`` pair — availability (ok over finished), latency
(answered under a threshold over answered), or freshness (fresh legs
over answered legs).  The error budget is ``1 - objective``.

A :class:`BurnRateRule` is the Google-SRE multi-window multi-burn-rate
shape: at each evaluation point it computes the burn rate — observed
bad fraction divided by the budget — over a *long* trailing span and a
*short* trailing span, and breaches only when **both** meet the
threshold.  The long window gives significance (a blip can't page),
the short window gives reset speed (the alert clears quickly once the
system recovers).  Windows with no eligible traffic never breach: an
empty window is unknown, not bad.

An :class:`EventRule` is a symptom rule over counted lifecycle signals
(quarantines, breaker opens, audit mismatches, ...): it breaches when
the trailing sum reaches a threshold.  Burn rules catch "users are
hurting"; event rules catch "the immune system is reacting" — the
chaos timelines need both, because a hedged/failover rescue can keep
user-visible error rates flat while a replica is dark.

:class:`SLOEngine` owns the specs and rules, produces per-window
:class:`RuleEvaluation` decisions for the alert lifecycle
(:mod:`.alerts`), and whole-run :class:`SLOState` budget accounting.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .windows import WindowSnapshot


class SLOError(ValueError):
    """Raised for invalid SLO or rule configurations."""


_SLO_KINDS = ("availability", "latency", "freshness")
_SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over the telemetry window series."""

    name: str
    #: ``availability`` | ``latency`` | ``freshness``.
    kind: str
    #: Target good fraction, e.g. 0.99 → a 1% error budget.
    objective: float
    #: For ``latency`` SLOs: answered under this bound counts as good.
    latency_threshold_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _SLO_KINDS:
            raise SLOError(f"unknown SLO kind: {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise SLOError(
                f"objective must be in (0, 1): {self.objective}"
            )
        if self.kind == "latency" and not self.latency_threshold_us:
            raise SLOError("latency SLO needs latency_threshold_us")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction."""
        return 1.0 - self.objective

    def good_total(self, window: WindowSnapshot) -> Tuple[int, int]:
        """``(good, total)`` events of this SLO in one window."""
        if self.kind == "availability":
            return window.ok, window.finished
        if self.kind == "latency":
            good = bisect_right(
                window.latencies, self.latency_threshold_us
            )
            return good, len(window.latencies)
        fresh = sum(window.legs_fresh.values())
        return fresh, window.answered_legs()


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window multi-burn-rate alert rule over one SLO."""

    name: str
    #: Name of the :class:`SLOSpec` this rule watches.
    slo: str
    #: Breach when burn ≥ threshold over BOTH trailing spans.
    threshold: float
    #: Trailing window counts (long ≥ short ≥ 1).
    long_windows: int
    short_windows: int
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise SLOError(f"threshold must be > 0: {self.threshold}")
        if not 1 <= self.short_windows <= self.long_windows:
            raise SLOError(
                "need 1 <= short_windows <= long_windows: "
                f"{self.short_windows} / {self.long_windows}"
            )
        if self.severity not in _SEVERITIES:
            raise SLOError(f"unknown severity: {self.severity!r}")


#: Counted lifecycle signals an EventRule may watch.
EVENT_SIGNALS: Dict[str, Callable[[WindowSnapshot], float]] = {
    "quarantines": lambda w: w.quarantines,
    "breaker_opens": lambda w: w.breaker_opens,
    "audit_mismatches": lambda w: w.audit_mismatches,
    "health_transitions": lambda w: w.health_transitions,
    "stale_legs": lambda w: w.stale_legs(),
    "shed_legs": lambda w: sum(w.legs_shed.values()),
    "errors": lambda w: w.errors,
}


@dataclass(frozen=True)
class EventRule:
    """Symptom rule: trailing sum of a counted signal hits a threshold."""

    name: str
    #: One of :data:`EVENT_SIGNALS`.
    signal: str
    #: Breach when the trailing-``windows`` sum ≥ threshold.
    threshold: float
    windows: int = 1
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.signal not in EVENT_SIGNALS:
            raise SLOError(
                f"unknown event signal: {self.signal!r} "
                f"(have {sorted(EVENT_SIGNALS)})"
            )
        if self.threshold <= 0:
            raise SLOError(f"threshold must be > 0: {self.threshold}")
        if self.windows < 1:
            raise SLOError(f"windows must be >= 1: {self.windows}")
        if self.severity not in _SEVERITIES:
            raise SLOError(f"unknown severity: {self.severity!r}")


@dataclass(frozen=True)
class RuleEvaluation:
    """One rule's decision at one evaluation point (a window's end)."""

    window_index: int
    at_us: float
    rule: str
    severity: str
    breached: bool
    #: Burn rate (burn rules: the lower of long/short) or trailing sum
    #: (event rules) — the number compared against the threshold.
    value: float


@dataclass
class SLOState:
    """Whole-run error-budget accounting for one SLO."""

    name: str
    objective: float
    good: int = 0
    total: int = 0

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    @property
    def attained(self) -> float:
        """Observed good fraction (1.0 with no traffic: nothing failed)."""
        return self.good / self.total if self.total else 1.0

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (can exceed 1.0)."""
        if not self.total:
            return 0.0
        return (1.0 - self.attained) / self.budget

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "objective": self.objective,
            "good": self.good,
            "total": self.total,
            "attained": round(self.attained, 6),
            "budget_consumed": round(self.budget_consumed, 6),
        }


class SLOEngine:
    """Evaluates SLO burn-rate and event rules over a window series."""

    def __init__(
        self,
        slos: Sequence[SLOSpec],
        rules: Sequence[object] = (),
    ) -> None:
        self.slos: Dict[str, SLOSpec] = {}
        for spec in slos:
            if spec.name in self.slos:
                raise SLOError(f"duplicate SLO: {spec.name!r}")
            self.slos[spec.name] = spec
        self.burn_rules: List[BurnRateRule] = []
        self.event_rules: List[EventRule] = []
        names = set()
        for rule in rules:
            if rule.name in names:
                raise SLOError(f"duplicate rule: {rule.name!r}")
            names.add(rule.name)
            if isinstance(rule, BurnRateRule):
                if rule.slo not in self.slos:
                    raise SLOError(
                        f"rule {rule.name!r} references unknown SLO "
                        f"{rule.slo!r}"
                    )
                self.burn_rules.append(rule)
            elif isinstance(rule, EventRule):
                self.event_rules.append(rule)
            else:
                raise SLOError(f"unknown rule type: {rule!r}")

    @property
    def rule_names(self) -> List[str]:
        return [r.name for r in self.burn_rules] + [
            r.name for r in self.event_rules
        ]

    # ------------------------------------------------------------------
    def evaluate(
        self, windows: Sequence[WindowSnapshot]
    ) -> List[RuleEvaluation]:
        """Every rule's decision at every window, in (window, rule) order.

        A trailing span shorter than a rule's configured window count
        (the run's first windows) evaluates over what exists — rules
        stay live from the first window instead of going blind during
        a startup fault.
        """
        #: Per-SLO prefix sums of (good, total) for O(1) trailing spans.
        prefix: Dict[str, List[Tuple[int, int]]] = {}
        for name, spec in self.slos.items():
            acc: List[Tuple[int, int]] = [(0, 0)]
            good_sum = total_sum = 0
            for window in windows:
                good, total = spec.good_total(window)
                good_sum += good
                total_sum += total
                acc.append((good_sum, total_sum))
            prefix[name] = acc
        signal_prefix: Dict[str, List[float]] = {}
        for rule in self.event_rules:
            if rule.signal not in signal_prefix:
                getter = EVENT_SIGNALS[rule.signal]
                acc_f: List[float] = [0.0]
                running = 0.0
                for window in windows:
                    running += getter(window)
                    acc_f.append(running)
                signal_prefix[rule.signal] = acc_f

        def span(acc, i, count):
            lo = max(0, i + 1 - count)
            return acc[i + 1], acc[lo]

        evaluations: List[RuleEvaluation] = []
        for i, window in enumerate(windows):
            for rule in self.burn_rules:
                spec = self.slos[rule.slo]
                burn = None
                for count in (rule.long_windows, rule.short_windows):
                    (g_hi, t_hi), (g_lo, t_lo) = span(
                        prefix[rule.slo], i, count
                    )
                    good, total = g_hi - g_lo, t_hi - t_lo
                    if total == 0:
                        burn = None
                        break
                    bad_fraction = 1.0 - good / total
                    rate = bad_fraction / spec.budget
                    burn = rate if burn is None else min(burn, rate)
                evaluations.append(
                    RuleEvaluation(
                        window_index=i,
                        at_us=window.end_us,
                        rule=rule.name,
                        severity=rule.severity,
                        breached=(
                            burn is not None and burn >= rule.threshold
                        ),
                        value=burn if burn is not None else 0.0,
                    )
                )
            for rule in self.event_rules:
                acc_f = signal_prefix[rule.signal]
                hi, lo = span(acc_f, i, rule.windows)
                value = hi - lo
                evaluations.append(
                    RuleEvaluation(
                        window_index=i,
                        at_us=window.end_us,
                        rule=rule.name,
                        severity=rule.severity,
                        breached=value >= rule.threshold,
                        value=value,
                    )
                )
        return evaluations

    def slo_states(
        self, windows: Sequence[WindowSnapshot]
    ) -> Dict[str, SLOState]:
        """Whole-run budget accounting per SLO.

        Sliding series double-count overlapped events; budget states
        are computed over tumbling (non-overlapping) series in the
        monitor pipeline.
        """
        states = {
            name: SLOState(name=name, objective=spec.objective)
            for name, spec in self.slos.items()
        }
        for window in windows:
            for name, spec in self.slos.items():
                good, total = spec.good_total(window)
                states[name].good += good
                states[name].total += total
        return states
