"""Ground-truth detection scoring: measuring the monitoring itself.

The fault schedules are exact — every injected outage and gray window
has a known ``[start, end)`` on the simulated clock
(:meth:`~repro.machine.faults.FaultSchedule.fault_windows`,
:meth:`~repro.machine.faults.RegionSchedule.fault_windows`,
:func:`truth_from_replica_timeline` for host replica timelines).
That turns "does the monitor work?" from a vibe into a metric:

* **time-to-detect** (ttd) — first alert fire minus fault onset, per
  truth window (0 when an already-open alert spans the onset);
* **time-to-resolve** (ttr) — last matching alert resolution minus
  fault repair (how long the pager stayed noisy after the fix);
* **precision** — alerts overlapping some truth window over all
  alerts (a false alert overlaps none);
* **recall** — truth windows with at least one overlapping alert;
* **warmup fires** — alerts opened during the fault-free warmup (any
  is a false page by construction).

Deliberately, scoring never reads the monitor's own ``fault``
telemetry events — the truth comes straight from the schedules, so a
monitor that drops signals scores badly instead of grading its own
homework.  The CI gate (:meth:`DetectionScore.gate_problems`) demands
full recall within a ttd bound and zero warmup fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...machine.faults import FaultConfig, FaultWindow
from .alerts import Alert


@dataclass(frozen=True)
class ScoreConfig:
    """Matching and gating parameters for detection scoring."""

    #: Gate: every truth window must be detected within this bound.
    ttd_bound_us: float
    #: An alert firing up to this long after a fault's repair still
    #: counts as detecting it (trailing-window evaluation lag).
    grace_us: float = 0.0
    #: Warmup ends here; defaults to the first truth-window onset.
    warmup_end_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ttd_bound_us <= 0:
            raise ValueError(
                f"ttd_bound_us must be > 0: {self.ttd_bound_us}"
            )
        if self.grace_us < 0:
            raise ValueError(f"grace_us must be >= 0: {self.grace_us}")


@dataclass
class TruthMatch:
    """One truth window's detection verdict."""

    truth: FaultWindow
    detected: bool = False
    #: Rule that fired first among matching alerts.
    first_rule: Optional[str] = None
    fired_at_us: Optional[float] = None
    #: First fire minus onset, clamped at 0 (an alert already open at
    #: onset detects instantly).
    ttd_us: Optional[float] = None
    #: Last matching resolution minus repair, clamped at 0; None when
    #: a matching alert never resolved (or the fault never repaired).
    ttr_us: Optional[float] = None
    #: Rules of every alert overlapping this window, sorted.
    rules: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.truth.target,
            "kind": self.truth.kind,
            "start_us": self.truth.start_us,
            "end_us": self.truth.end_us,
            "detected": self.detected,
            "first_rule": self.first_rule,
            "ttd_us": self.ttd_us,
            "ttr_us": self.ttr_us,
            "rules": list(self.rules),
        }


@dataclass
class DetectionScore:
    """A run's monitoring scorecard."""

    matches: List[TruthMatch]
    #: Alerts overlapping no truth window (each one a false page).
    false_alerts: List[Alert]
    #: Alerts that opened before the warmup boundary.
    fired_in_warmup: int
    total_alerts: int
    warmup_end_us: float

    @property
    def truth_count(self) -> int:
        return len(self.matches)

    @property
    def detected_count(self) -> int:
        return sum(1 for m in self.matches if m.detected)

    @property
    def recall(self) -> float:
        """Detected truth windows (1.0 when nothing was injected)."""
        if not self.matches:
            return 1.0
        return self.detected_count / len(self.matches)

    @property
    def precision(self) -> float:
        """True alerts over all alerts (1.0 when none fired)."""
        if not self.total_alerts:
            return 1.0
        return 1.0 - len(self.false_alerts) / self.total_alerts

    @property
    def max_ttd_us(self) -> Optional[float]:
        ttds = [m.ttd_us for m in self.matches if m.ttd_us is not None]
        return max(ttds) if ttds else None

    @property
    def mean_ttd_us(self) -> Optional[float]:
        ttds = [m.ttd_us for m in self.matches if m.ttd_us is not None]
        return sum(ttds) / len(ttds) if ttds else None

    @property
    def max_ttr_us(self) -> Optional[float]:
        ttrs = [m.ttr_us for m in self.matches if m.ttr_us is not None]
        return max(ttrs) if ttrs else None

    def gate_problems(self, config: ScoreConfig) -> List[str]:
        """The CI gate: empty iff the monitoring passed.

        Requires every truth window detected, each within the ttd
        bound, and zero alerts fired during the fault-free warmup.
        """
        problems: List[str] = []
        for match in self.matches:
            if not match.detected:
                problems.append(
                    f"missed fault {match.truth.target} "
                    f"[{match.truth.start_us:.0f}us..)"
                )
            elif (
                match.ttd_us is not None
                and match.ttd_us > config.ttd_bound_us
            ):
                problems.append(
                    f"slow detection of {match.truth.target}: "
                    f"ttd {match.ttd_us:.0f}us > bound "
                    f"{config.ttd_bound_us:.0f}us"
                )
        if self.fired_in_warmup:
            problems.append(
                f"{self.fired_in_warmup} alert(s) fired during the "
                f"fault-free warmup (< {self.warmup_end_us:.0f}us)"
            )
        return problems

    def as_dict(self) -> Dict[str, object]:
        return {
            "truth_count": self.truth_count,
            "detected_count": self.detected_count,
            "recall": round(self.recall, 6),
            "precision": round(self.precision, 6),
            "false_alert_count": len(self.false_alerts),
            "fired_in_warmup": self.fired_in_warmup,
            "total_alerts": self.total_alerts,
            "max_ttd_us": self.max_ttd_us,
            "mean_ttd_us": (
                round(self.mean_ttd_us, 3)
                if self.mean_ttd_us is not None
                else None
            ),
            "max_ttr_us": self.max_ttr_us,
            "matches": [m.as_dict() for m in self.matches],
        }


def _interval(
    window: FaultWindow, horizon_us: float
) -> Tuple[float, float]:
    end = window.end_us if window.end_us is not None else horizon_us
    return window.start_us, max(end, window.start_us)


def score_detection(
    truth: Sequence[FaultWindow],
    alerts: Sequence[Alert],
    config: ScoreConfig,
    horizon_us: float,
) -> DetectionScore:
    """Match the alert history against the injected-fault ground truth.

    An alert's live interval is ``[fired_at, resolved_at]`` (open
    alerts extend to the horizon); it detects a truth window when the
    two intervals overlap, with ``grace_us`` appended to the truth
    window for evaluation lag.  Each alert may detect several
    overlapping faults (one page can cover a correlated outage), and
    a fault may be detected by several rules.
    """
    warmup_end = config.warmup_end_us
    if warmup_end is None:
        warmup_end = min(
            (w.start_us for w in truth), default=horizon_us
        )
    matches: List[TruthMatch] = []
    matched_alerts = set()
    for window in truth:
        start, end = _interval(window, horizon_us)
        end += config.grace_us
        hits: List[Alert] = []
        for alert in alerts:
            alert_end = (
                alert.resolved_at_us
                if alert.resolved_at_us is not None
                else horizon_us
            )
            if alert.fired_at_us <= end and alert_end >= start:
                hits.append(alert)
                matched_alerts.add(id(alert))
        match = TruthMatch(truth=window)
        if hits:
            first = min(hits, key=lambda a: (a.fired_at_us, a.rule))
            match.detected = True
            match.first_rule = first.rule
            match.fired_at_us = first.fired_at_us
            match.ttd_us = max(0.0, first.fired_at_us - window.start_us)
            match.rules = tuple(sorted({a.rule for a in hits}))
            if window.end_us is not None and all(
                a.resolved_at_us is not None for a in hits
            ):
                last = max(a.resolved_at_us for a in hits)
                match.ttr_us = max(0.0, last - window.end_us)
        matches.append(match)
    false_alerts = [a for a in alerts if id(a) not in matched_alerts]
    fired_in_warmup = sum(
        1 for a in alerts if a.fired_at_us < warmup_end
    )
    return DetectionScore(
        matches=matches,
        false_alerts=false_alerts,
        fired_in_warmup=fired_in_warmup,
        total_alerts=len(alerts),
        warmup_end_us=warmup_end,
    )


def _timeline_kind(faults: FaultConfig) -> str:
    """Classify a replica fault regime: hard outage vs gray."""
    schedule = getattr(faults, "schedule", None)
    if schedule and any(
        e.kind in ("cluster-fail", "mu-fail", "link-fail")
        for e in schedule.events
    ):
        return "outage"
    if getattr(faults, "failed_cluster_fraction", 0.0):
        return "outage"
    return "gray"


def truth_from_replica_timeline(
    timeline: Sequence[object], horizon_us: Optional[float] = None
) -> Tuple[FaultWindow, ...]:
    """Ground truth from a host ``replica_timeline``.

    Each :class:`~repro.host.config.ReplicaFaultEvent` with a fault
    config opens a window on ``replica:<id>``; the next ``faults=None``
    event on the same replica closes it.  Never-repaired replicas
    yield open windows (clamped to ``horizon_us`` if given).
    """
    spans: List[Tuple[float, Optional[float], str, str]] = []
    opens: Dict[str, Tuple[float, str]] = {}
    for event in sorted(timeline, key=lambda e: e.time_us):
        target = f"replica:{event.replica}"
        if event.faults is not None:
            opens.setdefault(
                target, (event.time_us, _timeline_kind(event.faults))
            )
        elif target in opens:
            start, kind = opens.pop(target)
            spans.append((start, event.time_us, kind, target))
    for target, (start, kind) in opens.items():
        spans.append((start, horizon_us, kind, target))
    spans.sort(key=lambda s: (s[0], s[3]))
    return tuple(
        FaultWindow(start_us=s, end_us=e, kind=k, target=t)
        for s, e, k, t in spans
    )
