"""`repro.obs.live` — streaming telemetry, SLOs, and alert scoring.

Everything in :mod:`repro.obs` so far is *post-hoc*: metrics are
end-of-run aggregates and ``analyze`` needs a finished trace file.
This subpackage answers the operational question those cannot — "is
the fleet healthy *right now*, and how fast did we notice it wasn't?"
— on the same simulated clock the serving layers run on:

* :mod:`.events` — the telemetry stream: a :class:`TelemetrySink`
  collects timestamped :class:`TelemetryEvent` records emitted by the
  serving host (arrivals, outcomes, health/breaker transitions,
  audits), the fleet router (per-leg ledgers, region fault events),
  and nothing else — attaching a sink never changes a run
  (monitored == unmonitored is pinned by test and CI).
* :mod:`.windows` — tumbling/sliding window aggregation over the
  stream: qps, p50/p95/p99 latency, shed/error rate, per-shard
  freshness, per-region health, all as deterministic
  :class:`WindowSnapshot` time series (empty windows included).
* :mod:`.slo` — availability/latency/freshness SLOs with error-budget
  accounting and multi-window multi-burn-rate alert rules (fast-burn
  pages, slow-burn tickets) plus event-symptom rules.
* :mod:`.alerts` — the fire → ack → resolve alert lifecycle with
  clear-streak hysteresis and rule muting.
* :mod:`.score` — ground-truth detection scoring: because the fault
  schedules are exact, the monitoring itself is measured —
  time-to-detect, time-to-resolve, precision/recall — and CI-gated.
* :mod:`.monitor` — the ``python -m repro monitor`` pipeline: replay
  a workload (or ingest a trace), render the ops timeline report,
  emit the drift-gated detection snapshot.

See ``docs/OBSERVABILITY.md`` ("Live monitoring & SLOs").
"""

from .alerts import Alert, AlertManager, AlertState
from .events import TelemetryEvent, TelemetrySink
from .score import (
    DetectionScore,
    ScoreConfig,
    TruthMatch,
    score_detection,
    truth_from_replica_timeline,
)
from .slo import BurnRateRule, EventRule, SLOEngine, SLOSpec, SLOState
from .windows import (
    WindowConfig,
    WindowSnapshot,
    aggregate_windows,
    merge_windows,
)

__all__ = [
    "Alert",
    "AlertManager",
    "AlertState",
    "BurnRateRule",
    "DetectionScore",
    "EventRule",
    "SLOEngine",
    "SLOSpec",
    "SLOState",
    "ScoreConfig",
    "TelemetryEvent",
    "TelemetrySink",
    "TruthMatch",
    "WindowConfig",
    "WindowSnapshot",
    "aggregate_windows",
    "merge_windows",
    "score_detection",
    "truth_from_replica_timeline",
]
