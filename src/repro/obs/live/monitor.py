"""The monitor pipeline: replay a workload, watch it, score the watch.

Glues the live-telemetry layers end-to-end for the ``python -m repro
monitor`` CLI, the experiment contract checks, and CI:

1. run the workload with a :class:`~repro.obs.live.events.TelemetrySink`
   attached (or ingest an existing trace capture);
2. aggregate the stream into the windowed series (:mod:`.windows`);
3. evaluate SLO burn-rate + symptom rules (:mod:`.slo`) and drive the
   alert lifecycle (:mod:`.alerts`);
4. score the alerts against the schedule-exported fault ground truth
   (:mod:`.score`);
5. render the ops timeline report (:mod:`.report`) and the flat
   snapshot that rides the existing ``analyze --compare`` drift gate.

The per-workload :class:`MonitorSpec` constants double as the
*documented* detection bounds: ``spec.score.ttd_bound_us`` is the
simulated-time bound the acceptance gate enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...machine.faults import FaultWindow
from ..analyze.drift import make_snapshot
from .alerts import Alert, AlertManager
from .events import TelemetryEvent, TelemetrySink
from .score import (
    DetectionScore,
    ScoreConfig,
    score_detection,
    truth_from_replica_timeline,
)
from .slo import (
    BurnRateRule,
    EventRule,
    RuleEvaluation,
    SLOEngine,
    SLOSpec,
    SLOState,
)
from .windows import WindowConfig, WindowSnapshot, aggregate_windows


@dataclass(frozen=True)
class MonitorSpec:
    """A workload's monitoring contract: windows, SLOs, rules, bounds."""

    workload: str
    window: WindowConfig
    slos: Tuple[SLOSpec, ...]
    rules: Tuple[object, ...]
    score: ScoreConfig
    #: Simulated on-call acknowledgement delay.
    ack_after_us: float = 5_000.0
    #: Consecutive clear evaluations before an alert resolves.
    clear_windows: int = 2


@dataclass
class MonitorRun:
    """Everything one monitored run produced."""

    spec: MonitorSpec
    horizon_us: float
    events: List[TelemetryEvent]
    truth: Tuple[FaultWindow, ...]
    windows: List[WindowSnapshot]
    evaluations: List[RuleEvaluation]
    alerts: List[Alert]
    slo_states: Dict[str, SLOState]
    score: DetectionScore
    muted: Set[str] = field(default_factory=set)

    def gate_problems(self) -> List[str]:
        """Detection-gate verdict (empty iff the monitoring passed)."""
        return self.score.gate_problems(self.spec.score)


def run_pipeline(
    spec: MonitorSpec,
    events: Sequence[TelemetryEvent],
    truth: Sequence[FaultWindow],
    horizon_us: Optional[float] = None,
    muted: Iterable[str] = (),
) -> MonitorRun:
    """Windows → rules → alerts → detection score, deterministically."""
    muted_set = set(muted)
    engine = SLOEngine(spec.slos, spec.rules)
    unknown = muted_set - set(engine.rule_names)
    if unknown:
        raise ValueError(
            f"muting unknown rule(s): {sorted(unknown)} "
            f"(have {sorted(engine.rule_names)})"
        )
    if horizon_us is None:
        horizon_us = max((e.ts_us for e in events), default=0.0)
    windows = aggregate_windows(events, spec.window, horizon_us)
    evaluations = engine.evaluate(windows)
    manager = AlertManager(
        ack_after_us=spec.ack_after_us,
        clear_windows=spec.clear_windows,
        muted=muted_set,
    )
    alerts = manager.process(evaluations)
    slo_states = engine.slo_states(windows)
    score = score_detection(truth, alerts, spec.score, horizon_us)
    return MonitorRun(
        spec=spec,
        horizon_us=horizon_us,
        events=list(events),
        truth=tuple(truth),
        windows=windows,
        evaluations=evaluations,
        alerts=alerts,
        slo_states=slo_states,
        score=score,
        muted=muted_set,
    )


# ----------------------------------------------------------------------
# Workload specs.  Thresholds are tuned against the deterministic
# chaos/fleetchaos timelines and pinned by the drift-gated snapshots;
# the ttd bounds here are the documented detection contracts.
# ----------------------------------------------------------------------
def chaos_spec(mean_service_us: float) -> MonitorSpec:
    """Monitoring contract for the host-level rolling-gray chaos run.

    Windows are one mean-service-time wide (the timeline's natural
    unit: regimes switch at 2x/6x/10x/12x/14x/20x).  Detection bound:
    every injected replica-fault window is alerted within **7 mean
    service times** of onset — the slowest detector is the silent
    gray mode, where the phi detector needs ``health_min_samples``
    observations of the slow replica and the audit needs a sampled
    mismatch, which takes ~6 windows on this timeline.
    """
    m = mean_service_us
    return MonitorSpec(
        workload="chaos",
        window=WindowConfig(width_us=m),
        slos=(
            SLOSpec("availability", "availability", objective=0.95),
            SLOSpec(
                "latency", "latency", objective=0.90,
                latency_threshold_us=6.0 * m,
            ),
        ),
        rules=(
            BurnRateRule(
                "availability-page", slo="availability",
                threshold=2.0, long_windows=4, short_windows=1,
                severity="page",
            ),
            BurnRateRule(
                "latency-ticket", slo="latency",
                threshold=2.0, long_windows=6, short_windows=2,
                severity="ticket",
            ),
            EventRule(
                "quarantine-page", signal="quarantines",
                threshold=1, windows=1, severity="page",
            ),
            EventRule(
                "breaker-page", signal="breaker_opens",
                threshold=1, windows=1, severity="page",
            ),
            EventRule(
                "audit-ticket", signal="audit_mismatches",
                threshold=1, windows=2, severity="ticket",
            ),
        ),
        score=ScoreConfig(
            ttd_bound_us=7.0 * m,
            grace_us=2.0 * m,
        ),
        ack_after_us=0.5 * m,
        clear_windows=2,
    )


def fleetchaos_spec() -> MonitorSpec:
    """Monitoring contract for the fleet regional-outage run.

    20 ms tumbling windows over the ~440 ms timeline.  The freshness
    burn rule is the outage detector (a dead home region turns its
    shards' legs stale); the quarantine rule is the gray detector
    (phi-accrual catches the 3x slowdown).  Detection bound: 60 ms of
    simulated time from fault onset.
    """
    return MonitorSpec(
        workload="fleetchaos",
        window=WindowConfig(width_us=20_000.0),
        slos=(
            SLOSpec("availability", "availability", objective=0.99),
            SLOSpec(
                "latency", "latency", objective=0.90,
                latency_threshold_us=30_000.0,
            ),
            SLOSpec("freshness", "freshness", objective=0.95),
        ),
        rules=(
            BurnRateRule(
                "freshness-page", slo="freshness",
                threshold=2.0, long_windows=2, short_windows=1,
                severity="page",
            ),
            BurnRateRule(
                "availability-page", slo="availability",
                threshold=2.0, long_windows=3, short_windows=1,
                severity="page",
            ),
            BurnRateRule(
                "latency-ticket", slo="latency",
                threshold=2.0, long_windows=4, short_windows=2,
                severity="ticket",
            ),
            EventRule(
                "quarantine-page", signal="quarantines",
                threshold=1, windows=1, severity="page",
            ),
        ),
        score=ScoreConfig(
            ttd_bound_us=60_000.0,
            grace_us=20_000.0,
        ),
        ack_after_us=10_000.0,
        clear_windows=2,
    )


# ----------------------------------------------------------------------
# Workload runners (imports deferred: experiments pull in the serving
# stack, and the monitor must stay importable without it).
# ----------------------------------------------------------------------
def monitor_chaos(
    fast: bool = True, muted: Iterable[str] = ()
) -> MonitorRun:
    """Replay the chaos workload with a sink attached and monitor it."""
    from ...experiments.chaos import build_scenario
    from ...host import ServingHost

    network, config, queries, profile = build_scenario(fast)
    sink = TelemetrySink()
    report = ServingHost(network, config, sink=sink).serve(queries)
    horizon = max(
        report.total_time_us,
        max((e.ts_us for e in sink.events), default=0.0),
    )
    truth = truth_from_replica_timeline(
        config.replica_timeline, horizon_us=horizon
    )
    spec = chaos_spec(profile["mean_service_us"])
    return run_pipeline(
        spec, sink.ordered(), truth, horizon_us=horizon, muted=muted
    )


def monitor_fleetchaos(
    fast: bool = True, muted: Iterable[str] = ()
) -> MonitorRun:
    """Replay the fleetchaos workload with a sink and monitor it."""
    from ...experiments.fleetchaos import build_scenario
    from ...fleet import FleetRouter

    network, config, queries, profile = build_scenario(fast)
    sink = TelemetrySink()
    report = FleetRouter(network, config, sink=sink).serve(queries)
    horizon = max(
        report.total_time_us,
        max((e.ts_us for e in sink.events), default=0.0),
        profile["gray_off_us"],
    )
    truth = config.region_schedule.fault_windows()
    return run_pipeline(
        fleetchaos_spec(), sink.ordered(), truth,
        horizon_us=horizon, muted=muted,
    )


MONITOR_WORKLOADS = {
    "chaos": monitor_chaos,
    "fleetchaos": monitor_fleetchaos,
}


# ----------------------------------------------------------------------
def events_from_trace(document: Dict) -> List[TelemetryEvent]:
    """Reconstruct a telemetry stream from a trace capture.

    Ingestion path for ``monitor --from-trace``: per-query spans on
    the ``queries``/``fleet-queries`` tracks become arrival/outcome
    events; breaker/health/audit instants on host replica tracks and
    region-event instants on the fleet router track become their
    lifecycle events.  Leg-level detail is not reconstructable from
    the trace, so freshness signals stay empty — trace-fed runs
    render the timeline but carry no injected-fault ground truth.
    """
    from ..analyze.reader import read_document

    model = read_document(document)
    sink = TelemetrySink()
    for process in ("queries", "fleet-queries"):
        for track in model.tracks_of(process):
            for span in track.spans:
                qid = span.args.get("query_id")
                sink.emit(span.start_us, "arrival", query_id=qid)
                status = span.args.get("status", "unknown")
                sink.emit(
                    span.end_us, "query",
                    query_id=qid,
                    status=status,
                    arrival_us=span.start_us,
                    latency_us=span.duration_us,
                )
    for process in ("host", "fleet"):
        for track in model.tracks_of(process):
            for instant in track.instants:
                name = instant.name
                if name.startswith("breaker-"):
                    sink.emit(
                        instant.ts_us, "breaker",
                        from_state=instant.args.get("from_state"),
                        to_state=name[len("breaker-"):],
                    )
                elif name.startswith("health-"):
                    sink.emit(
                        instant.ts_us, "health",
                        from_state=instant.args.get("from_state"),
                        to_state=name[len("health-"):],
                        reason=instant.args.get("reason"),
                    )
                elif name.startswith("audit-"):
                    sink.emit(
                        instant.ts_us, "audit",
                        ok=name == "audit-ok",
                    )
                elif name.startswith("region-"):
                    sink.emit(
                        instant.ts_us, "fault",
                        event=name,
                        region=instant.args.get("region"),
                    )
    return sink.ordered()


# ----------------------------------------------------------------------
def monitor_snapshot(run: MonitorRun) -> Dict[str, object]:
    """The drift-gated snapshot of a monitored run.

    Flat numeric keys only (the :mod:`..analyze.drift` contract);
    every value is simulated-time deterministic, so the default 2%
    tolerance band is effectively an equality pin.
    """
    values: Dict[str, object] = {
        "events.count": len(run.events),
        "windows.count": len(run.windows),
        "truth.count": run.score.truth_count,
        "score.detected": run.score.detected_count,
        "score.recall": run.score.recall,
        "score.precision": run.score.precision,
        "score.false_alerts": len(run.score.false_alerts),
        "score.fired_in_warmup": run.score.fired_in_warmup,
        "alerts.total": len(run.alerts),
        "alerts.resolved": sum(
            1 for a in run.alerts if a.resolved_at_us is not None
        ),
        "alerts.pages": sum(
            1 for a in run.alerts if a.severity == "page"
        ),
        "alerts.tickets": sum(
            1 for a in run.alerts if a.severity == "ticket"
        ),
    }
    if run.score.max_ttd_us is not None:
        values["score.max_ttd_us"] = run.score.max_ttd_us
        values["score.mean_ttd_us"] = run.score.mean_ttd_us
    if run.score.max_ttr_us is not None:
        values["score.max_ttr_us"] = run.score.max_ttr_us
    rule_fires: Dict[str, int] = {}
    for alert in run.alerts:
        rule_fires[alert.rule] = rule_fires.get(alert.rule, 0) + 1
    for rule, count in sorted(rule_fires.items()):
        values[f"alerts.rule.{rule}"] = count
    for name in sorted(run.slo_states):
        state = run.slo_states[name]
        values[f"slo.{name}.attained"] = round(state.attained, 6)
        values[f"slo.{name}.budget_consumed"] = round(
            state.budget_consumed, 6
        )
        values[f"slo.{name}.total"] = state.total
    return make_snapshot(
        values, workload=f"monitor-{run.spec.workload}"
    )
