"""Windowed aggregation over the telemetry stream.

Turns a run's :class:`~repro.obs.live.events.TelemetryEvent` stream
into a deterministic time series of :class:`WindowSnapshot` records —
the input signal for the SLO engine and the rows of the ops timeline
report.

Semantics, pinned by tests:

* Windows are **half-open** ``[start, end)``: an event whose
  timestamp lands exactly on a boundary belongs to the *next*
  window.
* The series is **gapless** from ``t_start`` through the horizon —
  windows with no events still appear (an empty window is a signal:
  zero traffic), with zeroed counts and 0.0 percentiles.
* **Tumbling** windows (``slide_us is None`` or ``== width_us``)
  partition time; **sliding** windows overlap: one snapshot every
  ``slide_us`` covering the trailing ``width_us`` (``width_us`` must
  be an integer multiple of ``slide_us``).
* Percentiles are exact over the window's retained samples (sorted,
  linear interpolation), so merging per-shard windows with
  :func:`merge_windows` is order-independent: the merged sample
  lists re-sort to the same series no matter how they arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .events import TelemetryEvent


class WindowError(ValueError):
    """Raised for inconsistent window configurations or merges."""


@dataclass(frozen=True)
class WindowConfig:
    """Window geometry: width plus optional slide (None = tumbling)."""

    width_us: float
    slide_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.width_us <= 0:
            raise WindowError(f"width_us must be > 0: {self.width_us}")
        slide = self.slide_us
        if slide is not None:
            if slide <= 0 or slide > self.width_us:
                raise WindowError(
                    f"slide_us must be in (0, width_us]: {slide}"
                )
            ratio = self.width_us / slide
            if abs(ratio - round(ratio)) > 1e-9:
                raise WindowError(
                    "width_us must be an integer multiple of slide_us: "
                    f"{self.width_us} / {slide}"
                )

    @property
    def step_us(self) -> float:
        """Distance between consecutive window starts."""
        return self.slide_us if self.slide_us is not None else self.width_us


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact ``q``-th percentile (linear interpolation; 0.0 if empty)."""
    if not 0 <= q <= 100:
        raise WindowError(f"percentile must be in [0, 100]: {q}")
    n = len(sorted_samples)
    if n == 0:
        return 0.0
    if n == 1:
        return sorted_samples[0]
    rank = q / 100.0 * (n - 1)
    low = int(rank)
    high = min(low + 1, n - 1)
    frac = rank - low
    return sorted_samples[low] * (1.0 - frac) + sorted_samples[high] * frac


@dataclass
class WindowSnapshot:
    """Aggregates of one window of the telemetry stream."""

    index: int
    start_us: float
    end_us: float
    #: Queries that entered the system in the window.
    arrivals: int = 0
    #: Terminal outcomes by status value.
    outcomes: Dict[str, int] = field(default_factory=dict)
    #: Outcomes that answered successfully (host: served; fleet:
    #: complete/degraded with quorum).
    ok: int = 0
    #: Latencies of the ok outcomes, sorted ascending (µs).
    latencies: List[float] = field(default_factory=list)
    #: Fleet only — resolved legs by shard id.
    legs_fresh: Dict[int, int] = field(default_factory=dict)
    legs_stale: Dict[int, int] = field(default_factory=dict)
    legs_shed: Dict[int, int] = field(default_factory=dict)
    #: Fleet only — answered legs served by each region / stale share.
    region_served: Dict[int, int] = field(default_factory=dict)
    region_stale: Dict[int, int] = field(default_factory=dict)
    #: Lifecycle signals.
    health_transitions: int = 0
    quarantines: int = 0
    breaker_opens: int = 0
    audit_checks: int = 0
    audit_mismatches: int = 0
    #: Fault-layer annotations ("region-fail r0", ...), in stream order.
    faults: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def width_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def finished(self) -> int:
        """Terminal outcomes in the window."""
        return sum(self.outcomes.values())

    @property
    def errors(self) -> int:
        """Terminal outcomes that did not answer ok."""
        return self.finished - self.ok

    def error_rate(self) -> float:
        """Errors over finished (0.0 when the window saw no outcome)."""
        finished = self.finished
        return self.errors / finished if finished else 0.0

    def qps(self) -> float:
        """Arrival rate over the window, in queries per second."""
        return self.arrivals / self.width_us * 1e6 if self.width_us else 0.0

    def latency_pct(self, q: float) -> float:
        """Exact latency percentile of the window's ok outcomes."""
        return percentile(self.latencies, q)

    def stale_legs(self) -> int:
        return sum(self.legs_stale.values())

    def answered_legs(self) -> int:
        return sum(self.legs_fresh.values()) + self.stale_legs()

    def stale_fraction(self) -> float:
        """Stale share of answered legs (the freshness signal)."""
        answered = self.answered_legs()
        return self.stale_legs() / answered if answered else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON-friendly, samples summarized)."""
        return {
            "index": self.index,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "arrivals": self.arrivals,
            "outcomes": dict(sorted(self.outcomes.items())),
            "ok": self.ok,
            "errors": self.errors,
            "qps": round(self.qps(), 3),
            "p50_us": round(self.latency_pct(50), 3),
            "p95_us": round(self.latency_pct(95), 3),
            "p99_us": round(self.latency_pct(99), 3),
            "stale_legs": self.stale_legs(),
            "shed_legs": sum(self.legs_shed.values()),
            "quarantines": self.quarantines,
            "breaker_opens": self.breaker_opens,
            "audit_mismatches": self.audit_mismatches,
            "faults": list(self.faults),
        }


# ----------------------------------------------------------------------
_SHED_STATUSES = frozenset({"shed"})


def _ingest(window: WindowSnapshot, event: TelemetryEvent) -> None:
    """Fold one event into one window's aggregates."""
    kind = event.kind
    get = event.get
    if kind == "arrival":
        window.arrivals += 1
    elif kind == "query":
        status = get("status", "unknown")
        window.outcomes[status] = window.outcomes.get(status, 0) + 1
        ok = get("ok")
        if ok is None:
            ok = status == "served"
        if ok:
            window.ok += 1
            latency = get("latency_us")
            if latency is not None:
                window.latencies.append(latency)
    elif kind == "leg":
        shard = get("shard", -1)
        status = get("status")
        if status == "fresh":
            window.legs_fresh[shard] = window.legs_fresh.get(shard, 0) + 1
        elif status == "stale":
            window.legs_stale[shard] = window.legs_stale.get(shard, 0) + 1
        else:
            window.legs_shed[shard] = window.legs_shed.get(shard, 0) + 1
        region = get("region")
        if region is not None and status in ("fresh", "stale"):
            window.region_served[region] = (
                window.region_served.get(region, 0) + 1
            )
            if status == "stale":
                window.region_stale[region] = (
                    window.region_stale.get(region, 0) + 1
                )
    elif kind == "health":
        window.health_transitions += 1
        if get("to_state") == "quarantined":
            window.quarantines += 1
    elif kind == "breaker":
        if get("to_state") == "open":
            window.breaker_opens += 1
    elif kind == "audit":
        window.audit_checks += 1
        if not get("ok", True):
            window.audit_mismatches += 1
    elif kind == "fault":
        label = get("event", "fault")
        region = get("region")
        if region is not None:
            label = f"{label} r{region}"
        value = get("value")
        if value is not None:
            label = f"{label} x{value:g}"
        window.faults.append(label)


def aggregate_windows(
    events: Iterable[TelemetryEvent],
    config: WindowConfig,
    horizon_us: Optional[float] = None,
    t_start: float = 0.0,
) -> List[WindowSnapshot]:
    """Aggregate a stream into its gapless window series.

    ``horizon_us`` extends (never truncates) the series: windows are
    produced through ``max(horizon_us, last event ts)``, so a quiet
    tail still renders as empty windows.  Events before ``t_start``
    are a caller error.
    """
    ordered = sorted(events, key=lambda e: (e.ts_us, e.seq))
    if ordered and ordered[0].ts_us < t_start:
        raise WindowError(
            f"event at {ordered[0].ts_us} precedes t_start {t_start}"
        )
    last_ts = ordered[-1].ts_us if ordered else t_start
    end = max(horizon_us if horizon_us is not None else t_start, last_ts)
    step = config.step_us
    width = config.width_us
    #: Windows whose *start* lies in [t_start, end] — an event exactly
    #: at the horizon still has a window to land in (half-open rule).
    count = int((end - t_start) // step) + 1
    windows = [
        WindowSnapshot(
            index=i,
            start_us=t_start + i * step,
            end_us=t_start + i * step + width,
        )
        for i in range(count)
    ]
    per_step = int(round(width / step))
    for event in ordered:
        #: Latest window containing ts: start <= ts < start + width.
        last_index = int((event.ts_us - t_start) // step)
        first_index = max(0, last_index - per_step + 1)
        for index in range(first_index, min(last_index, count - 1) + 1):
            _ingest(windows[index], event)
    for window in windows:
        window.latencies.sort()
    return windows


def merge_windows(parts: Sequence[WindowSnapshot]) -> WindowSnapshot:
    """Merge same-interval windows (e.g. one per shard) into one.

    Counts add; latency samples concatenate and re-sort, so the merged
    percentiles are exact and independent of merge order.
    """
    if not parts:
        raise WindowError("nothing to merge")
    first = parts[0]
    merged = WindowSnapshot(
        index=first.index, start_us=first.start_us, end_us=first.end_us
    )
    for part in parts:
        if (part.start_us, part.end_us) != (first.start_us, first.end_us):
            raise WindowError(
                "cannot merge windows over different intervals: "
                f"[{first.start_us}, {first.end_us}) vs "
                f"[{part.start_us}, {part.end_us})"
            )
        merged.arrivals += part.arrivals
        for status, n in part.outcomes.items():
            merged.outcomes[status] = merged.outcomes.get(status, 0) + n
        merged.ok += part.ok
        merged.latencies.extend(part.latencies)
        for src, dst in (
            (part.legs_fresh, merged.legs_fresh),
            (part.legs_stale, merged.legs_stale),
            (part.legs_shed, merged.legs_shed),
            (part.region_served, merged.region_served),
            (part.region_stale, merged.region_stale),
        ):
            for key, n in src.items():
                dst[key] = dst.get(key, 0) + n
        merged.health_transitions += part.health_transitions
        merged.quarantines += part.quarantines
        merged.breaker_opens += part.breaker_opens
        merged.audit_checks += part.audit_checks
        merged.audit_mismatches += part.audit_mismatches
        merged.faults.extend(part.faults)
    merged.latencies.sort()
    return merged
