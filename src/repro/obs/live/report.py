"""Deterministic ops-timeline report for a monitored run.

Markdown, stable ordering, simulated-time only — rendering the same
run twice produces byte-identical output (CI uploads it as an
artifact).  Sections: run header, SLO attainment + error budgets, the
windowed timeline (one row per window with fault annotations and
alert transitions inlined), the alert history, and the ground-truth
detection scorecard with the gate verdict.
"""

from __future__ import annotations

from typing import Dict, List

from .monitor import MonitorRun


def _fmt_us(us: float) -> str:
    """Compact simulated-time formatting (µs under 10ms, else ms)."""
    if us >= 10_000:
        return f"{us / 1000.0:.1f}ms"
    return f"{us:.0f}us"


def _alert_marks(run: MonitorRun) -> Dict[int, List[str]]:
    """Window index -> alert lifecycle marks rendered in that row."""
    width = run.spec.window.step_us
    marks: Dict[int, List[str]] = {}

    def index_of(ts: float) -> int:
        # Alerts transition at window *ends*; attribute the mark to
        # the window whose evaluation produced it.
        return max(0, int(round(ts / width)) - 1)

    for alert in run.alerts:
        marks.setdefault(index_of(alert.fired_at_us), []).append(
            f"FIRE {alert.rule}"
        )
        if alert.resolved_at_us is not None:
            marks.setdefault(
                index_of(alert.resolved_at_us), []
            ).append(f"RESOLVE {alert.rule}")
    for row in marks.values():
        row.sort()
    return marks


def render_monitor_report(run: MonitorRun) -> str:
    """The full ops-timeline report, as markdown."""
    spec = run.spec
    lines: List[str] = []
    out = lines.append
    out(f"# Ops timeline — `{spec.workload}`")
    out("")
    out(
        f"- horizon: {_fmt_us(run.horizon_us)} simulated; "
        f"{len(run.events)} telemetry events; "
        f"{len(run.windows)} windows of "
        f"{_fmt_us(spec.window.width_us)}"
    )
    out(
        f"- alert policy: ack after {_fmt_us(spec.ack_after_us)}, "
        f"resolve after {spec.clear_windows} clear windows; "
        f"detection bound {_fmt_us(spec.score.ttd_bound_us)}"
    )
    if run.muted:
        out(f"- **muted rules: {', '.join(sorted(run.muted))}**")
    out("")

    out("## SLOs")
    out("")
    out("| slo | objective | attained | budget consumed | events |")
    out("|---|---|---|---|---|")
    for name in sorted(run.slo_states):
        state = run.slo_states[name]
        out(
            f"| {name} | {state.objective:.3f} "
            f"| {state.attained:.4f} "
            f"| {state.budget_consumed * 100:.1f}% "
            f"| {state.total} |"
        )
    out("")

    out("## Timeline")
    out("")
    out(
        "| # | window | qps | ok | err | p50 | p95 | p99 "
        "| stale | quar | brk | audit | faults / alerts |"
    )
    out("|---|---|---|---|---|---|---|---|---|---|---|---|---|")
    marks = _alert_marks(run)
    for w in run.windows:
        notes = list(w.faults) + marks.get(w.index, [])
        out(
            f"| {w.index} "
            f"| {_fmt_us(w.start_us)}–{_fmt_us(w.end_us)} "
            f"| {w.qps():.0f} "
            f"| {w.ok} | {w.errors} "
            f"| {_fmt_us(w.latency_pct(50))} "
            f"| {_fmt_us(w.latency_pct(95))} "
            f"| {_fmt_us(w.latency_pct(99))} "
            f"| {w.stale_legs()} "
            f"| {w.quarantines} | {w.breaker_opens} "
            f"| {w.audit_mismatches} "
            f"| {'; '.join(notes)} |"
        )
    out("")

    out("## Alerts")
    out("")
    if run.alerts:
        out(
            "| rule | severity | fired | acked | resolved "
            "| duration | peak | breaches |"
        )
        out("|---|---|---|---|---|---|---|---|")
        for a in run.alerts:
            resolved = (
                _fmt_us(a.resolved_at_us)
                if a.resolved_at_us is not None else "OPEN"
            )
            duration = (
                _fmt_us(a.duration_us())
                if a.duration_us() is not None else "—"
            )
            out(
                f"| {a.rule} | {a.severity} "
                f"| {_fmt_us(a.fired_at_us)} "
                f"| {_fmt_us(a.ack_at_us)} "
                f"| {resolved} | {duration} "
                f"| {a.peak_value:.2f} | {a.breach_count} |"
            )
    else:
        out("No alerts fired.")
    out("")

    out("## Detection scorecard")
    out("")
    score = run.score
    if run.truth:
        out(
            "| fault | kind | injected | repaired | detected by "
            "| ttd | ttr |"
        )
        out("|---|---|---|---|---|---|---|")
        for match in score.matches:
            t = match.truth
            repaired = (
                _fmt_us(t.end_us) if t.end_us is not None else "never"
            )
            if match.detected:
                detected = match.first_rule or ""
                ttd = (
                    _fmt_us(match.ttd_us)
                    if match.ttd_us is not None else "—"
                )
                ttr = (
                    _fmt_us(match.ttr_us)
                    if match.ttr_us is not None else "—"
                )
            else:
                detected, ttd, ttr = "**MISSED**", "—", "—"
            out(
                f"| {t.target} | {t.kind} | {_fmt_us(t.start_us)} "
                f"| {repaired} | {detected} | {ttd} | {ttr} |"
            )
        out("")
        out(
            f"- recall {score.recall:.2f}, precision "
            f"{score.precision:.2f}; {len(score.false_alerts)} false "
            f"alert(s); {score.fired_in_warmup} fired in warmup "
            f"(< {_fmt_us(score.warmup_end_us)})"
        )
        if score.max_ttd_us is not None:
            out(
                f"- worst ttd {_fmt_us(score.max_ttd_us)} vs bound "
                f"{_fmt_us(spec.score.ttd_bound_us)}"
            )
    else:
        out("No injected faults on this run's timeline.")
    out("")
    problems = run.gate_problems()
    if problems:
        out("## Gate: **FAIL**")
        out("")
        for problem in problems:
            out(f"- {problem}")
    else:
        out("## Gate: PASS")
    out("")
    return "\n".join(lines)
