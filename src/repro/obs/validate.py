"""Chrome trace-event schema validation (the CI trace smoke gate).

Checks the structural contract a trace must satisfy to load cleanly
in Perfetto, without requiring any external schema library:

* the document is either a bare event array or an object with a
  ``traceEvents`` array (extra top-level keys allowed);
* every event is an object carrying a known ``ph`` phase, a string
  ``name``, integer ``pid``/``tid``, and (except metadata events) a
  non-negative numeric ``ts``;
* complete (``"X"``) events carry a non-negative ``dur``;
* counter (``"C"``) events carry numeric ``args`` — a dict-valued
  series (nesting one level too deep) is called out by name; NaN and
  infinite values are rejected everywhere a number is expected;
* counter series whose *name* follows the counter convention
  (``*_total``/``*_count``/``*.total``/``*.count``) must be monotone
  non-decreasing per track — gauge-like series (``queue_depth``,
  ``busy``, ``mu_busy``) go up and down by design and are exempt;
* ``process_name``/``thread_name`` metadata is declared at most once
  per ``pid`` / ``(pid, tid)``;
* per ``(pid, tid)`` track, ``ts`` is monotone non-decreasing — the
  exporter sorts by timestamp, and a violation means interleaved or
  corrupted tracks;
* a top-level embedded ``"metrics"`` payload (counters/gauges/
  histograms, see :mod:`repro.obs.metrics`) is checked for finite
  values, non-negative counters, ordered gauge samples, and
  internally-consistent histograms.

Run standalone as ``python -m repro.obs.validate trace.json``.
"""

from __future__ import annotations

import json
import math
import numbers
import sys
from typing import Any, Dict, List, Optional, Sequence


class TraceValidationError(ValueError):
    """Raised when a trace document violates the schema contract."""


#: Phases the exporter may emit, plus common phases other tools add.
KNOWN_PHASES = frozenset(
    {"X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "S", "T", "F"}
)

#: Counter-convention name endings: series named like this carry a
#: cumulative count and must never decrease on a track.
MONOTONE_SUFFIXES = ("_total", "_count", ".total", ".count")


def _is_counter_series(name: str) -> bool:
    """True when ``name`` follows the cumulative-counter convention."""
    return name.endswith(MONOTONE_SUFFIXES)


def _bad_number(value: Any) -> bool:
    """True unless ``value`` is a finite real number (bools excluded)."""
    return (
        not isinstance(value, numbers.Real)
        or isinstance(value, bool)
        or not math.isfinite(value)
    )


def metrics_errors(metrics: Any) -> List[str]:
    """Violations in an embedded ``"metrics"`` payload (empty = valid).

    Validates the :meth:`repro.obs.metrics.MetricsRegistry.as_dict`
    shape a capture rides along inside the trace JSON: counters are
    finite and non-negative, gauge samples are finite ``[ts, value]``
    pairs in non-decreasing time order, histogram counts reconcile
    with their total.  NaN/inf anywhere is an error — one poisoned
    sample silently corrupts every downstream aggregate.
    """
    errors: List[str] = []
    if not isinstance(metrics, dict):
        return [f"metrics: must be an object, got {type(metrics).__name__}"]

    counters = metrics.get("counters", {})
    if not isinstance(counters, dict):
        errors.append("metrics: counters must be an object")
        counters = {}
    for name, value in sorted(counters.items()):
        if _bad_number(value):
            errors.append(f"metrics: counter {name} must be finite")
        elif value < 0:
            errors.append(f"metrics: counter {name} is negative ({value})")

    gauges = metrics.get("gauges", {})
    if not isinstance(gauges, dict):
        errors.append("metrics: gauges must be an object")
        gauges = {}
    for name, gauge in sorted(gauges.items()):
        if not isinstance(gauge, dict):
            errors.append(f"metrics: gauge {name} must be an object")
            continue
        for key in ("last", "peak"):
            if key in gauge and _bad_number(gauge[key]):
                errors.append(
                    f"metrics: gauge {name}.{key} must be finite"
                )
        samples = gauge.get("samples", [])
        if not isinstance(samples, list):
            errors.append(f"metrics: gauge {name}.samples must be a list")
            continue
        previous_ts = None
        for index, sample in enumerate(samples):
            if not (
                isinstance(sample, (list, tuple)) and len(sample) == 2
            ):
                errors.append(
                    f"metrics: gauge {name}.samples[{index}] must be "
                    "a [ts, value] pair"
                )
                continue
            ts, value = sample
            if _bad_number(ts) or _bad_number(value):
                errors.append(
                    f"metrics: gauge {name}.samples[{index}] must be "
                    "finite"
                )
                continue
            if previous_ts is not None and ts < previous_ts:
                errors.append(
                    f"metrics: gauge {name}.samples[{index}] ts {ts} "
                    f"goes backwards (previous {previous_ts})"
                )
            previous_ts = ts

    histograms = metrics.get("histograms", {})
    if not isinstance(histograms, dict):
        errors.append("metrics: histograms must be an object")
        histograms = {}
    for name, hist in sorted(histograms.items()):
        if not isinstance(hist, dict):
            errors.append(f"metrics: histogram {name} must be an object")
            continue
        bounds = hist.get("bounds", [])
        if any(_bad_number(b) for b in bounds):
            errors.append(f"metrics: histogram {name} bounds must be finite")
        elif any(b <= a for a, b in zip(bounds, bounds[1:])):
            errors.append(
                f"metrics: histogram {name} bounds must increase"
            )
        counts = hist.get("counts", [])
        if any(_bad_number(c) or c < 0 for c in counts):
            errors.append(
                f"metrics: histogram {name} counts must be finite and "
                "non-negative"
            )
        elif "total" in hist and hist.get("total") != sum(counts):
            errors.append(
                f"metrics: histogram {name} total {hist.get('total')} "
                f"!= sum of counts {sum(counts)}"
            )
        if "sum" in hist and _bad_number(hist["sum"]):
            errors.append(f"metrics: histogram {name} sum must be finite")
    return errors


def validation_errors(document: Any) -> List[str]:
    """All schema violations in a trace document (empty = valid)."""
    errors: List[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["object-form trace has no traceEvents array"]
    elif isinstance(document, list):
        events = document
    else:
        return [f"trace must be an array or object, got {type(document).__name__}"]

    if isinstance(document, dict) and "metrics" in document:
        errors.extend(metrics_errors(document["metrics"]))

    last_ts: Dict[tuple, float] = {}
    counter_last: Dict[tuple, float] = {}
    named_threads: Dict[tuple, str] = {}
    named_processes: Dict[Any, str] = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an int")
        if phase == "M":
            # Track-naming metadata must be unambiguous: a second
            # process_name for a pid or thread_name for a (pid, tid)
            # would leave consumers (Perfetto, repro.obs.analyze)
            # guessing which label a track carries.
            declared = (event.get("args") or {}).get("name")
            if name == "process_name":
                pid = event.get("pid")
                if pid in named_processes:
                    errors.append(
                        f"{where}: duplicate process_name metadata for "
                        f"pid={pid} (already named "
                        f"{named_processes[pid]!r}, renamed {declared!r})"
                    )
                else:
                    named_processes[pid] = declared
            elif name == "thread_name":
                track = (event.get("pid"), event.get("tid"))
                if track in named_threads:
                    errors.append(
                        f"{where}: duplicate thread_name metadata for "
                        f"pid={track[0]} tid={track[1]} (already named "
                        f"{named_threads[track]!r}, renamed {declared!r})"
                    )
                else:
                    named_threads[track] = declared
            continue  # metadata: no timestamp requirement
        ts = event.get("ts")
        if not isinstance(ts, numbers.Real) or isinstance(ts, bool):
            errors.append(f"{where}: ts must be a number")
            continue
        if not math.isfinite(ts):
            errors.append(f"{where}: non-finite ts {ts}")
            continue
        if ts < 0:
            errors.append(f"{where}: negative ts {ts}")
        track = (event.get("pid"), event.get("tid"))
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, numbers.Real) or isinstance(dur, bool):
                errors.append(f"{where}: X event dur must be a number")
            elif not math.isfinite(dur):
                errors.append(f"{where}: non-finite dur {dur}")
            elif dur < 0:
                errors.append(f"{where}: negative dur {dur}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: C event needs non-empty args")
            else:
                for series, value in args.items():
                    if isinstance(value, dict):
                        # The most common producer bug: a dict-of-series
                        # value nested one level too deep.  Name the
                        # offending series rather than failing generically.
                        errors.append(
                            f"{where}: counter series "
                            f"{name}.{series} has a dict value; nested "
                            "series are not allowed — flatten each into "
                            "its own numeric args key"
                        )
                    elif not isinstance(value, numbers.Real) or isinstance(
                        value, bool
                    ):
                        errors.append(
                            f"{where}: C event args must be numeric "
                            f"(series {name}.{series} is "
                            f"{type(value).__name__})"
                        )
                    elif not math.isfinite(value):
                        errors.append(
                            f"{where}: counter series {name}.{series} "
                            f"has a non-finite value ({value})"
                        )
                    elif _is_counter_series(series) or _is_counter_series(
                        str(name)
                    ):
                        # Cumulative counters may never decrease; a dip
                        # means a producer reset or double-count bug.
                        mkey = (track, name, series)
                        previous = counter_last.get(mkey)
                        if previous is not None and value < previous:
                            errors.append(
                                f"{where}: counter series {name}.{series}"
                                f" decreased from {previous} to {value} "
                                f"on track pid={track[0]} tid={track[1]}"
                            )
                        counter_last[mkey] = (
                            value if previous is None
                            else max(value, previous)
                        )
        previous = last_ts.get(track)
        if previous is not None and ts < previous:
            errors.append(
                f"{where}: ts {ts} goes backwards on track "
                f"pid={track[0]} tid={track[1]} (previous {previous})"
            )
        last_ts[track] = max(ts, previous) if previous is not None else ts
    return errors


def validate_chrome_trace(document: Any) -> None:
    """Raise :class:`TraceValidationError` listing every violation."""
    errors = validation_errors(document)
    if errors:
        shown = "\n  ".join(errors[:20])
        suffix = "" if len(errors) <= 20 else f"\n  ... {len(errors) - 20} more"
        raise TraceValidationError(
            f"{len(errors)} trace schema violation(s):\n  {shown}{suffix}"
        )


def validate_file(path: str) -> int:
    """Validate a trace file; returns the number of events checked."""
    with open(path) as handle:
        document = json.load(handle)
    validate_chrome_trace(document)
    events = (
        document["traceEvents"] if isinstance(document, dict) else document
    )
    return len(events)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.obs.validate trace.json [...]``."""
    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            count = validate_file(path)
        except (OSError, json.JSONDecodeError, TraceValidationError) as exc:
            print(f"{path}: INVALID\n{exc}", file=sys.stderr)
            return 1
        print(f"{path}: ok ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
