"""Latency attribution, phase profiles, and measured parallelism.

Three programmatic answers the raw timeline only shows visually:

**Query latency attribution** — each query's end-to-end latency is
partitioned (exactly: the buckets sum to the latency) over what the
query was doing at every moment, by sweeping the boundaries of its
queued spans and its replica attempt spans:

``queued``
    waiting in the admission queue (inside a ``queued`` span);
``service``
    the first primary attempt in service, alone;
``retry``
    a later primary attempt in service, alone — host-level fault
    recovery time (the query is re-running because an attempt came
    back damaged);
``hedge``
    hedge exposure: ≥2 attempts racing, or a hedge attempt alone;
``other``
    uncovered host time (dispatch decisions, finalize gaps — ~0).

**Machine profiles** — per machine process (a traced
:class:`~repro.machine.simulator` run: the ``trace overload`` replicas
or a standalone ``trace propagate`` machine), time by pipeline phase
(``broadcast``/``wave``/``barrier``/``gather``/``execute``), ICN
transit time (summed per-message latency), fault-recovery activity,
and the per-instruction critical path aggregated by phase.

**Measured parallelism** — α per PROPAGATE from instruction-span args
(cross-checkable against :func:`repro.analysis.parallelism.measure_alpha`
on the same run) and β as the overlap depth of concurrent instruction
spans across the controller's pipeline lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .critpath import critical_path, summarize_path
from .reader import Span, TraceModel, Track

#: Process names with fixed roles in captures.
QUERIES_PROCESS = "queries"
HOST_PROCESS = "host"

#: Attribution bucket names, in report order.
BUCKETS = ("queued", "service", "retry", "hedge", "other")


# ----------------------------------------------------------------------
# Query latency attribution
# ----------------------------------------------------------------------
@dataclass
class QueryAttribution:
    """One query's end-to-end latency, partitioned into buckets."""

    query_id: int
    arrival_us: float
    finish_us: float
    status: str
    attempts: int
    hedges: int
    buckets: Dict[str, float] = field(default_factory=dict)
    #: Critical path through the query tree, time per segment kind.
    critical_path: Dict[str, float] = field(default_factory=dict)

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    def bucket_sum_us(self) -> float:
        return sum(self.buckets.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "query_id": self.query_id,
            "arrival_us": self.arrival_us,
            "finish_us": self.finish_us,
            "latency_us": self.latency_us,
            "status": self.status,
            "attempts": self.attempts,
            "hedges": self.hedges,
            "buckets": {k: self.buckets.get(k, 0.0) for k in BUCKETS},
            "critical_path": dict(self.critical_path),
        }


def _query_id_of(span: Span) -> Optional[int]:
    parts = span.name.split()
    if len(parts) == 2 and parts[0] == "query":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def _attempt_query_id(name: str) -> Optional[Tuple[int, bool]]:
    """``attempt q17`` -> (17, False); ``hedge q17`` -> (17, True)."""
    parts = name.split()
    if len(parts) == 2 and parts[1].startswith("q"):
        hedged = parts[0] == "hedge"
        if hedged or parts[0] == "attempt":
            try:
                return int(parts[1][1:]), hedged
            except ValueError:
                return None
    return None


def _collect_attempts(
    model: TraceModel,
) -> Dict[int, List[Tuple[float, float, bool]]]:
    """Per query id: replica attempt intervals ``(start, end, hedged)``
    in start order (= issue order, since the host serializes starts)."""
    attempts: Dict[int, List[Tuple[float, float, bool]]] = {}
    for track in model.tracks_of(HOST_PROCESS):
        if not track.thread.startswith("replica"):
            continue
        for span in track.all_spans():
            parsed = _attempt_query_id(span.name)
            if parsed is None:
                continue
            qid, hedged = parsed
            attempts.setdefault(qid, []).append(
                (span.start_us, span.end_us, hedged)
            )
    for intervals in attempts.values():
        intervals.sort()
    return attempts


def attribute_queries(model: TraceModel) -> List[QueryAttribution]:
    """Attribution for every query track in the capture, by query id.

    Every returned record satisfies ``sum(buckets) == latency`` to
    float precision — the invariant is asserted here, not only in
    tests, because a violation means the reader or the sweep broke.
    """
    attempts_by_query = _collect_attempts(model)
    out: List[QueryAttribution] = []
    for track in model.tracks_of(QUERIES_PROCESS):
        for root in track.spans:
            qid = _query_id_of(root)
            if qid is None:
                continue
            record = _attribute_one(
                root, qid, attempts_by_query.get(qid, []), track
            )
            drift = abs(record.bucket_sum_us() - record.latency_us)
            if drift > 1e-6 * max(1.0, record.latency_us):
                raise AssertionError(
                    f"attribution buckets for query {qid} sum to "
                    f"{record.bucket_sum_us()} != latency "
                    f"{record.latency_us}"
                )
            out.append(record)
    out.sort(key=lambda r: r.query_id)
    return out


def _attribute_one(
    root: Span,
    qid: int,
    attempts: Sequence[Tuple[float, float, bool]],
    track: Track,
) -> QueryAttribution:
    start, end = root.start_us, root.end_us
    clamp = lambda lo, hi: (max(lo, start), min(hi, end))  # noqa: E731
    queued = [
        clamp(c.start_us, c.end_us)
        for c in root.walk()
        if c is not root and c.name == "queued"
    ]
    clamped_attempts = [
        (*clamp(a, b), hedged) for a, b, hedged in attempts
    ]
    # The first non-hedged interval is the first primary attempt;
    # later non-hedged ones are retries after damage.
    first_primary: Optional[Tuple[float, float]] = None
    for a, b, hedged in clamped_attempts:
        if not hedged:
            first_primary = (a, b)
            break

    cuts = {start, end}
    for a, b in queued:
        cuts.update((a, b))
    for a, b, _ in clamped_attempts:
        cuts.update((a, b))
    ordered = sorted(c for c in cuts if start <= c <= end)

    buckets = {name: 0.0 for name in BUCKETS}
    for lo, hi in zip(ordered, ordered[1:]):
        width = hi - lo
        if width <= 0.0:
            continue
        mid = (lo + hi) / 2.0
        covering = [
            (a, b, hedged)
            for a, b, hedged in clamped_attempts
            if a <= mid < b
        ]
        if any(a <= mid < b for a, b in queued):
            buckets["queued"] += width
        elif len(covering) >= 2:
            buckets["hedge"] += width
        elif len(covering) == 1:
            a, b, hedged = covering[0]
            if hedged:
                buckets["hedge"] += width
            elif first_primary == (a, b):
                buckets["service"] += width
            else:
                buckets["retry"] += width
        else:
            buckets["other"] += width

    status = str(root.args.get("status", ""))
    if not status:
        # Fall back to the terminal instant on the query track.
        for instant in track.instants:
            if instant.name in ("served", "shed", "timed-out", "failed"):
                status = instant.name
    attempt_spans = [
        Span("hedge" if hedged else "attempt", a, b)
        for a, b, hedged in clamped_attempts
    ]
    path = critical_path(
        root,
        children_of=lambda s: (
            list(s.children) + attempt_spans if s is root else s.children
        ),
    )
    critical = summarize_path(
        path, rename=lambda name: "self" if name == root.name else name
    )
    return QueryAttribution(
        query_id=qid,
        arrival_us=start,
        finish_us=end,
        status=status,
        attempts=int(root.args.get("attempts", len(clamped_attempts))),
        hedges=int(root.args.get("hedges",
                                 sum(1 for *_, h in clamped_attempts if h))),
        buckets=buckets,
        critical_path=critical,
    )


def aggregate_buckets(
    records: Sequence[QueryAttribution],
) -> Dict[str, float]:
    """Bucket totals across queries (µs), in report order."""
    totals = {name: 0.0 for name in BUCKETS}
    for record in records:
        for name, value in record.buckets.items():
            totals[name] += value
    return totals


# ----------------------------------------------------------------------
# Machine profiles (pipeline phases, ICN transit, fault recovery)
# ----------------------------------------------------------------------
@dataclass
class MachineProfile:
    """Where one traced machine's time went."""

    process: str
    #: Sum of instruction-span durations across pipeline lanes.
    instruction_us: float = 0.0
    #: Time per pipeline phase (broadcast/wave/barrier/gather/execute).
    phase_us: Dict[str, float] = field(default_factory=dict)
    #: Summed per-message ICN transit latency.
    icn_transit_us: float = 0.0
    #: SCP-timeout penalty time (the only fault with a duration).
    fault_penalty_us: float = 0.0
    #: Fault-track event counts by name (replays, reroutes, ...).
    fault_events: Dict[str, int] = field(default_factory=dict)
    #: Per-instruction critical path, aggregated by phase name.
    critical_path: Dict[str, float] = field(default_factory=dict)
    instructions: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "process": self.process,
            "instructions": self.instructions,
            "instruction_us": self.instruction_us,
            "phase_us": dict(self.phase_us),
            "icn_transit_us": self.icn_transit_us,
            "fault_penalty_us": self.fault_penalty_us,
            "fault_events": dict(self.fault_events),
            "critical_path": dict(self.critical_path),
        }


def machine_processes(model: TraceModel) -> List[str]:
    """Processes that carry controller pipeline lanes (machine runs)."""
    return [
        process
        for process in model.processes()
        if any(
            t.thread.startswith("pipe ") for t in model.tracks_of(process)
        )
    ]


def _lane_instruction_spans(model: TraceModel, process: str) -> List[Span]:
    spans: List[Span] = []
    for track in model.tracks_of(process):
        if track.thread.startswith("pipe "):
            spans.extend(track.spans)
    spans.sort(key=lambda s: (s.start_us, s.end_us))
    return spans


def machine_profile(model: TraceModel, process: str) -> MachineProfile:
    """Phase/ICN/fault attribution of one machine process."""
    profile = MachineProfile(process=process)
    for instr in _lane_instruction_spans(model, process):
        profile.instructions += 1
        profile.instruction_us += instr.duration_us
        for phase in instr.children:
            profile.phase_us[phase.name] = (
                profile.phase_us.get(phase.name, 0.0) + phase.duration_us
            )
        for segment, value in summarize_path(
            critical_path(instr)
        ).items():
            key = "issue" if segment == instr.name else segment
            profile.critical_path[key] = (
                profile.critical_path.get(key, 0.0) + value
            )
    for track in model.tracks_of(process):
        for instant in track.instants:
            if instant.name == "msg-send":
                profile.icn_transit_us += float(
                    instant.args.get("latency_us", 0.0)
                )
        if track.thread == "faults":
            for instant in track.instants:
                profile.fault_events[instant.name] = (
                    profile.fault_events.get(instant.name, 0) + 1
                )
                if instant.name == "scp-timeout":
                    profile.fault_penalty_us += float(
                        instant.args.get("penalty_us", 0.0)
                    )
    profile.phase_us = dict(
        sorted(profile.phase_us.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    profile.critical_path = dict(
        sorted(profile.critical_path.items(),
               key=lambda kv: (-kv[1], kv[0]))
    )
    return profile


# ----------------------------------------------------------------------
# Utilization and overlap-depth (measured α / β)
# ----------------------------------------------------------------------
def overlap_profile(
    intervals: Sequence[Tuple[float, float]],
) -> Dict[int, float]:
    """Time spent at each concurrency depth ≥ 1 (a sweep line)."""
    events: List[Tuple[float, int]] = []
    for a, b in intervals:
        if b > a:
            events.append((a, 1))
            events.append((b, -1))
    events.sort()
    profile: Dict[int, float] = {}
    depth = 0
    previous = None
    for ts, delta in events:
        if previous is not None and depth > 0 and ts > previous:
            profile[depth] = profile.get(depth, 0.0) + (ts - previous)
        depth += delta
        previous = ts
    return profile


@dataclass
class TrackUtilization:
    """Busy time of one track over the capture's extent."""

    process: str
    thread: str
    busy_us: float
    extent_us: float
    peak_overlap: int

    @property
    def busy_fraction(self) -> float:
        return self.busy_us / self.extent_us if self.extent_us > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "process": self.process,
            "thread": self.thread,
            "busy_us": self.busy_us,
            "extent_us": self.extent_us,
            "busy_fraction": self.busy_fraction,
            "peak_overlap": self.peak_overlap,
        }


def track_utilization(
    model: TraceModel, extent_us: Optional[float] = None
) -> List[TrackUtilization]:
    """Per-track busy time (union of top-level spans) over the run.

    ``extent_us`` defaults to the capture's full extent so fractions
    are comparable across tracks.
    """
    horizon = extent_us if extent_us is not None else model.end_us
    rows: List[TrackUtilization] = []
    for track in model.tracks:
        if not track.spans:
            continue
        profile = overlap_profile(
            [(s.start_us, s.end_us) for s in track.spans]
        )
        rows.append(
            TrackUtilization(
                process=track.process,
                thread=track.thread,
                busy_us=sum(profile.values()),
                extent_us=horizon,
                peak_overlap=max(profile, default=0),
            )
        )
    return rows


@dataclass
class MeasuredParallelism:
    """α / β measured from the trace of one machine process.

    Field names mirror :class:`repro.analysis.parallelism.ParallelismStats`
    so the cross-check is a direct comparison.
    """

    process: str
    alpha_min: int = 0
    alpha_max: int = 0
    alpha_mean: float = 0.0
    propagates: int = 0
    beta_max: int = 0
    beta_mean: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "process": self.process,
            "alpha_min": self.alpha_min,
            "alpha_max": self.alpha_max,
            "alpha_mean": round(self.alpha_mean, 1),
            "propagates": self.propagates,
            "beta_max": self.beta_max,
            "beta_mean": round(self.beta_mean, 2),
        }


def measured_parallelism(
    model: TraceModel, process: str
) -> MeasuredParallelism:
    """α from PROPAGATE span args, β from lane overlap depth."""
    spans = _lane_instruction_spans(model, process)
    alphas = [
        int(s.args["alpha"])
        for s in spans
        if s.args.get("opcode") == "PROPAGATE" and "alpha" in s.args
    ]
    profile = overlap_profile([(s.start_us, s.end_us) for s in spans])
    busy = sum(profile.values())
    result = MeasuredParallelism(process=process)
    if alphas:
        result.alpha_min = min(alphas)
        result.alpha_max = max(alphas)
        result.alpha_mean = sum(alphas) / len(alphas)
        result.propagates = len(alphas)
    if profile:
        result.beta_max = max(profile)
        result.beta_mean = (
            sum(depth * time for depth, time in profile.items()) / busy
        )
    return result
