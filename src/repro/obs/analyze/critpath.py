"""Critical-path extraction over reconstructed span trees.

The question a Perfetto timeline cannot answer programmatically:
*which activity actually determined the end time?*  Given a root span
and its (possibly cross-track) children, the critical path is built
by walking backwards from the root's end:

* the child that finishes **last** at or before the current cursor is
  the activity the parent was waiting on — its interval joins the
  path and the cursor jumps to that child's start;
* gaps not covered by any child are the parent's **self time**
  (dispatch decisions, queue management, barrier cost booked on the
  parent);
* recursion descends into each on-path child with the same rule.

The resulting segments partition ``[root.start, root.end]`` exactly —
no overlaps, no holes — so the path duration equals the root span's
duration (and can never exceed it), which is the invariant the
property tests pin.

Children whose intervals poke outside the root (possible for
cross-track children like replica attempt spans joined onto a query
tree) are clamped to the root's interval first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .reader import Span


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path, attributed to a span name."""

    name: str
    start_us: float
    end_us: float
    #: Nesting depth (0 = the root span's own self time).
    depth: int = 0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


def critical_path(
    root: Span,
    children_of: Optional[Callable[[Span], Sequence[Span]]] = None,
) -> List[PathSegment]:
    """The segments that determined ``root``'s end time, in time order.

    ``children_of`` supplies each span's children; the default is the
    tree built by the reader (``span.children``).  Pass a custom
    callable to graft cross-track children (e.g. a query's replica
    attempt spans) into the walk.
    """
    if children_of is None:
        children_of = lambda span: span.children  # noqa: E731
    segments: List[PathSegment] = []
    _walk(root, root.start_us, root.end_us, 0, children_of, segments)
    segments.reverse()
    return segments


def _walk(
    span: Span,
    start_us: float,
    end_us: float,
    depth: int,
    children_of: Callable[[Span], Sequence[Span]],
    out: List[PathSegment],
) -> None:
    """Emit ``span``'s path segments over ``[start_us, end_us]``,
    latest first (the caller reverses once at the end)."""
    cursor = end_us
    ordered = sorted(
        (c for c in children_of(span) if c.end_us > start_us
         and c.start_us < cursor),
        key=lambda c: c.end_us,
    )
    while ordered and cursor > start_us:
        child = ordered.pop()
        if child.start_us >= cursor:
            # Fully covered by an already-walked (later-ending) sibling.
            continue
        child_end = min(child.end_us, cursor)
        child_start = max(child.start_us, start_us)
        if child_end < cursor:
            out.append(PathSegment(span.name, child_end, cursor, depth))
        _walk(child, child_start, child_end, depth + 1, children_of, out)
        cursor = child_start
    if cursor > start_us:
        out.append(PathSegment(span.name, start_us, cursor, depth))


def path_duration_us(segments: Sequence[PathSegment]) -> float:
    """Total time on the path (== the root duration, by construction)."""
    return sum(s.duration_us for s in segments)


def summarize_path(
    segments: Sequence[PathSegment],
    rename: Optional[Callable[[str], str]] = None,
) -> Dict[str, float]:
    """Time on the path per segment name, largest share first.

    ``rename`` normalizes names before grouping (e.g. ``attempt q17``
    and ``attempt q29`` both to ``attempt``) so paths aggregate across
    queries or instructions.
    """
    totals: Dict[str, float] = {}
    for segment in segments:
        key = rename(segment.name) if rename is not None else segment.name
        totals[key] = totals.get(key, 0.0) + segment.duration_us
    return dict(
        sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    )
