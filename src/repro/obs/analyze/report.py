"""The analysis engine's front door: run everything, render markdown.

:func:`analyze_document` composes the subpackage — reader, query
attribution, machine profiles, measured parallelism, utilization,
anomalies, and the drift snapshot — into one :class:`TraceAnalysis`
record with deterministic (byte-stable for a given capture) markdown
rendering, which is what ``python -m repro analyze`` prints or writes.

Also home to the CLI: ``python -m repro analyze TRACE [--report out.md]
[--compare golden.json] [--snapshot-out snap.json] [--json out.json]``.
``TRACE`` may be a trace JSON *or* a snapshot JSON (bench / runner
snapshots go through the same drift gate); ``--compare`` exits
non-zero on drift beyond the golden's tolerance bands.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .attribution import (
    BUCKETS,
    MachineProfile,
    MeasuredParallelism,
    QueryAttribution,
    TrackUtilization,
    aggregate_buckets,
    attribute_queries,
    machine_processes,
    machine_profile,
    measured_parallelism,
    track_utilization,
)
from .drift import (
    Anomaly,
    DriftReport,
    compare_snapshots,
    find_anomalies,
    is_snapshot,
    snapshot_from_metrics,
)
from .reader import TraceModel, read_document

#: Queries shown individually in the report (slowest first).
TOP_QUERIES = 5


@dataclass
class TraceAnalysis:
    """Everything the engine derived from one capture."""

    model: TraceModel
    queries: List[QueryAttribution] = field(default_factory=list)
    machine_profiles: List[MachineProfile] = field(default_factory=list)
    parallelism: List[MeasuredParallelism] = field(default_factory=list)
    utilization: List[TrackUtilization] = field(default_factory=list)
    anomalies: List[Anomaly] = field(default_factory=list)
    #: Drift-comparable snapshot of the embedded metrics (None when
    #: the capture carried no metrics registry).
    snapshot: Optional[Dict[str, Any]] = None
    drift: Optional[DriftReport] = None

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (the ``--json`` output)."""
        return {
            "capture": self.model.capture,
            "queries": [q.as_dict() for q in self.queries],
            "query_buckets_us": aggregate_buckets(self.queries),
            "machine_profiles": [p.as_dict() for p in self.machine_profiles],
            "parallelism": [p.as_dict() for p in self.parallelism],
            "utilization": [u.as_dict() for u in self.utilization],
            "anomalies": [
                {"kind": a.kind, "where": a.where, "detail": a.detail}
                for a in self.anomalies
            ],
            "snapshot": self.snapshot,
            "drift_ok": self.drift.ok if self.drift else None,
        }

    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Deterministic human-readable report."""
        lines: List[str] = ["# Trace analysis"]
        capture = self.model.capture or {}
        if capture:
            lines.append("")
            lines.append("## Capture")
            lines.append("")
            for key in sorted(capture):
                lines.append(f"- {key}: {capture[key]}")
        lines += self._render_queries()
        lines += self._render_machines()
        lines += self._render_parallelism()
        lines += self._render_utilization()
        lines.append("")
        lines.append("## Anomalies")
        lines.append("")
        if self.anomalies:
            for anomaly in self.anomalies:
                lines.append(f"- {anomaly.describe()}")
        else:
            lines.append("- none detected")
        if self.drift is not None:
            lines.append("")
            lines.append("## Drift vs golden")
            lines.append("")
            for entry in self.drift.describe():
                lines.append(f"- {entry}")
        return "\n".join(lines) + "\n"

    def _render_queries(self) -> List[str]:
        if not self.queries:
            return []
        totals = aggregate_buckets(self.queries)
        grand = sum(totals.values())
        lines = ["", "## Query latency attribution", ""]
        lines.append(
            f"{len(self.queries)} queries, "
            f"{_us(grand)} total latency; buckets sum to each query's "
            "end-to-end latency."
        )
        lines.append("")
        lines.append("| bucket | total | share |")
        lines.append("|---|---:|---:|")
        for name in BUCKETS:
            value = totals[name]
            share = value / grand if grand else 0.0
            lines.append(f"| {name} | {_us(value)} | {share:.1%} |")
        slowest = sorted(
            self.queries, key=lambda q: (-q.latency_us, q.query_id)
        )[:TOP_QUERIES]
        lines.append("")
        lines.append(f"Slowest {len(slowest)} queries:")
        lines.append("")
        lines.append(
            "| query | status | latency | "
            + " | ".join(BUCKETS)
            + " | critical path |"
        )
        lines.append("|---:|---|---:|" + "---:|" * len(BUCKETS) + "---|")
        for q in slowest:
            path = ", ".join(
                f"{name} {_us(value)}"
                for name, value in list(q.critical_path.items())[:3]
            )
            cells = " | ".join(_us(q.buckets.get(b, 0.0)) for b in BUCKETS)
            lines.append(
                f"| {q.query_id} | {q.status} | {_us(q.latency_us)} | "
                f"{cells} | {path} |"
            )
        return lines

    def _render_machines(self) -> List[str]:
        if not self.machine_profiles:
            return []
        lines = ["", "## Machine time attribution", ""]
        for profile in self.machine_profiles:
            lines.append(
                f"### {profile.process} "
                f"({profile.instructions} instructions, "
                f"{_us(profile.instruction_us)} pipeline time)"
            )
            lines.append("")
            lines.append("| phase | time | on critical path |")
            lines.append("|---|---:|---:|")
            for phase, value in profile.phase_us.items():
                lines.append(
                    f"| {phase} | {_us(value)} | "
                    f"{_us(profile.critical_path.get(phase, 0.0))} |"
                )
            lines.append(
                f"| icn transit | {_us(profile.icn_transit_us)} | — |"
            )
            if profile.fault_penalty_us or profile.fault_events:
                events = ", ".join(
                    f"{name} ×{count}"
                    for name, count in sorted(profile.fault_events.items())
                )
                lines.append(
                    f"| fault recovery | {_us(profile.fault_penalty_us)} "
                    f"| — |"
                )
                lines.append("")
                lines.append(f"Fault events: {events}")
            lines.append("")
        return lines[:-1]

    def _render_parallelism(self) -> List[str]:
        if not self.parallelism:
            return []
        lines = ["", "## Measured parallelism", ""]
        lines.append(
            "| process | α min | α max | α mean | propagates "
            "| β max | β mean |"
        )
        lines.append("|---|---:|---:|---:|---:|---:|---:|")
        for p in self.parallelism:
            lines.append(
                f"| {p.process} | {p.alpha_min} | {p.alpha_max} | "
                f"{p.alpha_mean:.1f} | {p.propagates} | {p.beta_max} | "
                f"{p.beta_mean:.2f} |"
            )
        return lines

    def _render_utilization(self) -> List[str]:
        rows = [u for u in self.utilization if u.busy_us > 0]
        if not rows:
            return []
        rows.sort(key=lambda u: (-u.busy_fraction, u.process, u.thread))
        lines = ["", "## Track utilization (top 15 by busy fraction)", ""]
        lines.append("| track | busy | fraction | peak overlap |")
        lines.append("|---|---:|---:|---:|")
        for u in rows[:15]:
            lines.append(
                f"| {u.process}/{u.thread} | {_us(u.busy_us)} | "
                f"{u.busy_fraction:.1%} | {u.peak_overlap} |"
            )
        return lines


def _us(value: float) -> str:
    """Fixed, deterministic µs formatting."""
    if value >= 1e6:
        return f"{value / 1e6:.3f} s"
    if value >= 1e3:
        return f"{value / 1e3:.3f} ms"
    return f"{value:.1f} us"


# ----------------------------------------------------------------------
def analyze_document(document: Any) -> TraceAnalysis:
    """Run the full engine over a Chrome-trace document (or model)."""
    model = (
        document if isinstance(document, TraceModel)
        else read_document(document)
    )
    analysis = TraceAnalysis(model=model)
    analysis.queries = attribute_queries(model)
    for process in machine_processes(model):
        analysis.machine_profiles.append(machine_profile(model, process))
        analysis.parallelism.append(measured_parallelism(model, process))
    analysis.utilization = track_utilization(model)
    analysis.anomalies = find_anomalies(model)
    if model.metrics is not None:
        workload = (model.capture or {}).get("workload")
        analysis.snapshot = snapshot_from_metrics(
            model.metrics, workload=workload
        )
    return analysis


def analyze_file(path: str) -> TraceAnalysis:
    """Load a trace JSON file and analyze it."""
    with open(path) as handle:
        return analyze_document(json.load(handle))


def analyze_tracer(tracer, metrics=None) -> TraceAnalysis:
    """Analyze a live :class:`repro.obs.tracer.Tracer` capture."""
    from .reader import from_tracer

    return analyze_document(from_tracer(tracer, metrics=metrics))


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro analyze TRACE [options]``.

    Exit codes: 0 = analyzed (no drift, or no golden given);
    1 = drift beyond the golden's tolerance; 2 = bad input.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="critical paths, latency attribution, and metric "
                    "drift from a Perfetto trace capture",
    )
    parser.add_argument(
        "trace",
        help="trace JSON from `python -m repro trace` (a metrics "
             "snapshot JSON is also accepted for drift-only checks)",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="write the markdown report here (default: stdout)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the full analysis record as JSON",
    )
    parser.add_argument(
        "--compare", metavar="GOLDEN",
        help="golden snapshot JSON; exit 1 on drift beyond tolerance",
    )
    parser.add_argument(
        "--snapshot-out", metavar="PATH",
        help="write this run's metrics snapshot (golden regeneration)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    if is_snapshot(document):
        # Snapshot-only input: no trace model, just the drift gate.
        analysis = TraceAnalysis(model=TraceModel())
        analysis.snapshot = document
    else:
        try:
            analysis = analyze_document(document)
        except ValueError as exc:
            print(f"error: {args.trace}: {exc}", file=sys.stderr)
            return 2

    if args.compare:
        if analysis.snapshot is None:
            print(
                "error: --compare needs a capture with embedded metrics "
                "(or a snapshot input)",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.compare) as handle:
                golden = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot read golden {args.compare}: {exc}",
                file=sys.stderr,
            )
            return 2
        analysis.drift = compare_snapshots(analysis.snapshot, golden)

    if args.snapshot_out:
        if analysis.snapshot is None:
            print(
                "error: --snapshot-out needs a capture with embedded "
                "metrics",
                file=sys.stderr,
            )
            return 2
        with open(args.snapshot_out, "w") as handle:
            json.dump(analysis.snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.snapshot_out}")

    rendered = analysis.to_markdown()
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.report}")
    elif analysis.model.tracks:
        print(rendered, end="")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(analysis.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if analysis.drift is not None:
        for line in analysis.drift.describe():
            print(line)
        if not analysis.drift.ok:
            print("drift gate: FAIL", file=sys.stderr)
            return 1
        print("drift gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
