"""Metric-drift gating and structural anomaly detection.

**Snapshots.**  A snapshot is a flat ``{dotted.key: number}`` view of
a run's metrics (or any nested numeric record — the bench and the
experiments runner emit theirs through the same flattener), wrapped
with a tolerance policy::

    {
      "kind": "repro-metrics-snapshot",
      "workload": "overload",
      "tolerance": {"default_rel": 0.02, "overrides": {"host.queue": 0.1}},
      "values": {"counters.host.queries": 150, ...}
    }

The simulator is deterministic, so a byte-identical re-capture
compares equal; the tolerance band exists for *intentional* changes —
it defines how much a PR may move each metric before the CI gate
demands a golden regeneration (``docs/OBSERVABILITY.md``).

**Comparison.**  Every golden key must be present and within
``max(rel · |golden|, abs_floor)`` of its golden value.  Keys only in
the current run are reported as informational (new instrumentation
must not fail the gate).  Override patterns are prefix matches on the
flattened key, longest prefix wins.

**Anomalies.**  Structural smells a schema-valid trace can still
carry: spans force-closed at end of capture (``open_at_eof``),
circuit-breaker flapping, and monotone admission-queue growth.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .reader import TraceModel

#: Relative tolerance applied when a golden names no override.
DEFAULT_REL_TOLERANCE = 0.02

#: Snapshot document marker (so `analyze` can sniff snapshot inputs).
SNAPSHOT_KIND = "repro-metrics-snapshot"


def flatten_numeric(record: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts/lists to ``{dotted.key: number}``.

    Non-numeric leaves (strings, None) and booleans are dropped; list
    items are keyed by index.  Gauge sample series (lists of pairs)
    are deliberately excluded upstream — snapshots carry summaries,
    not timelines.
    """
    flat: Dict[str, float] = {}
    if isinstance(record, Mapping):
        for key, value in record.items():
            flat.update(flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(record, (list, tuple)):
        for index, value in enumerate(record):
            flat.update(flatten_numeric(value, f"{prefix}{index}."))
    elif isinstance(record, numbers.Real) and not isinstance(record, bool):
        flat[prefix[:-1]] = float(record)
    return flat


def snapshot_from_metrics(
    metrics: Mapping[str, Any],
    workload: Optional[str] = None,
    default_rel: float = DEFAULT_REL_TOLERANCE,
    overrides: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Snapshot of a ``MetricsRegistry.as_dict()`` dump.

    Counters flatten as-is; gauges keep only ``last``/``peak``;
    histograms keep counts/total/sum/mean/percentiles (everything the
    registry emits except gauge sample series).
    """
    values: Dict[str, Any] = {}
    for name, value in (metrics.get("counters") or {}).items():
        values[f"counters.{name}"] = value
    for name, gauge in (metrics.get("gauges") or {}).items():
        values[f"gauges.{name}.last"] = gauge.get("last")
        values[f"gauges.{name}.peak"] = gauge.get("peak")
    for name, hist in (metrics.get("histograms") or {}).items():
        values[f"histograms.{name}"] = {
            k: v for k, v in hist.items() if k != "bounds"
        }
    return make_snapshot(
        values, workload=workload, default_rel=default_rel,
        overrides=overrides,
    )


def make_snapshot(
    values: Mapping[str, Any],
    workload: Optional[str] = None,
    default_rel: float = DEFAULT_REL_TOLERANCE,
    overrides: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Wrap (and flatten) a numeric record as a snapshot document."""
    return {
        "kind": SNAPSHOT_KIND,
        "workload": workload,
        "tolerance": {
            "default_rel": default_rel,
            "overrides": dict(overrides or {}),
        },
        "values": flatten_numeric(dict(values)),
    }


def is_snapshot(document: Any) -> bool:
    """True when ``document`` is a snapshot (vs a trace)."""
    return (
        isinstance(document, dict)
        and document.get("kind") == SNAPSHOT_KIND
    )


# ----------------------------------------------------------------------
@dataclass
class DriftFinding:
    """One key's comparison against the golden."""

    key: str
    golden: Optional[float]
    current: Optional[float]
    allowed: float
    #: "ok" | "drift" | "missing" | "new"
    verdict: str

    def describe(self) -> str:
        if self.verdict == "missing":
            return f"{self.key}: missing (golden {self.golden:g})"
        if self.verdict == "new":
            return f"{self.key}: new metric (current {self.current:g})"
        delta = (self.current or 0.0) - (self.golden or 0.0)
        return (
            f"{self.key}: golden {self.golden:g} -> current "
            f"{self.current:g} (delta {delta:+g}, allowed "
            f"±{self.allowed:g})"
        )


@dataclass
class DriftReport:
    """Outcome of one snapshot-vs-golden comparison."""

    workload: Optional[str]
    checked: int = 0
    failures: List[DriftFinding] = field(default_factory=list)
    new_keys: List[DriftFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> List[str]:
        lines = [
            f"compared {self.checked} metric(s)"
            + (f" for workload {self.workload!r}" if self.workload else "")
        ]
        for finding in self.failures:
            lines.append(f"DRIFT {finding.describe()}")
        for finding in self.new_keys:
            lines.append(f"note  {finding.describe()}")
        if self.ok:
            lines.append("no drift beyond tolerance")
        return lines


def _tolerance_for(key: str, tolerance: Mapping[str, Any]) -> float:
    """Relative tolerance for a key: longest matching override prefix,
    else the default."""
    overrides = tolerance.get("overrides") or {}
    best: Optional[str] = None
    for prefix in overrides:
        if key.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    if best is not None:
        return float(overrides[best])
    return float(tolerance.get("default_rel", DEFAULT_REL_TOLERANCE))


def compare_snapshots(
    current: Mapping[str, Any],
    golden: Mapping[str, Any],
    abs_floor: float = 0.0,
) -> DriftReport:
    """Compare a current snapshot against a golden one.

    The *golden's* tolerance policy governs (it is the checked-in
    contract).  ``abs_floor`` widens every band additively — useful
    when a caller compares records with legitimate noise.
    """
    golden_values = golden.get("values") or {}
    current_values = current.get("values") or {}
    tolerance = golden.get("tolerance") or {}
    report = DriftReport(workload=golden.get("workload"))
    for key in sorted(golden_values):
        want = float(golden_values[key])
        report.checked += 1
        rel = _tolerance_for(key, tolerance)
        allowed = max(rel * abs(want), abs_floor)
        have = current_values.get(key)
        if have is None:
            report.failures.append(
                DriftFinding(key, want, None, allowed, "missing")
            )
        elif abs(float(have) - want) > allowed:
            report.failures.append(
                DriftFinding(key, want, float(have), allowed, "drift")
            )
    for key in sorted(set(current_values) - set(golden_values)):
        report.new_keys.append(
            DriftFinding(key, None, float(current_values[key]), 0.0, "new")
        )
    return report


# ----------------------------------------------------------------------
# Structural anomaly checks
# ----------------------------------------------------------------------
@dataclass
class Anomaly:
    """One structural smell found in a trace."""

    kind: str
    where: str
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.where}: {self.detail}"


#: Breaker opens on one replica at or above this count = flapping.
BREAKER_FLAP_THRESHOLD = 3

#: Primary-region changes on one shard's track at or above this count
#: = failover flapping.  A clean outage-and-repair cycle costs two
#: changes (away from home, back home); three or more within one
#: capture means serving is oscillating between replicas.
FAILOVER_FLAP_THRESHOLD = 3

#: Minimum queue-depth samples before the monotone-growth check fires.
QUEUE_TREND_MIN_SAMPLES = 8


def find_anomalies(model: TraceModel) -> List[Anomaly]:
    """Structural checks over the reconstructed capture."""
    anomalies: List[Anomaly] = []
    for track in model.tracks:
        where = f"{track.process}/{track.thread}"
        open_spans = [s for s in track.all_spans() if s.open_at_eof]
        if open_spans:
            names = ", ".join(sorted({s.name for s in open_spans})[:5])
            anomalies.append(
                Anomaly(
                    "open-span", where,
                    f"{len(open_spans)} span(s) still open at end of "
                    f"capture ({names}) — aborted or unterminated work",
                )
            )
        opens = sum(
            1 for i in track.instants if i.name == "breaker-open"
        )
        if opens >= BREAKER_FLAP_THRESHOLD:
            anomalies.append(
                Anomaly(
                    "breaker-flapping", where,
                    f"circuit breaker opened {opens} times — the "
                    "replica oscillates between probe and trip",
                )
            )
        failovers = sum(
            1 for i in track.instants if i.name == "failover"
        )
        if failovers >= FAILOVER_FLAP_THRESHOLD:
            anomalies.append(
                Anomaly(
                    "failover-flapping", where,
                    f"serving primary changed {failovers} times — the "
                    "shard oscillates between replicas (a clean "
                    "outage/repair cycle costs two changes)",
                )
            )
        for series, samples in track.counters.items():
            if "queue" not in series:
                continue
            if len(samples) < QUEUE_TREND_MIN_SAMPLES:
                continue
            depths = [value for _, value in samples]
            nondecreasing = all(
                b >= a for a, b in zip(depths, depths[1:])
            )
            if nondecreasing and depths[-1] > depths[0]:
                anomalies.append(
                    Anomaly(
                        "queue-growth", where,
                        f"counter {series!r} grows monotonically "
                        f"({depths[0]:g} -> {depths[-1]:g} over "
                        f"{len(depths)} samples) — unbounded backlog",
                    )
                )
    return anomalies
