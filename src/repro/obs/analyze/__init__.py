"""Trace-analysis engine over :mod:`repro.obs` captures.

Ingests a Chrome-trace/Perfetto JSON capture (or a live tracer) back
into span trees, then answers what the timeline only shows visually:
critical paths, latency attribution, measured parallelism, structural
anomalies, and metric drift against golden snapshots.

CLI: ``python -m repro analyze TRACE [--report out.md]
[--compare golden.json]``.
"""

from .attribution import (
    BUCKETS,
    MachineProfile,
    MeasuredParallelism,
    QueryAttribution,
    TrackUtilization,
    aggregate_buckets,
    attribute_queries,
    machine_processes,
    machine_profile,
    measured_parallelism,
    overlap_profile,
    track_utilization,
)
from .critpath import (
    PathSegment,
    critical_path,
    path_duration_us,
    summarize_path,
)
from .drift import (
    Anomaly,
    DriftFinding,
    DriftReport,
    compare_snapshots,
    find_anomalies,
    flatten_numeric,
    is_snapshot,
    make_snapshot,
    snapshot_from_metrics,
)
from .reader import (
    Instant,
    Span,
    Track,
    TraceModel,
    from_tracer,
    read_document,
    read_file,
)
from .report import (
    TraceAnalysis,
    analyze_document,
    analyze_file,
    analyze_tracer,
    main,
)

__all__ = [
    "Anomaly",
    "BUCKETS",
    "DriftFinding",
    "DriftReport",
    "Instant",
    "MachineProfile",
    "MeasuredParallelism",
    "PathSegment",
    "QueryAttribution",
    "Span",
    "Track",
    "TraceAnalysis",
    "TraceModel",
    "TrackUtilization",
    "aggregate_buckets",
    "analyze_document",
    "analyze_file",
    "analyze_tracer",
    "attribute_queries",
    "compare_snapshots",
    "critical_path",
    "find_anomalies",
    "flatten_numeric",
    "from_tracer",
    "is_snapshot",
    "machine_processes",
    "machine_profile",
    "main",
    "make_snapshot",
    "measured_parallelism",
    "overlap_profile",
    "path_duration_us",
    "read_document",
    "read_file",
    "snapshot_from_metrics",
    "summarize_path",
    "track_utilization",
]
