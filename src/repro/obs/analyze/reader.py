"""Trace ingestion: Chrome-trace JSON back into span trees and series.

The exporter (:mod:`repro.obs.chrome`) flattens a capture into the
Chrome trace-event format; this module is its inverse.  It rebuilds,
per ``(pid, tid)`` track:

* a **span forest** — complete (``"X"``) events nested by interval
  containment, in event order (the exporter emits parents before
  children at equal timestamps, so a simple stack reproduces the
  original nesting);
* the **instant list** (``"i"`` events) in timestamp order;
* **counter series** (``"C"`` events) keyed by series name — a
  multi-series counter event (one timestamp, named values) becomes
  one series per ``args`` key, named ``event.key``.

Track identity comes from the ``process_name``/``thread_name``
metadata events; unnamed tracks get ``pid N``/``tid N`` placeholders.
Extra top-level keys of the object form (``metrics``, ``capture``)
ride along on the :class:`TraceModel` so the analyzer sees the whole
artifact.

Inputs are validated with :mod:`repro.obs.validate` before any model
is built — a malformed document fails with the validator's explicit
per-event messages, not a reader crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..validate import validate_chrome_trace


@dataclass
class Span:
    """One reconstructed interval, with its nested children."""

    name: str
    start_us: float
    end_us: float
    args: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def open_at_eof(self) -> bool:
        """True when the tracer force-closed this span at end of run."""
        return bool(self.args.get("open_at_eof"))

    def contains(self, other: "Span") -> bool:
        """Interval containment (the nesting criterion)."""
        return (
            other.start_us >= self.start_us and other.end_us <= self.end_us
        )

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def self_time_us(self) -> float:
        """Duration not covered by any child (children never overlap
        on one track, so a plain sum is exact)."""
        return self.duration_us - sum(c.duration_us for c in self.children)


@dataclass
class Instant:
    """One point event."""

    name: str
    ts_us: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Track:
    """Everything captured on one ``(process, thread)`` pair."""

    process: str
    thread: str
    pid: int
    tid: int
    #: Roots of the span forest, in start order.
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    #: Series name -> ``[(ts, value), ...]`` in timestamp order.
    counters: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    def all_spans(self) -> Iterator[Span]:
        """Every span on the track, depth-first."""
        for root in self.spans:
            yield from root.walk()

    @property
    def extent_us(self) -> Tuple[float, float]:
        """Earliest and latest timestamp on the track (0, 0 if empty)."""
        starts: List[float] = [s.start_us for s in self.spans]
        ends: List[float] = [s.end_us for s in self.spans]
        starts += [i.ts_us for i in self.instants]
        ends += [i.ts_us for i in self.instants]
        for series in self.counters.values():
            starts.append(series[0][0])
            ends.append(series[-1][0])
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))


@dataclass
class TraceModel:
    """The reconstructed capture: tracks plus document extras."""

    tracks: List[Track] = field(default_factory=list)
    #: The embedded ``MetricsRegistry`` dump, when present.
    metrics: Optional[Dict[str, Any]] = None
    #: The ``python -m repro trace`` capture envelope, when present.
    capture: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def processes(self) -> List[str]:
        """Distinct process names, in first-seen order."""
        seen: List[str] = []
        for track in self.tracks:
            if track.process not in seen:
                seen.append(track.process)
        return seen

    def tracks_of(self, process: str) -> List[Track]:
        """All tracks of one process, in tid order."""
        return [t for t in self.tracks if t.process == process]

    def track(self, process: str, thread: str) -> Optional[Track]:
        """The one track with this name, if present."""
        for t in self.tracks:
            if t.process == process and t.thread == thread:
                return t
        return None

    @property
    def end_us(self) -> float:
        """Latest timestamp anywhere in the capture."""
        return max((t.extent_us[1] for t in self.tracks), default=0.0)

    @property
    def num_spans(self) -> int:
        return sum(1 for t in self.tracks for _ in t.all_spans())


# ----------------------------------------------------------------------
def read_document(document: Any) -> TraceModel:
    """Build a :class:`TraceModel` from a Chrome trace-event document.

    Accepts the object form (``{"traceEvents": [...], ...}``) or a
    bare event array.  The document is validated first; schema
    violations raise :class:`repro.obs.validate.TraceValidationError`.
    """
    validate_chrome_trace(document)
    if isinstance(document, dict):
        events = document["traceEvents"]
        metrics = document.get("metrics")
        capture = document.get("capture")
    else:
        events, metrics, capture = document, None, None

    process_names: Dict[int, str] = {}
    thread_names: Dict[Tuple[int, int], str] = {}
    by_track: Dict[Tuple[int, int], Dict[str, list]] = {}

    def bucket(pid: int, tid: int) -> Dict[str, list]:
        key = (pid, tid)
        entry = by_track.get(key)
        if entry is None:
            entry = by_track[key] = {"spans": [], "instants": [], "counters": []}
        return entry

    for event in events:
        phase = event["ph"]
        pid, tid = event["pid"], event["tid"]
        if phase == "M":
            label = (event.get("args") or {}).get("name")
            if event["name"] == "process_name":
                process_names[pid] = label
            elif event["name"] == "thread_name":
                thread_names[(pid, tid)] = label
            continue
        if phase == "X":
            start = event["ts"]
            args = dict(event.get("args") or {})
            bucket(pid, tid)["spans"].append(
                Span(event["name"], start, start + event["dur"], args)
            )
        elif phase in ("i", "I"):
            bucket(pid, tid)["instants"].append(
                Instant(event["name"], event["ts"],
                        dict(event.get("args") or {}))
            )
        elif phase == "C":
            args = event["args"]
            samples = bucket(pid, tid)["counters"]
            if list(args) == ["value"]:
                samples.append((event["name"], event["ts"], args["value"]))
            else:
                for series, value in args.items():
                    samples.append(
                        (f"{event['name']}.{series}", event["ts"], value)
                    )
        # Other phases (B/E pairs, flow events) are not produced by the
        # exporter; a foreign trace's extras are simply not modelled.

    tracks: List[Track] = []
    for (pid, tid) in sorted(by_track):
        entry = by_track[(pid, tid)]
        track = Track(
            process=process_names.get(pid, f"pid {pid}"),
            thread=thread_names.get((pid, tid), f"tid {tid}"),
            pid=pid,
            tid=tid,
            spans=_build_forest(entry["spans"]),
            instants=entry["instants"],
        )
        for series, ts, value in entry["counters"]:
            track.counters.setdefault(series, []).append((ts, value))
        tracks.append(track)
    return TraceModel(tracks=tracks, metrics=metrics, capture=capture)


def _build_forest(spans: List[Span]) -> List[Span]:
    """Nest flat spans by interval containment.

    Spans arrive sorted by start (FIFO tie-break preserved from the
    exporter, which emits a parent before its equal-timestamp
    children), so one pass with an ancestor stack rebuilds the tree:
    pop ancestors that cannot contain the next span, then attach it to
    whatever remains on top.
    """
    roots: List[Span] = []
    stack: List[Span] = []
    for span in spans:
        while stack and not stack[-1].contains(span):
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    return roots


def read_file(path: str) -> TraceModel:
    """Load and model a trace JSON file."""
    with open(path) as handle:
        return read_document(json.load(handle))


def from_tracer(tracer, metrics=None) -> TraceModel:
    """Model a live :class:`repro.obs.tracer.Tracer` capture.

    Goes through the exporter, so the model is exactly what a reader
    of the written file would see (this also closes any still-open
    spans, marking them ``open_at_eof``).
    """
    from ..chrome import export_chrome_json

    return read_document(export_chrome_json(tracer, metrics=metrics))
