"""Chrome trace-event / Perfetto JSON exporter.

Converts a :class:`repro.obs.tracer.Tracer` capture into the JSON
object form of the Chrome trace-event format, which loads directly in
``ui.perfetto.dev`` (or ``chrome://tracing``):

* every distinct *process* name among the tracer's tracks becomes a
  ``pid`` (host, each replica machine, the DES kernel), announced with
  a ``process_name`` metadata event;
* every *thread* within a process becomes a ``tid`` with a
  ``thread_name`` metadata event (per-cluster tracks, per-replica
  tracks, per-query tracks);
* spans export as complete ``"X"`` events, instants as ``"i"``, and
  counter samples as ``"C"`` — timestamps are simulated microseconds,
  which is exactly the unit the format expects, so the Perfetto
  timeline reads in machine time.

Events are emitted sorted by timestamp (FIFO tie-break on capture
order), so per-track ``ts`` sequences are monotone — the property the
CI trace smoke validates (:mod:`repro.obs.validate`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def export_chrome_json(tracer, metrics=None) -> Dict[str, Any]:
    """Build the Chrome trace-event document for a tracer capture.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` plus a
    ``"metrics"`` key when a registry is given (extra top-level keys
    are legal in the object form of the format).
    """
    tracer.close_open_spans(_last_timestamp(tracer))

    # Stable pid/tid assignment in track-registration order.
    pids: Dict[str, int] = {}
    tids: Dict[int, tuple] = {}
    meta: List[Dict[str, Any]] = []
    for track_id, (process, thread) in enumerate(tracer.tracks):
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            meta.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        tid = sum(1 for t in tids.values() if t[0] == pid) + 1
        tids[track_id] = (pid, tid)
        meta.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": thread},
        })

    body: List[Dict[str, Any]] = []
    for track, name, begin, end, args in tracer.spans:
        pid, tid = tids[track]
        event: Dict[str, Any] = {
            "name": name, "cat": "span", "ph": "X",
            "ts": begin, "dur": (end - begin) if end is not None else 0.0,
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        body.append(event)
    for track, name, ts, args in tracer.instants:
        pid, tid = tids[track]
        event = {
            "name": name, "cat": "instant", "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        body.append(event)
    for track, name, ts, value in tracer.counters:
        pid, tid = tids[track]
        body.append({
            "name": name, "cat": "counter", "ph": "C",
            "ts": ts, "pid": pid, "tid": tid,
            "args": dict(value) if isinstance(value, dict)
            else {"value": value},
        })

    body.sort(key=lambda e: e["ts"])
    document: Dict[str, Any] = {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["metrics"] = metrics.as_dict()
    return document


def write_chrome_json(
    path: str, tracer, metrics=None, indent: Optional[int] = None
) -> Dict[str, Any]:
    """Export and write the document to ``path``; returns it."""
    document = export_chrome_json(tracer, metrics=metrics)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=indent)
        handle.write("\n")
    return document


def _last_timestamp(tracer) -> float:
    """Latest timestamp seen anywhere in the capture (0.0 if empty)."""
    last = 0.0
    for span in tracer.spans:
        if span[3] is not None and span[3] > last:
            last = span[3]
        elif span[2] > last:
            last = span[2]
    for _, _, ts, _ in tracer.instants:
        if ts > last:
            last = ts
    for _, _, ts, _ in tracer.counters:
        if ts > last:
            last = ts
    return last
