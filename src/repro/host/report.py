"""Serving reports: outcomes, latency distribution, replica health.

The host-level analogue of :class:`repro.machine.report.MachineRunReport`:
one record per serving run, covering every submitted query's outcome,
the served-latency distribution (p50/p95/p99), shed/timeout/failure
fractions, admission-queue pressure, and per-replica attempt and
breaker statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .query import QueryOutcome, QueryStatus


def _percentile_sorted(ordered: List[float], p: float) -> float:
    """Nearest-rank percentile of an *already sorted* sample."""
    if not ordered:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of a sample."""
    if not values:
        return 0.0
    return _percentile_sorted(sorted(values), p)


@dataclass
class ReplicaSummary:
    """Per-replica serving statistics for the report."""

    replica_id: int
    faulty: bool
    attempts: int
    successes: int
    failures: int
    cancelled: int
    busy_us: float
    breaker_state: str
    breaker_opens: int
    #: Lifecycle state when health management is on (``None`` = off).
    health_state: Optional[str] = None
    health_quarantines: int = 0
    health_readmissions: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly).

        Health keys appear only when the lifecycle ran, so reports
        from health-off runs stay byte-identical to earlier versions.
        """
        out = {
            "replica_id": self.replica_id,
            "faulty": self.faulty,
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "cancelled": self.cancelled,
            "busy_us": self.busy_us,
            "breaker_state": self.breaker_state,
            "breaker_opens": self.breaker_opens,
        }
        if self.health_state is not None:
            out["health_state"] = self.health_state
            out["health_quarantines"] = self.health_quarantines
            out["health_readmissions"] = self.health_readmissions
        return out


@dataclass
class ServingReport:
    """Full measurement record of one serving run."""

    outcomes: List[QueryOutcome] = field(default_factory=list)
    #: Simulated time at which the last query reached a terminal state.
    total_time_us: float = 0.0
    replicas: List[ReplicaSummary] = field(default_factory=list)
    queue_max_depth: int = 0
    queue_admitted: int = 0
    #: Answer-integrity audit tallies (0/0 when auditing is off).
    audit_checks: int = 0
    audit_mismatches: int = 0
    #: Memoised sorted served-latency sample, keyed by the outcome
    #: count it was built from (reports can gain outcomes after
    #: construction, e.g. in tests that assemble them by hand).
    _latency_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def count(self, status: QueryStatus) -> int:
        """Queries that terminated in one bucket."""
        return sum(1 for o in self.outcomes if o.status is status)

    @property
    def submitted(self) -> int:
        """Queries submitted (= outcomes recorded)."""
        return len(self.outcomes)

    @property
    def served(self) -> int:
        """Queries answered within deadline with an undamaged result."""
        return self.count(QueryStatus.SERVED)

    @property
    def shed(self) -> int:
        """Queries rejected by admission control."""
        return self.count(QueryStatus.SHED)

    @property
    def timed_out(self) -> int:
        """Queries whose deadline watchdog fired."""
        return self.count(QueryStatus.TIMED_OUT)

    @property
    def failed(self) -> int:
        """Queries that exhausted attempts with damaged answers."""
        return self.count(QueryStatus.FAILED)

    @property
    def shed_fraction(self) -> float:
        """Shed share of all submitted queries."""
        return self.shed / self.submitted if self.submitted else 0.0

    def accounted(self) -> bool:
        """Every submitted query in exactly one outcome bucket."""
        ids = [o.query_id for o in self.outcomes]
        if len(ids) != len(set(ids)):
            return False
        buckets = (self.served + self.shed + self.timed_out + self.failed)
        return buckets == self.submitted

    # ------------------------------------------------------------------
    def served_latencies(self) -> List[float]:
        """Arrival-to-answer latencies of served queries, in µs."""
        return [
            o.latency_us for o in self.outcomes
            if o.status is QueryStatus.SERVED
        ]

    def _sorted_served_latencies(self) -> List[float]:
        """Sorted served-latency sample, computed once per outcome set."""
        cached = self._latency_cache
        if cached is not None and cached[0] == len(self.outcomes):
            return cached[1]
        ordered = sorted(self.served_latencies())
        self._latency_cache = (len(self.outcomes), ordered)
        return ordered

    def latency_percentile(self, p: float) -> float:
        """Served-latency percentile, in µs."""
        return _percentile_sorted(self._sorted_served_latencies(), p)

    @property
    def mean_served_latency_us(self) -> float:
        """Mean served latency, in µs."""
        latencies = self._sorted_served_latencies()
        return sum(latencies) / len(latencies) if latencies else 0.0

    def latency_summary(self) -> Dict[str, float]:
        """Mean/p50/p95/p99 served latency (µs) from one sorted pass."""
        ordered = self._sorted_served_latencies()
        return {
            "mean": sum(ordered) / len(ordered) if ordered else 0.0,
            "p50": _percentile_sorted(ordered, 50),
            "p95": _percentile_sorted(ordered, 95),
            "p99": _percentile_sorted(ordered, 99),
        }

    def throughput_per_s(self) -> float:
        """Served queries per simulated second."""
        if self.total_time_us <= 0:
            return 0.0
        return self.served / (self.total_time_us / 1e6)

    # ------------------------------------------------------------------
    def outcome_of(self, query_id: int) -> Optional[QueryOutcome]:
        """The outcome record of one query, if present."""
        for outcome in self.outcomes:
            if outcome.query_id == query_id:
                return outcome
        return None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly).

        Audit keys appear only when at least one audit ran, keeping
        audit-off reports byte-identical to earlier versions.
        """
        out = {
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "shed_fraction": self.shed_fraction,
            "total_time_us": self.total_time_us,
            "latency_us": self.latency_summary(),
            "queue_max_depth": self.queue_max_depth,
            "queue_admitted": self.queue_admitted,
            "replicas": [r.as_dict() for r in self.replicas],
            "outcomes": [o.as_dict() for o in self.outcomes],
        }
        if self.audit_checks:
            out["audit_checks"] = self.audit_checks
            out["audit_mismatches"] = self.audit_mismatches
        return out

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for experiment tables."""
        latency = self.latency_summary()
        return {
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "shed_fraction": round(self.shed_fraction, 4),
            "p50_ms": round(latency["p50"] / 1e3, 3),
            "p99_ms": round(latency["p99"] / 1e3, 3),
            "throughput_per_s": round(self.throughput_per_s(), 1),
            "breaker_opens": sum(r.breaker_opens for r in self.replicas),
        }
