"""Resilient concurrent query-serving layer over the SNAP-1 array.

The paper drove the SCP from a single Sun host, one query at a time.
This package adds the *serving* dimension of the ROADMAP north star:
many concurrent marker-propagation queries with per-query deadlines,
scheduled onto replica cluster groups, with bounded admission,
load shedding, hedged retries, per-replica circuit breakers fed by
the fault layer, and a structured outcome record per query.

See ``docs/HOST.md`` for the queueing model, the breaker state
machine, and the shed policies; ``repro.experiments.overload`` sweeps
arrival rate × fault rate and demonstrates graceful degradation.
"""

from .admission import (
    AdmissionError,
    AdmissionQueue,
    REJECT_NEWEST,
    REJECT_OVER_DEADLINE,
    SHED_POLICIES,
)
from .breaker import (
    BreakerError,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from .config import (
    HostConfig,
    HostConfigError,
    ReplicaFaultEvent,
    default_replica_faults,
)
from .executor import AttemptResult, Replica, ReplicaArray
from .health import (
    HealthError,
    HealthState,
    HealthTransition,
    PhiAccrualDetector,
    ReplicaHealth,
    health_transition_records,
)
from .host import ServingHost, run_serial
from .query import HostError, Query, QueryOutcome, QueryStatus
from .report import ReplicaSummary, ServingReport, percentile

__all__ = [
    "AdmissionError", "AdmissionQueue",
    "REJECT_NEWEST", "REJECT_OVER_DEADLINE", "SHED_POLICIES",
    "BreakerError", "BreakerState", "BreakerTransition", "CircuitBreaker",
    "HostConfig", "HostConfigError", "ReplicaFaultEvent",
    "default_replica_faults",
    "AttemptResult", "Replica", "ReplicaArray",
    "HealthError", "HealthState", "HealthTransition",
    "PhiAccrualDetector", "ReplicaHealth", "health_transition_records",
    "ServingHost", "run_serial",
    "HostError", "Query", "QueryOutcome", "QueryStatus",
    "ReplicaSummary", "ServingReport", "percentile",
]
