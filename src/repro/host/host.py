"""The resilient query-serving host.

``ServingHost`` runs a simulated-time serving loop on top of the same
DES kernel as the machine model (:mod:`repro.machine.des`): queries
arrive on the host clock, pass admission control, wait in the bounded
queue, and execute on replica cluster groups whose service times come
from the *nested* machine simulator — so every serving latency is
backed by the full PU/MU/CU + ICN + synchronization cost model,
including PR 1 fault injection on degraded replicas.

Resilience mechanisms, in the order a query meets them:

1. **Admission control** — a bounded FIFO with ``reject-newest`` or
   ``reject-over-deadline`` shedding (:mod:`repro.host.admission`).
2. **Deadline watchdogs** — one cancellable kernel event per admitted
   query; expiry cancels queued or in-flight work and frees the
   replica immediately.
3. **Hedged retries** — an attempt in flight longer than
   ``hedge_after_us`` is re-issued on another (healthiest-available)
   replica; the first undamaged completion wins and the loser is
   cancelled, releasing its replica.
4. **Sequential retries** — a completed-but-damaged attempt is retried
   on a different replica up to ``max_attempts`` times.
5. **Circuit breakers** — per replica, fed by the fault reports of
   completed attempts (:mod:`repro.host.breaker`); open breakers take
   a replica out of dispatch until its cooldown and probe succeed.
6. **Health lifecycle** (optional) — a phi-accrual detector over
   attempt latencies and damage (:mod:`repro.host.health`) that
   quarantines gray replicas the breaker cannot see, probes them
   after a hold-off, and readmits on sustained healthy probes; plus
   sampled answer-integrity audits (shadow re-execution on a healthy
   replica) that catch silently-incomplete answers.

Determinism: the host draws no randomness of its own — arrivals are
given, nested executions are deterministic, and the DES breaks ties
FIFO — so a serving run is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..machine.config import Timing
from ..machine.des import Simulator
from ..network.graph import SemanticNetwork
from ..obs.tracer import get_tracer
from .admission import REJECT_NEWEST, AdmissionQueue
from .breaker import BreakerState
from .config import HostConfig
from .executor import AttemptResult, Replica, ReplicaArray
from .health import HealthState, ReplicaHealth, health_transition_records
from .query import HostError, Query, QueryOutcome, QueryStatus
from .report import ReplicaSummary, ServingReport

# Hot-path constants: one global load instead of an enum attribute
# chain per query.
_SERVED = QueryStatus.SERVED
_SHED = QueryStatus.SHED
_TIMED_OUT = QueryStatus.TIMED_OUT
_FAILED = QueryStatus.FAILED
_CLOSED = BreakerState.CLOSED
_OPEN = BreakerState.OPEN
_QUARANTINED = HealthState.QUARANTINED


@dataclass(slots=True)
class _Attempt:
    """One dispatch of a query onto a replica."""

    state: "_QueryState"
    replica: Replica
    start_us: float
    result: AttemptResult
    hedged: bool = False
    live: bool = True
    completion_event: Any = None
    hedge_event: Any = None
    #: Open attempt span handle (tracing only).
    span: Any = None


@dataclass(slots=True)
class _QueryState:
    """Mutable serving-side bookkeeping for one query."""

    query: Query
    #: Effective deadline budget (query's own, or the host default).
    deadline_us: Optional[float]
    #: Absolute deadline instant (arrival + budget; None = unbounded),
    #: precomputed once so the hot path never re-derives it.
    deadline_abs: Optional[float] = None
    terminal: bool = False
    queued: bool = False
    #: Deadline watchdog: a raw cancellable kernel event handle.
    watchdog: Any = None
    in_flight: List[_Attempt] = field(default_factory=list)
    primary_attempts: int = 0
    hedges: int = 0
    tried: Set[int] = field(default_factory=set)
    #: Tracing bookkeeping (populated only when a tracer is active).
    track: int = -1
    span: Any = None
    queued_span: Any = None

    @property
    def absolute_deadline_us(self) -> Optional[float]:
        return self.deadline_abs

    def remaining_us(self, now: float) -> Optional[float]:
        """Deadline budget left at ``now`` (None = unbounded)."""
        if self.deadline_abs is None:
            return None
        return self.deadline_abs - now


class ServingHost:
    """A one-shot serving run over a stream of queries."""

    def __init__(
        self,
        network: SemanticNetwork,
        config: Optional[HostConfig] = None,
        timing: Optional[Timing] = None,
        tracer=None,
        metrics=None,
        sink=None,
    ) -> None:
        self.config = config or HostConfig()
        self.sim = Simulator()
        self.array = ReplicaArray(network, self.config, timing)
        self.queue = AdmissionQueue(
            self.config.queue_capacity, self.config.shed_policy
        )
        self.outcomes: List[QueryOutcome] = []
        self._states: List[_QueryState] = []
        self._ran = False
        # Hot-path plumbing: the queue's raw deque (emptiness checks
        # without a method call) and pre-bound callbacks, so the
        # per-query/per-attempt paths never allocate a bound method.
        self._buffer = self.queue.buffer
        self._replicas = self.array.replicas
        # Health lifecycle + integrity auditing (both default-off; an
        # empty self._health keeps every hot-path check one truthiness
        # test, preserving byte-identical behaviour when disabled).
        self._health: List[ReplicaHealth] = []
        if self.config.health_enabled:
            self._health = [
                ReplicaHealth(
                    window=self.config.health_window,
                    min_samples=self.config.health_min_samples,
                    sigma_floor=self.config.health_sigma_floor,
                    damage_weight=self.config.health_damage_weight,
                    phi_quarantine=self.config.health_phi_quarantine,
                    probe_after_us=self.config.health_probe_after_us,
                    probe_successes=self.config.health_probe_successes,
                    readmit_ratio=self.config.health_readmit_ratio,
                )
                for _ in self._replicas
            ]
        self._audit_interval = self.config.audit_interval
        self._served_count = 0
        self.audit_checks = 0
        self.audit_mismatches = 0
        self._audit_log: List[Tuple[float, int, int, bool]] = []
        self._hopeless_cb = self._hopeless
        self._attempt_done_cb = self._attempt_done
        self._maybe_hedge_cb = self._maybe_hedge
        self._on_deadline_cb = self._on_deadline
        # Arrivals are reserved up front (fixing tie-break order) but
        # committed to the event heap one at a time; see serve().
        self._arrivals: List[Any] = []
        self._arrival_count = 0
        self._next_arrival = 0
        # Tail-drop on a full queue needs no admission-control logic
        # beyond a length check; precompute whether that shortcut
        # applies (it never does for reject-over-deadline).
        cap = self.config.queue_capacity
        self._fast_shed_cap = (
            cap
            if cap is not None and self.config.shed_policy == REJECT_NEWEST
            else None
        )
        # Observability.  The untraced default costs one `_observed`
        # bool check at each instrumentation site; the tracer draws
        # one span tree per query (admission → attempts → hedges →
        # outcome), per-replica attempt spans + busy transitions, and
        # a queue-depth counter, while the registry accumulates the
        # matching aggregates.
        obs_tracer = tracer if tracer is not None else get_tracer()
        self._tr = obs_tracer if obs_tracer.enabled else None
        self._metrics = metrics
        self._observed = self._tr is not None or metrics is not None
        # Live-telemetry sink (duck-typed: anything with .emit(ts, kind,
        # **fields), normally repro.obs.live.TelemetrySink).  Kept off
        # the `_observed` flag on purpose: the sink is append-only and
        # reads nothing back, so attaching one must leave the tracer/
        # metrics paths — and the serving report — byte-identical.
        self._sink = sink
        if self._tr is not None:
            tr = self._tr
            self._tk_queue = tr.track("host", "queue")
            self._tk_replica = [
                tr.track("host", f"replica {r.replica_id:02d}")
                for r in self._replicas
            ]

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------
    def serve(self, queries: Sequence[Query]) -> ServingReport:
        """Serve the whole stream to quiescence; return the report."""
        if self._ran:
            raise HostError("a ServingHost serves exactly one stream")
        self._ran = True
        seen: Set[int] = set()
        for query in queries:
            if query.query_id in seen:
                raise HostError(f"duplicate query_id {query.query_id}")
            seen.add(query.query_id)
        default_deadline = self.config.default_deadline_us
        states = self._states
        sim = self.sim
        reserve = sim.reserve
        on_arrival = self._on_arrival
        arrivals = self._arrivals
        for query in sorted(
            queries, key=lambda q: (q.arrival_us, q.query_id)
        ):
            deadline = (
                query.deadline_us
                if query.deadline_us is not None
                else default_deadline
            )
            state = _QueryState(
                query=query,
                deadline_us=deadline,
                deadline_abs=(
                    None if deadline is None
                    else query.arrival_us + deadline
                ),
            )
            states.append(state)
            arrivals.append(reserve(query.arrival_us, on_arrival, state))
        # Reserving assigned every arrival its sequence number first
        # (identical FIFO tie-breaking to scheduling them all), but
        # only one arrival sits in the heap at a time — each commits
        # its successor on firing — so heap depth tracks the queries
        # actually in flight rather than the whole stream.
        self._arrival_count = len(arrivals)
        if arrivals:
            self._next_arrival = 1
            sim.commit(arrivals[0])
        sim.run()
        stuck = [s.query.query_id for s in self._states if not s.terminal]
        if stuck:
            raise RuntimeError(f"serving deadlock: queries {stuck}")
        if self._observed:
            self._note_post_run()
        if self._sink is not None:
            self._emit_lifecycle_telemetry()
        return self._build_report()

    def health_export(self) -> Dict[str, Any]:
        """Health state of the group, shaped for fleet-level consumers.

        Carries the configured fleet identity plus the per-replica
        detector view (state, current phi, lifecycle counters).  With
        the health lifecycle disabled, ``replicas`` is empty — callers
        should treat the group as healthy-by-assumption, not healthy-
        by-evidence.
        """
        return {
            "group_id": self.config.group_id,
            "region": self.config.region,
            "health_enabled": bool(self._health),
            "replicas": [
                {
                    "replica_id": rid,
                    "state": health.state.value,
                    "phi": round(health.detector.phi(), 4),
                    "quarantines": health.quarantines,
                    "readmissions": health.readmissions,
                    "probes": health.probes,
                }
                for rid, health in enumerate(self._health)
            ],
        }

    # ------------------------------------------------------------------
    # Arrival and admission
    # ------------------------------------------------------------------
    def _on_arrival(self, state: _QueryState) -> None:
        nxt = self._next_arrival
        if nxt < self._arrival_count:
            self.sim.commit(self._arrivals[nxt])
            self._next_arrival = nxt + 1
        if self._observed:
            self._trace_arrival(state)
        if self._sink is not None:
            self._sink.emit(
                self.sim.now, "arrival", query_id=state.query.query_id
            )
        # Fast path: nothing waiting ahead and a replica free now —
        # dispatch directly, bypassing the (possibly zero-capacity)
        # buffer.  FIFO order is preserved because the queue is empty.
        buffer = self._buffer
        if not buffer:
            replica = self._pick_replica(state)
            if replica is not None:
                self._arm_watchdog(state)
                self._start_attempt(state, replica)
                return
        elif (
            self._fast_shed_cap is not None
            and len(buffer) >= self._fast_shed_cap
        ):
            # Tail-drop shortcut: same outcome and counters as
            # queue.offer() on a full reject-newest queue.
            self.queue.shed_newest += 1
            self._finalize(state, _SHED, shed_reason="queue-full")
            return
        admitted, evicted, reason = self.queue.offer(
            state, hopeless=self._hopeless_cb
        )
        for victim in evicted:
            self._release_watchdog(victim)
            self._finalize(victim, _SHED, shed_reason="over-deadline")
        if not admitted:
            if self._observed and evicted:
                self._note_queue_depth()
            self._finalize(state, _SHED, shed_reason=reason)
            return
        state.queued = True
        self._arm_watchdog(state)
        if self._observed:
            self._note_enqueued(state)

    def _hopeless(self, state: _QueryState) -> bool:
        """Queued query that cannot meet its deadline even if started
        immediately on a healthy replica (shed-over-deadline test)."""
        deadline = state.deadline_abs
        if deadline is None:
            return False
        remaining = deadline - self.sim.now
        return remaining < self.array.healthy_service_us(state.query)

    def _arm_watchdog(self, state: _QueryState) -> None:
        deadline = state.deadline_abs
        if deadline is None:
            return
        remaining = deadline - self.sim.now
        state.watchdog = self.sim.schedule(
            remaining if remaining > 0.0 else 0.0,
            self._on_deadline_cb,
            state,
        )

    def _release_watchdog(self, state: _QueryState) -> None:
        # Cancelling an already-fired event is a kernel no-op, so no
        # armed/expired bookkeeping is needed here.
        if state.watchdog is not None:
            self.sim.cancel(state.watchdog)

    # ------------------------------------------------------------------
    # Observability (every caller is behind a `self._observed` check)
    # ------------------------------------------------------------------
    def _trace_arrival(self, state: _QueryState) -> None:
        """Open the query's span tree (its own Perfetto thread)."""
        tr = self._tr
        if tr is None:
            return
        qid = state.query.query_id
        state.track = tr.track("queries", f"query {qid:05d}")
        state.span = tr.begin(
            state.track, f"query {qid}", self.sim.now,
            template=state.query.template or "",
        )

    def _note_queue_depth(self) -> None:
        """Sample the admission-queue depth after a mutation."""
        depth = len(self._buffer)
        now = self.sim.now
        if self._tr is not None:
            self._tr.counter(self._tk_queue, "queue_depth", now, depth)
        if self._metrics is not None:
            self._metrics.gauge("host.queue_depth").set(now, depth)

    def _note_enqueued(self, state: _QueryState) -> None:
        if self._tr is not None and state.span is not None:
            state.queued_span = self._tr.begin(
                state.track, "queued", self.sim.now
            )
        self._note_queue_depth()

    def _note_dispatch(self, attempt: _Attempt) -> None:
        """An attempt entered service on a replica."""
        state, replica = attempt.state, attempt.replica
        now = self.sim.now
        rid = replica.replica_id
        tr = self._tr
        if tr is not None:
            if state.queued_span is not None:
                tr.end(state.queued_span, now)
                state.queued_span = None
            track = self._tk_replica[rid]
            label = "hedge" if attempt.hedged else "attempt"
            attempt.span = tr.begin(
                track, f"{label} q{state.query.query_id}", now,
                replica=rid,
            )
            tr.counter(track, "busy", now, 1)
            if state.span is not None:
                tr.instant(
                    state.track,
                    "hedge-issued" if attempt.hedged else "attempt-start",
                    now, replica=rid,
                )
        if self._metrics is not None:
            m = self._metrics
            m.counter("host.attempts").inc()
            if attempt.hedged:
                m.counter("host.hedges_issued").inc()
            m.gauge(f"host.replica.{rid}.busy").set(now, 1)

    def _note_attempt_end(
        self, attempt: _Attempt, cancelled: bool
    ) -> None:
        """An attempt left its replica (completed or cancelled)."""
        state, replica = attempt.state, attempt.replica
        now = self.sim.now
        rid = replica.replica_id
        result = attempt.result
        tr = self._tr
        if tr is not None:
            track = self._tk_replica[rid]
            tr.end(
                attempt.span, now,
                ok=result.ok, damage=result.damage, cancelled=cancelled,
            )
            tr.counter(track, "busy", now, 0)
            if state.span is not None:
                tr.instant(
                    state.track,
                    "attempt-cancelled" if cancelled else "attempt-done",
                    now, replica=rid, ok=result.ok, damage=result.damage,
                )
        if self._metrics is not None:
            m = self._metrics
            if cancelled:
                m.counter("host.attempts_cancelled").inc()
                if attempt.hedged:
                    m.counter("host.hedges_cancelled").inc()
            elif not result.ok:
                m.counter("host.attempt_failures").inc()
            m.gauge(f"host.replica.{rid}.busy").set(now, 0)

    def _note_finalize(
        self,
        state: _QueryState,
        status: QueryStatus,
        shed_reason: Optional[str],
    ) -> None:
        """Close the query's span tree and count its outcome."""
        now = self.sim.now
        tr = self._tr
        if tr is not None and state.span is not None:
            if state.queued_span is not None:
                tr.end(state.queued_span, now)
                state.queued_span = None
            tr.instant(
                state.track, status.value, now,
                **({"reason": shed_reason} if shed_reason else {}),
            )
            tr.end(
                state.span, now,
                status=status.value,
                attempts=state.primary_attempts + state.hedges,
                hedges=state.hedges,
            )
        if self._metrics is not None:
            m = self._metrics
            m.counter("host.queries").inc()
            m.counter(f"host.outcome.{status.value}").inc()
            if state.primary_attempts > 1:
                m.counter("host.retries").inc(state.primary_attempts - 1)
            if status is _SERVED:
                m.histogram("host.served_latency_us").observe(
                    now - state.query.arrival_us
                )

    def _note_post_run(self) -> None:
        """Replay breaker audit trails into the capture (post-run,
        so the serving hot path pays nothing per transition)."""
        open_state = BreakerState.OPEN
        for replica in self._replicas:
            rid = replica.replica_id
            for t in replica.breaker.transitions:
                if self._tr is not None:
                    self._tr.instant(
                        self._tk_replica[rid],
                        f"breaker-{t.to_state.value}",
                        t.time_us, from_state=t.from_state.value,
                    )
                if self._metrics is not None:
                    self._metrics.counter("host.breaker.transitions").inc()
                    if t.to_state is open_state:
                        self._metrics.counter("host.breaker.opens").inc()
        for rid, health in enumerate(self._health):
            for t in health.transitions:
                if self._tr is not None:
                    self._tr.instant(
                        self._tk_replica[rid],
                        f"health-{t.to_state.value}",
                        t.time_us, from_state=t.from_state.value,
                        phi=round(t.phi, 3), reason=t.reason,
                    )
                if self._metrics is not None:
                    m = self._metrics
                    m.counter("host.health.transitions").inc()
                    if t.to_state is _QUARANTINED:
                        m.counter("host.health.quarantines").inc()
                    elif t.to_state is HealthState.ACTIVE:
                        m.counter("host.health.readmissions").inc()
        if self._health and self._metrics is not None:
            probes = sum(h.probes for h in self._health)
            if probes:
                self._metrics.counter("host.health.probes").inc(probes)
        for when, qid, rid, ok in self._audit_log:
            if self._tr is not None and 0 <= rid < len(self._tk_replica):
                self._tr.instant(
                    self._tk_replica[rid],
                    "audit-ok" if ok else "audit-mismatch",
                    when, query=qid,
                )
        if self._audit_log and self._metrics is not None:
            self._metrics.counter("host.audit.checks").inc(self.audit_checks)
            if self.audit_mismatches:
                self._metrics.counter("host.audit.mismatches").inc(
                    self.audit_mismatches
                )

    def _emit_lifecycle_telemetry(self) -> None:
        """Replay lifecycle trails into the telemetry sink (post-run).

        Breaker/health transitions and audit verdicts accumulate in
        their own ledgers during the run; replaying them here keeps
        the serving hot path free of per-transition sink calls.  The
        events carry their original simulated timestamps, so windowed
        consumers see them in the right place on the timeline after
        the ``(ts_us, seq)`` sort.
        """
        emit = self._sink.emit
        for replica in self._replicas:
            rid = replica.replica_id
            for t in replica.breaker.transitions:
                emit(
                    t.time_us, "breaker", replica=rid,
                    from_state=t.from_state.value,
                    to_state=t.to_state.value,
                )
        for rid, health in enumerate(self._health):
            for record in health_transition_records(health, rid):
                emit(record[0], "health", **record[1])
        for when, qid, rid, ok in self._audit_log:
            emit(when, "audit", query_id=qid, replica=rid, ok=ok)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pick_replica(self, state: _QueryState) -> Optional[Replica]:
        """The healthiest idle replica the breakers will admit.

        Preference order: replicas this query has not tried yet, then
        closed breakers before half-open probes, then lowest id (the
        deterministic tie-break).
        """
        now = self.sim.now
        tried = state.tried
        health = self._health
        best: Optional[Replica] = None
        best_key: Optional[tuple] = None
        # Single allocation-free pass: minimizing (already-tried,
        # breaker-rank, replica_id) over the admissible replicas picks
        # exactly what the old untried-pool-then-sort selection did.
        for r in self._replicas:
            if r.busy or not r.breaker.allow(now):
                continue
            if health and not health[r.replica_id].allow(now):
                continue
            rid = r.replica_id
            if rid not in tried and r.breaker.state is _CLOSED:
                # Replicas iterate in ascending id, so the first
                # untried replica with a closed breaker has the
                # minimal key (False, 0, id) — nothing later beats it.
                return r
            if rid in tried:
                key = (True, 0 if r.breaker.state is _CLOSED else 1, rid)
            else:
                key = (False, 1, rid)
            if best_key is None or key < best_key:
                best = r
                best_key = key
        return best

    def _dispatch_loop(self) -> None:
        """Drain the queue head-first onto free replicas."""
        buffer = self._buffer
        while buffer:
            state = buffer[0]
            if state.terminal:
                buffer.popleft()
                continue
            # Peek before popping: when no replica is free the head
            # keeps its FIFO slot without a pop/requeue round-trip.
            replica = self._pick_replica(state)
            if replica is None:
                return
            buffer.popleft()
            state.queued = False
            if self._observed:
                self._note_queue_depth()
            self._start_attempt(state, replica)

    def _start_attempt(
        self, state: _QueryState, replica: Replica, hedged: bool = False
    ) -> None:
        now = self.sim.now
        replica.breaker.acquire(now)
        if self._health:
            self._health[replica.replica_id].acquire(now)
        replica.busy = True
        replica.serving = state.query.query_id
        replica.attempts += 1
        state.tried.add(replica.replica_id)
        if hedged:
            state.hedges += 1
        else:
            state.primary_attempts += 1
        query = state.query
        if query.template is None:
            deadline = state.deadline_abs
            budget = None if deadline is None else deadline - now
        else:
            budget = None
        if self._observed:
            # Nested machine tracks land at the host dispatch time.
            result = self.array.execute(
                replica, query, budget_us=budget,
                tracer=self._tr, metrics=self._metrics,
                trace_offset_us=now, now=now,
            )
        else:
            result = self.array.execute(
                replica, query, budget_us=budget, now=now
            )
        attempt = _Attempt(state, replica, now, result, hedged)
        attempt.completion_event = self.sim.schedule(
            result.service_us, self._attempt_done_cb, attempt
        )
        state.in_flight.append(attempt)
        if self._observed:
            self._note_dispatch(attempt)
        hedge_after = self.config.hedge_after_us
        if (
            not hedged
            and hedge_after is not None
            and state.hedges < self.config.hedge_max
            and result.service_us > hedge_after
        ):
            attempt.hedge_event = self.sim.schedule(
                hedge_after, self._maybe_hedge_cb, attempt
            )

    def _maybe_hedge(self, attempt: _Attempt) -> None:
        """The straggler timer fired: re-issue onto a healthy replica."""
        state = attempt.state
        if (
            state.terminal
            or not attempt.live
            or state.hedges >= self.config.hedge_max
        ):
            return
        replica = self._pick_replica(state)
        if replica is None:
            return  # no spare capacity; the primary keeps running
        self._start_attempt(state, replica, hedged=True)

    # ------------------------------------------------------------------
    # Completion, failure, cancellation
    # ------------------------------------------------------------------
    def _attempt_done(self, attempt: _Attempt) -> None:
        state, replica = attempt.state, attempt.replica
        sim = self.sim
        now = sim.now
        attempt.live = False
        if attempt.hedge_event is not None:
            sim.cancel(attempt.hedge_event)
        try:
            state.in_flight.remove(attempt)
        except ValueError:
            pass
        replica.busy = False
        replica.serving = None
        replica.busy_us += now - attempt.start_us
        result = attempt.result
        if self._observed:
            self._note_attempt_end(attempt, cancelled=False)
        if result.ok:
            replica.successes += 1
            replica.breaker.record_success(now)
        else:
            replica.failures += 1
            replica.breaker.record_failure(now)
            if replica.breaker.state is _OPEN:
                # Wake the dispatcher when the cooldown expires so an
                # all-open array cannot strand the queue.
                sim.schedule(
                    max(0.0, replica.breaker.open_until_us - now),
                    self._dispatch_loop,
                )
        if self._health:
            self._health_record(replica, state, result, now)
        if not state.terminal:
            if result.ok:
                self._cancel_in_flight(state)
                self._finalize(
                    state,
                    _SERVED,
                    replica=replica,
                    service_us=result.service_us,
                    results=result.results,
                )
            else:
                self._after_failed_attempt(state, replica)
        if self._buffer:
            self._dispatch_loop()

    def _health_record(
        self,
        replica: Replica,
        state: _QueryState,
        result: AttemptResult,
        now: float,
    ) -> None:
        """Feed one completed attempt into the replica's health score."""
        health = self._health[replica.replica_id]
        was_quarantined = health.state is _QUARANTINED
        ratio = result.service_us / max(
            self.array.healthy_service_us(state.query), 1e-9
        )
        health.record_attempt(now, ratio, result.damage)
        if not was_quarantined and health.state is _QUARANTINED:
            # Wake the dispatcher when the hold-off expires so an
            # all-quarantined array cannot strand the queue.
            self.sim.schedule(health.probe_after_us, self._dispatch_loop)

    def _after_failed_attempt(
        self, state: _QueryState, replica: Replica
    ) -> None:
        now = self.sim.now
        if state.in_flight:
            return  # a hedge is still racing; let it decide
        deadline = state.deadline_abs
        out_of_time = deadline is not None and deadline - now <= 0
        if state.primary_attempts < self.config.max_attempts and not out_of_time:
            retry_replica = self._pick_replica(state)
            if retry_replica is not None:
                self._start_attempt(state, retry_replica)
            else:
                # Head-of-line requeue: the retry keeps its position.
                state.queued = True
                self.queue.requeue_front(state)
                if self._observed:
                    self._note_enqueued(state)
            return
        self._finalize(state, _FAILED, replica=replica)

    def _on_deadline(self, state: _QueryState) -> None:
        if state.terminal:
            return
        if state.queued:
            self.queue.remove(state)
            state.queued = False
            if self._observed:
                self._note_queue_depth()
        self._cancel_in_flight(state)
        self._finalize(state, _TIMED_OUT)
        self._dispatch_loop()

    def _cancel_in_flight(self, state: _QueryState) -> None:
        """Abort every running attempt, freeing its replica *now*."""
        now = self.sim.now
        for attempt in list(state.in_flight):
            attempt.live = False
            self.sim.cancel(attempt.completion_event)
            if attempt.hedge_event is not None:
                self.sim.cancel(attempt.hedge_event)
            replica = attempt.replica
            replica.busy = False
            replica.serving = None
            replica.cancelled += 1
            replica.busy_us += now - attempt.start_us
            # A cancelled attempt renders no verdict for the breaker
            # (or the health lifecycle's probe slot).
            replica.breaker.release()
            if self._health:
                self._health[replica.replica_id].release()
            if self._observed:
                self._note_attempt_end(attempt, cancelled=True)
        state.in_flight.clear()

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def _finalize(
        self,
        state: _QueryState,
        status: QueryStatus,
        replica: Optional[Replica] = None,
        service_us: float = 0.0,
        results: Optional[List[Any]] = None,
        shed_reason: Optional[str] = None,
    ) -> None:
        state.terminal = True
        if status is _SERVED and self._audit_interval is not None:
            self._served_count += 1
            if self._served_count % self._audit_interval == 0:
                self._run_audit(state, replica, results)
        if self._observed:
            self._note_finalize(state, status, shed_reason)
        watchdog = state.watchdog
        if watchdog is not None:
            self.sim.cancel(watchdog)
        now = self.sim.now
        query = state.query
        arrival = query.arrival_us
        if self._sink is not None:
            self._sink.emit(
                now, "query",
                query_id=query.query_id,
                status=status.value,
                arrival_us=arrival,
                latency_us=now - arrival,
                reason=shed_reason,
            )
        primaries = state.primary_attempts
        hedges = state.hedges
        # Positional construction (field order matches QueryOutcome):
        # this runs once per query and dataclass keyword __init__ is
        # measurably slower on the overload benchmark.
        self.outcomes.append(
            QueryOutcome(
                query.query_id,
                status,
                arrival,
                now,
                now - arrival,
                service_us,
                primaries + hedges,
                hedges,
                primaries - 1 if primaries > 1 else 0,
                replica.replica_id if replica else None,
                replica.breaker.state.value if replica else None,
                shed_reason,
                results,
            )
        )

    def _run_audit(
        self,
        state: _QueryState,
        replica: Optional[Replica],
        results: Optional[List[Any]],
    ) -> None:
        """Shadow re-execute a served answer and compare results.

        The only detection path for gray marker drop: the serving
        attempt completed "successfully" (no query-visible damage),
        so neither the breaker nor the latency signal fires — but the
        answer is missing activation the reference run produces.
        """
        now = self.sim.now
        self.audit_checks += 1
        ok = results == self.array.reference_results(state.query)
        rid = replica.replica_id if replica is not None else -1
        self._audit_log.append((now, state.query.query_id, rid, ok))
        if ok:
            return
        self.audit_mismatches += 1
        if self._health and replica is not None:
            health = self._health[rid]
            was_quarantined = health.state is _QUARANTINED
            health.record_audit_failure(now)
            if not was_quarantined and health.state is _QUARANTINED:
                self.sim.schedule(
                    health.probe_after_us, self._dispatch_loop
                )

    def _build_report(self) -> ServingReport:
        health = self._health
        report = ServingReport(
            outcomes=list(self.outcomes),
            total_time_us=max(
                (o.finish_us for o in self.outcomes), default=self.sim.now
            ),
            replicas=[
                ReplicaSummary(
                    replica_id=r.replica_id,
                    faulty=r.faulty,
                    attempts=r.attempts,
                    successes=r.successes,
                    failures=r.failures,
                    cancelled=r.cancelled,
                    busy_us=r.busy_us,
                    breaker_state=r.breaker.state.value,
                    breaker_opens=r.breaker.times_opened,
                    health_state=(
                        health[r.replica_id].state.value if health else None
                    ),
                    health_quarantines=(
                        health[r.replica_id].quarantines if health else 0
                    ),
                    health_readmissions=(
                        health[r.replica_id].readmissions if health else 0
                    ),
                )
                for r in self.array.replicas
            ],
            queue_max_depth=self.queue.max_depth,
            queue_admitted=self.queue.admitted,
            audit_checks=self.audit_checks,
            audit_mismatches=self.audit_mismatches,
        )
        if not report.accounted():
            raise RuntimeError(
                "outcome accounting violated: "
                f"{report.submitted} submitted, buckets "
                f"{report.served}/{report.shed}/"
                f"{report.timed_out}/{report.failed}"
            )
        return report


def run_serial(
    network: SemanticNetwork,
    queries: Sequence[Query],
    config: Optional[HostConfig] = None,
    timing: Optional[Timing] = None,
) -> ServingReport:
    """Reference semantics: one healthy replica, one query at a time.

    The paper's original operating mode (a single Sun host issuing one
    query to the SCP at a time).  No admission control, deadlines,
    hedging, or breakers — every query is served in arrival order.
    ``ServingHost`` with an unbounded queue, no faults, and breakers
    disabled must produce identical per-query results and service
    times (the no-behaviour-change guarantee).
    """
    cfg = replace(
        config or HostConfig(),
        num_replicas=1,
        faulty_replica_fraction=0.0,
        breakers_enabled=False,
        queue_capacity=None,
        hedge_after_us=None,
    )
    array = ReplicaArray(network, cfg, timing)
    replica = array.replicas[0]
    outcomes: List[QueryOutcome] = []
    clock = 0.0
    for query in sorted(queries, key=lambda q: (q.arrival_us, q.query_id)):
        start = max(clock, query.arrival_us)
        result = array.execute(replica, query)
        finish = start + result.service_us
        clock = finish
        replica.attempts += 1
        replica.successes += 1
        replica.busy_us += result.service_us
        outcomes.append(
            QueryOutcome(
                query_id=query.query_id,
                status=QueryStatus.SERVED,
                arrival_us=query.arrival_us,
                finish_us=finish,
                latency_us=finish - query.arrival_us,
                service_us=result.service_us,
                attempts=1,
                replica=0,
                breaker_state=replica.breaker.state.value,
                results=result.results,
            )
        )
    return ServingReport(
        outcomes=outcomes,
        total_time_us=clock,
        replicas=[
            ReplicaSummary(
                replica_id=0,
                faulty=False,
                attempts=replica.attempts,
                successes=replica.successes,
                failures=0,
                cancelled=0,
                busy_us=replica.busy_us,
                breaker_state=replica.breaker.state.value,
                breaker_opens=0,
            )
        ],
    )
