"""Bounded admission queue with backpressure and load shedding.

The host buffers admitted-but-undispatched queries in one FIFO queue
of bounded depth.  When an arrival finds the queue full, the shed
policy decides who pays:

``reject-newest``
    The arriving query is shed (classic tail-drop): queries already
    holding a slot keep their FIFO position, so latency of admitted
    work stays predictable.

``reject-over-deadline``
    Queued queries that can no longer meet their deadline (remaining
    budget below their expected service time) are evicted first — they
    would only time out after consuming a slot — and the arrival takes
    a freed slot if any; otherwise it is shed like ``reject-newest``.

A ``capacity`` of ``None`` removes the bound entirely (no query is
ever shed), and ``capacity=0`` disables buffering: queries are served
only if a replica is free at arrival.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

#: Recognized shedding policies.
REJECT_NEWEST = "reject-newest"
REJECT_OVER_DEADLINE = "reject-over-deadline"
SHED_POLICIES = (REJECT_NEWEST, REJECT_OVER_DEADLINE)


class AdmissionError(ValueError):
    """Raised for invalid admission-queue parameters."""


class AdmissionQueue:
    """One bounded FIFO of pending queries + shedding counters."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        policy: str = REJECT_NEWEST,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise AdmissionError(f"capacity must be >= 0: {capacity}")
        if policy not in SHED_POLICIES:
            raise AdmissionError(
                f"unknown shed policy {policy!r}; known: {SHED_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._queue: Deque[Any] = deque()
        #: The underlying deque, exposed for the host's hot path
        #: (``if not queue.buffer`` skips a method call per arrival).
        self.buffer = self._queue
        self.max_depth = 0
        self.admitted = 0
        self.shed_newest = 0
        self.shed_over_deadline = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Queries currently buffered."""
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether the queue is at capacity (backpressure asserted)."""
        return self.capacity is not None and len(self._queue) >= self.capacity

    # ------------------------------------------------------------------
    def offer(
        self,
        item: Any,
        hopeless: Optional[Callable[[Any], bool]] = None,
    ) -> Tuple[bool, List[Any], Optional[str]]:
        """Admit ``item`` or shed according to policy.

        ``hopeless`` is the over-deadline predicate supplied by the
        host (does this queued query's remaining budget still cover its
        expected service time?).  Returns ``(admitted, evicted,
        reason)``: ``evicted`` lists queued items shed to make room;
        ``reason`` is set when the arrival itself was rejected.
        """
        queue = self._queue
        capacity = self.capacity
        full = capacity is not None and len(queue) >= capacity
        evicted: List[Any] = []
        if full and self.policy == REJECT_OVER_DEADLINE and hopeless:
            evicted = [q for q in queue if hopeless(q)]
            for item_out in evicted:
                queue.remove(item_out)
            self.shed_over_deadline += len(evicted)
            full = len(queue) >= capacity
        if not full:
            queue.append(item)
            self.admitted += 1
            depth = len(queue)
            if depth > self.max_depth:
                self.max_depth = depth
            return True, evicted, None
        self.shed_newest += 1
        return False, evicted, "queue-full"

    def pop(self) -> Any:
        """Dequeue the oldest pending query."""
        return self._queue.popleft()

    def requeue_front(self, item: Any) -> None:
        """Put a query back at the head (retry keeps FIFO position)."""
        self._queue.appendleft(item)
        self.max_depth = max(self.max_depth, len(self._queue))

    def remove(self, item: Any) -> bool:
        """Drop a specific queued query (deadline watchdog fired)."""
        try:
            self._queue.remove(item)
            return True
        except ValueError:
            return False
