"""Replica array: cluster groups executing queries on the nested DES.

Each replica is a full :class:`repro.machine.SnapMachine` over its
slice of the array.  Executing an attempt runs the query's program
through the nested discrete-event simulator (so service times carry
the complete PU/MU/CU + ICN + synchronization cost model, faults
included) after wiping marker state — serving treats queries as
independent.

Because the nested simulator is deterministic and a replica's fault
pattern is fixed at construction, the result of ``(program, replica)``
never changes: attempts for queries sharing a ``template`` are
simulated once per replica and cached, which keeps host-level sweeps
(thousands of queries) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..machine.config import MachineConfig, Timing
from ..machine.faults import FaultConfig
from ..machine.machine import SnapMachine
from ..network.graph import SemanticNetwork
from ..obs.tracer import NULL_TRACER
from .breaker import CircuitBreaker
from .config import HostConfig
from .query import HostError, Query


@dataclass(slots=True)
class AttemptResult:
    """What one nested execution produced."""

    #: Simulated array busy time of the run, in µs.
    service_us: float
    #: True when the answer is undamaged (no query-visible failures).
    ok: bool
    #: Query-visible damage count from the fault report.
    damage: int = 0
    #: Collected retrieval results, in program order.
    results: List[Any] = field(default_factory=list)
    #: True when the nested run was cut off by a deadline budget.
    aborted: bool = False


@dataclass(slots=True)
class Replica:
    """Serving-side state of one cluster group."""

    replica_id: int
    machine: SnapMachine
    breaker: CircuitBreaker
    faulty: bool = False
    busy: bool = False
    #: Query id currently in service (bookkeeping only).
    serving: Optional[int] = None
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    #: Attempts cancelled mid-service (deadline or lost hedge race).
    cancelled: int = 0
    busy_us: float = 0.0


class ReplicaArray:
    """All replicas plus the nested-execution cache."""

    def __init__(
        self,
        network: SemanticNetwork,
        config: HostConfig,
        timing: Optional[Timing] = None,
    ) -> None:
        self.config = config
        self._network = network
        self._timing = timing or Timing()
        faulty = config.faulty_replicas()
        self.replicas: List[Replica] = []
        for rid in range(config.num_replicas):
            machine = self._build_machine(rid, config.fault_config_for(rid))
            self.replicas.append(
                Replica(
                    replica_id=rid,
                    machine=machine,
                    breaker=CircuitBreaker(
                        failure_threshold=config.breaker_failure_threshold,
                        cooldown_us=config.breaker_cooldown_us,
                        probe_quota=config.breaker_probe_quota,
                        enabled=config.breakers_enabled,
                    ),
                    faulty=rid in faulty,
                )
            )
        # Replica-level fault timeline: per replica, the sequence of
        # (start_us, fault pattern) regimes.  Phase 0 is the built-in
        # pattern; later phases come from ``config.replica_timeline``
        # and take effect on the first attempt dispatched at or after
        # their start (the host clock is passed into ``execute``).
        self._has_timeline = bool(config.replica_timeline)
        self._phases: List[List[Tuple[float, Optional[FaultConfig]]]] = [
            [(0.0, config.fault_config_for(rid))]
            for rid in range(config.num_replicas)
        ]
        for event in sorted(config.replica_timeline, key=lambda e: e.time_us):
            self._phases[event.replica].append((event.time_us, event.faults))
        self._phase_machines: Dict[Tuple[int, int], SnapMachine] = {
            (r.replica_id, 0): r.machine for r in self.replicas
        }
        self._cache: Dict[Tuple[str, int, int], AttemptResult] = {}
        self._healthy_cache: Dict[str, float] = {}
        self._reference_cache: Dict[str, List[Any]] = {}

    def _build_machine(
        self, rid: int, faults: Optional[FaultConfig]
    ) -> SnapMachine:
        machine_cfg = MachineConfig(
            num_clusters=self.config.clusters_per_replica,
            mus_per_cluster=self.config.mus_per_cluster,
            partition_policy=self.config.partition_policy,
            timing=self._timing,
            faults=faults,
        )
        machine = SnapMachine(self._network, machine_cfg)
        machine.trace_name = f"replica {rid:02d}"
        return machine

    def _phase_index(self, rid: int, now: float) -> int:
        """The regime in force on a replica at host time ``now``."""
        phases = self._phases[rid]
        index = 0
        for i in range(1, len(phases)):
            if phases[i][0] <= now:
                index = i
        return index

    def _machine_for(self, rid: int, phase: int) -> SnapMachine:
        machine = self._phase_machines.get((rid, phase))
        if machine is None:
            machine = self._build_machine(rid, self._phases[rid][phase][1])
            self._phase_machines[(rid, phase)] = machine
        return machine

    # ------------------------------------------------------------------
    @property
    def healthy_replicas(self) -> List[Replica]:
        """Replicas built without a fault pattern."""
        return [r for r in self.replicas if not r.faulty]

    def execute(
        self,
        replica: Replica,
        query: Query,
        budget_us: Optional[float] = None,
        tracer=None,
        metrics=None,
        trace_offset_us: float = 0.0,
        now: float = 0.0,
    ) -> AttemptResult:
        """Run the query on a replica; cached per (template, replica).

        Cached results are always full runs; ``budget_us`` (a deadline
        cut-off for the nested simulation) applies only to uncacheable
        queries, where simulating past the deadline would be wasted
        work.

        ``now`` (host clock) selects the fault regime when a
        :attr:`HostConfig.replica_timeline` is configured: the cache
        is keyed per (template, replica, regime), so the same template
        re-simulates when — and only when — the replica's world has
        changed.

        When a tracer is active, only the *first* execution of each
        ``(template, replica)`` pair emits machine-level tracks (cache
        hits replay the cached timing without re-simulating); the host
        still draws a span for every attempt, so the timeline stays
        complete.
        """
        phase = (
            self._phase_index(replica.replica_id, now)
            if self._has_timeline else 0
        )
        key = None
        if query.template is not None:
            key = (query.template, replica.replica_id, phase)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
            budget_us = None  # cache entries must be run-to-completion
        machine = (
            self._machine_for(replica.replica_id, phase)
            if self._has_timeline else replica.machine
        )
        machine.reset_markers()
        report = machine.run(
            query.program, budget_us=budget_us,
            tracer=tracer, metrics=metrics,
            trace_offset_us=trace_offset_us,
        )
        damage = 0
        if report.faults_enabled and report.fault_stats is not None:
            damage = report.fault_stats.query_visible_failures()
        result = AttemptResult(
            service_us=report.total_time_us,
            ok=damage == 0 and not report.aborted,
            damage=damage,
            results=report.results(),
            aborted=report.aborted,
        )
        if key is not None:
            self._cache[key] = result
        return result

    def healthy_service_us(self, query: Query) -> float:
        """Expected service time on an undamaged replica (cached).

        The admission controller's ``reject-over-deadline`` policy and
        the hedging logic both need a service estimate; the healthy
        replicas are identical, so one nested run per template answers
        for all of them.
        """
        if query.template is not None:
            hit = self._healthy_cache.get(query.template)
            if hit is not None:
                return hit
        # Estimate probes are warm-up runs, not serving activity: pin
        # the null tracer so they never pollute a capture (the global
        # tracer would otherwise catch them at offset 0).
        healthy = self.healthy_replicas
        if healthy:
            estimate = self.execute(
                healthy[0], query, tracer=NULL_TRACER
            ).service_us
        elif self.replicas:
            # Fully degraded array: estimate from the fastest replica.
            estimate = min(
                self.execute(r, query, tracer=NULL_TRACER).service_us
                for r in self.replicas
            )
        else:
            raise HostError("no replica to estimate service time")
        if query.template is not None:
            self._healthy_cache[query.template] = estimate
        return estimate

    def reference_results(self, query: Query) -> List[Any]:
        """Ground-truth answer for integrity auditing (cached).

        Shadow re-execution on a replica's *built-in* (phase 0)
        machine — healthy if any replica was built healthy.  Audit
        probes run under the null tracer like the service estimates:
        they are oracle reads, not serving activity.
        """
        if query.template is not None:
            hit = self._reference_cache.get(query.template)
            if hit is not None:
                return hit
        healthy = self.healthy_replicas
        target = healthy[0] if healthy else self.replicas[0]
        results = self.execute(target, query, tracer=NULL_TRACER).results
        if query.template is not None:
            self._reference_cache[query.template] = results
        return results
