"""Replica array: cluster groups executing queries on the nested DES.

Each replica is a full :class:`repro.machine.SnapMachine` over its
slice of the array.  Executing an attempt runs the query's program
through the nested discrete-event simulator (so service times carry
the complete PU/MU/CU + ICN + synchronization cost model, faults
included) after wiping marker state — serving treats queries as
independent.

Because the nested simulator is deterministic and a replica's fault
pattern is fixed at construction, the result of ``(program, replica)``
never changes: attempts for queries sharing a ``template`` are
simulated once per replica and cached, which keeps host-level sweeps
(thousands of queries) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..machine.config import MachineConfig, Timing
from ..machine.machine import SnapMachine
from ..network.graph import SemanticNetwork
from ..obs.tracer import NULL_TRACER
from .breaker import CircuitBreaker
from .config import HostConfig
from .query import HostError, Query


@dataclass(slots=True)
class AttemptResult:
    """What one nested execution produced."""

    #: Simulated array busy time of the run, in µs.
    service_us: float
    #: True when the answer is undamaged (no query-visible failures).
    ok: bool
    #: Query-visible damage count from the fault report.
    damage: int = 0
    #: Collected retrieval results, in program order.
    results: List[Any] = field(default_factory=list)
    #: True when the nested run was cut off by a deadline budget.
    aborted: bool = False


@dataclass(slots=True)
class Replica:
    """Serving-side state of one cluster group."""

    replica_id: int
    machine: SnapMachine
    breaker: CircuitBreaker
    faulty: bool = False
    busy: bool = False
    #: Query id currently in service (bookkeeping only).
    serving: Optional[int] = None
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    #: Attempts cancelled mid-service (deadline or lost hedge race).
    cancelled: int = 0
    busy_us: float = 0.0


class ReplicaArray:
    """All replicas plus the nested-execution cache."""

    def __init__(
        self,
        network: SemanticNetwork,
        config: HostConfig,
        timing: Optional[Timing] = None,
    ) -> None:
        self.config = config
        faulty = config.faulty_replicas()
        self.replicas: List[Replica] = []
        for rid in range(config.num_replicas):
            machine_cfg = MachineConfig(
                num_clusters=config.clusters_per_replica,
                mus_per_cluster=config.mus_per_cluster,
                partition_policy=config.partition_policy,
                timing=timing or Timing(),
                faults=config.fault_config_for(rid),
            )
            machine = SnapMachine(network, machine_cfg)
            machine.trace_name = f"replica {rid:02d}"
            self.replicas.append(
                Replica(
                    replica_id=rid,
                    machine=machine,
                    breaker=CircuitBreaker(
                        failure_threshold=config.breaker_failure_threshold,
                        cooldown_us=config.breaker_cooldown_us,
                        probe_quota=config.breaker_probe_quota,
                        enabled=config.breakers_enabled,
                    ),
                    faulty=rid in faulty,
                )
            )
        self._cache: Dict[Tuple[str, int], AttemptResult] = {}
        self._healthy_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def healthy_replicas(self) -> List[Replica]:
        """Replicas built without a fault pattern."""
        return [r for r in self.replicas if not r.faulty]

    def execute(
        self,
        replica: Replica,
        query: Query,
        budget_us: Optional[float] = None,
        tracer=None,
        metrics=None,
        trace_offset_us: float = 0.0,
    ) -> AttemptResult:
        """Run the query on a replica; cached per (template, replica).

        Cached results are always full runs; ``budget_us`` (a deadline
        cut-off for the nested simulation) applies only to uncacheable
        queries, where simulating past the deadline would be wasted
        work.

        When a tracer is active, only the *first* execution of each
        ``(template, replica)`` pair emits machine-level tracks (cache
        hits replay the cached timing without re-simulating); the host
        still draws a span for every attempt, so the timeline stays
        complete.
        """
        key = None
        if query.template is not None:
            key = (query.template, replica.replica_id)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
            budget_us = None  # cache entries must be run-to-completion
        machine = replica.machine
        machine.reset_markers()
        report = machine.run(
            query.program, budget_us=budget_us,
            tracer=tracer, metrics=metrics,
            trace_offset_us=trace_offset_us,
        )
        damage = 0
        if report.faults_enabled and report.fault_stats is not None:
            damage = report.fault_stats.query_visible_failures()
        result = AttemptResult(
            service_us=report.total_time_us,
            ok=damage == 0 and not report.aborted,
            damage=damage,
            results=report.results(),
            aborted=report.aborted,
        )
        if key is not None:
            self._cache[key] = result
        return result

    def healthy_service_us(self, query: Query) -> float:
        """Expected service time on an undamaged replica (cached).

        The admission controller's ``reject-over-deadline`` policy and
        the hedging logic both need a service estimate; the healthy
        replicas are identical, so one nested run per template answers
        for all of them.
        """
        if query.template is not None:
            hit = self._healthy_cache.get(query.template)
            if hit is not None:
                return hit
        # Estimate probes are warm-up runs, not serving activity: pin
        # the null tracer so they never pollute a capture (the global
        # tracer would otherwise catch them at offset 0).
        healthy = self.healthy_replicas
        if healthy:
            estimate = self.execute(
                healthy[0], query, tracer=NULL_TRACER
            ).service_us
        elif self.replicas:
            # Fully degraded array: estimate from the fastest replica.
            estimate = min(
                self.execute(r, query, tracer=NULL_TRACER).service_us
                for r in self.replicas
            )
        else:
            raise HostError("no replica to estimate service time")
        if query.template is not None:
            self._healthy_cache[query.template] = estimate
        return estimate
