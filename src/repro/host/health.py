"""Per-replica health scoring and the quarantine lifecycle.

The circuit breaker (:mod:`repro.host.breaker`) only reacts to
query-visible damage — fault counters the machine itself reports.
Gray failures produce none: a replica whose MUs run 3x slow, or one
silently dropping activation markers, completes every attempt
"successfully".  The health layer closes that gap with three parts:

* A **phi-accrual failure detector** over attempt service-time ratios
  (observed service / healthy baseline).  The phi score is the
  negative log of the probability that the recent window of ratios
  came from a healthy replica; it rises smoothly as latency degrades,
  so slow-but-alive replicas are caught without a hard timeout.
* A **quarantine → probe → readmit state machine** layered under the
  breaker.  When phi crosses the quarantine threshold the replica is
  removed from dispatch; after a hold-off one probe query at a time is
  admitted, and consecutive healthy probes readmit it.
* **Audit hooks**: the host's answer-integrity audit (shadow
  re-execution on a healthy replica) calls
  :meth:`ReplicaHealth.record_audit_failure` on a mismatch, which
  quarantines immediately — the only detection path for silent marker
  drop, which is invisible to both the breaker and the latency signal
  when the dropped marker shortens the run.

All timestamps are simulated microseconds supplied by the caller, so
lifecycle behaviour is deterministic: same seed, same timeline, same
transitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List


class HealthError(ValueError):
    """Raised for invalid health-detector parameters."""


class HealthState(str, Enum):
    """Lifecycle states of a replica under health management."""

    ACTIVE = "active"
    QUARANTINED = "quarantined"
    PROBING = "probing"


@dataclass(frozen=True)
class HealthTransition:
    """One lifecycle change, for the serving report's audit trail."""

    time_us: float
    from_state: HealthState
    to_state: HealthState
    phi: float = 0.0
    reason: str = ""


class PhiAccrualDetector:
    """Phi-accrual suspicion score over service-time ratios.

    Each observation is an attempt's ``service_us`` divided by the
    healthy baseline for the same query (optionally inflated by a
    damage term).  A healthy replica scores ~1.0 per observation; the
    detector keeps a sliding window and asks how improbable it is that
    the window mean sits above 1.0 by chance:

        z   = (mean - 1) / (sigma / sqrt(n))
        phi = -log10( 0.5 * erfc(z / sqrt(2)) )

    ``sigma`` is floored (``sigma_floor``) so a perfectly-steady
    degraded replica still accrues suspicion instead of dividing by a
    zero spread.
    """

    def __init__(
        self,
        window: int = 12,
        min_samples: int = 4,
        sigma_floor: float = 0.08,
    ) -> None:
        if window < 2:
            raise HealthError(f"window must be >= 2: {window}")
        if not 1 <= min_samples <= window:
            raise HealthError(
                f"min_samples must be in [1, window]: {min_samples}"
            )
        if sigma_floor <= 0:
            raise HealthError(f"sigma_floor must be > 0: {sigma_floor}")
        self.window = window
        self.min_samples = min_samples
        self.sigma_floor = sigma_floor
        self._scores: List[float] = []

    def observe(self, score: float) -> None:
        """Fold one attempt score into the sliding window."""
        self._scores.append(score)
        if len(self._scores) > self.window:
            del self._scores[0]

    def reset(self) -> None:
        """Forget the window (replica readmitted after repair)."""
        self._scores.clear()

    @property
    def samples(self) -> int:
        return len(self._scores)

    def mean(self) -> float:
        if not self._scores:
            return 0.0
        return sum(self._scores) / len(self._scores)

    def phi(self) -> float:
        """Current suspicion level (0 = healthy, higher = worse)."""
        n = len(self._scores)
        if n < self.min_samples:
            return 0.0
        mean = self.mean()
        if mean <= 1.0:
            return 0.0
        var = sum((s - mean) ** 2 for s in self._scores) / n
        sigma = max(math.sqrt(var), self.sigma_floor)
        z = (mean - 1.0) / (sigma / math.sqrt(n))
        tail = 0.5 * math.erfc(z / math.sqrt(2.0))
        return -math.log10(max(tail, 1e-300))


class ReplicaHealth:
    """Quarantine lifecycle for one replica.

    Mirrors the breaker's calling convention — ``allow`` at dispatch,
    ``acquire``/``release`` around in-flight probes, one verdict call
    per completed attempt — so the host layers it under the breaker
    without restructuring the dispatch loop.  A disabled instance
    (``enabled=False``) admits everything and never transitions.
    """

    def __init__(
        self,
        enabled: bool = True,
        window: int = 12,
        min_samples: int = 4,
        sigma_floor: float = 0.08,
        damage_weight: float = 0.5,
        phi_quarantine: float = 8.0,
        probe_after_us: float = 30_000.0,
        probe_successes: int = 2,
        readmit_ratio: float = 1.5,
    ) -> None:
        if damage_weight < 0:
            raise HealthError(f"damage_weight must be >= 0: {damage_weight}")
        if phi_quarantine <= 0:
            raise HealthError(
                f"phi_quarantine must be > 0: {phi_quarantine}"
            )
        if probe_after_us < 0:
            raise HealthError(
                f"probe_after_us must be >= 0: {probe_after_us}"
            )
        if probe_successes < 1:
            raise HealthError(
                f"probe_successes must be >= 1: {probe_successes}"
            )
        if readmit_ratio <= 0:
            raise HealthError(
                f"readmit_ratio must be > 0: {readmit_ratio}"
            )
        self.enabled = enabled
        self.detector = PhiAccrualDetector(window, min_samples, sigma_floor)
        self.damage_weight = damage_weight
        self.phi_quarantine = phi_quarantine
        self.probe_after_us = probe_after_us
        self.probe_successes = probe_successes
        self.readmit_ratio = readmit_ratio
        self.state = HealthState.ACTIVE
        self.quarantined_at_us = 0.0
        self.quarantines = 0
        self.readmissions = 0
        self.probes = 0
        self.audit_failures = 0
        self.transitions: List[HealthTransition] = []
        self._probe_in_flight = False
        self._probe_streak = 0

    # ------------------------------------------------------------------
    def _transition(
        self, now: float, to_state: HealthState,
        phi: float = 0.0, reason: str = "",
    ) -> None:
        self.transitions.append(
            HealthTransition(now, self.state, to_state, phi, reason)
        )
        self.state = to_state

    def _quarantine(self, now: float, phi: float, reason: str) -> None:
        self._transition(now, HealthState.QUARANTINED, phi, reason)
        self.quarantined_at_us = now
        self.quarantines += 1
        self._probe_in_flight = False
        self._probe_streak = 0

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether the dispatcher may route an attempt here at ``now``.

        Observing an expired hold-off lazily moves QUARANTINED →
        PROBING; in the probing state one attempt is admitted at a
        time.
        """
        if not self.enabled:
            return True
        if self.state is HealthState.QUARANTINED:
            if now < self.quarantined_at_us + self.probe_after_us:
                return False
            self._transition(now, HealthState.PROBING, reason="hold-off")
            self._probe_in_flight = False
            self._probe_streak = 0
        if self.state is HealthState.PROBING:
            return not self._probe_in_flight
        return True

    def acquire(self, now: float) -> None:
        """Reserve the probe slot :meth:`allow` granted (no-op when active)."""
        if self.enabled and self.state is HealthState.PROBING:
            self._probe_in_flight = True
            self.probes += 1

    def release(self) -> None:
        """Return a reserved probe slot without a verdict (cancelled)."""
        if self.enabled and self.state is HealthState.PROBING:
            self._probe_in_flight = False

    def record_attempt(
        self, now: float, service_ratio: float, damage: int
    ) -> None:
        """Fold one completed attempt into the lifecycle.

        ``service_ratio`` is observed service over the healthy
        baseline for the same query; ``damage`` is the attempt's
        ``query_visible_failures`` count.
        """
        if not self.enabled:
            return
        if self.state is HealthState.QUARANTINED:
            # Stale verdict from an attempt issued before quarantine.
            return
        if self.state is HealthState.PROBING:
            self._probe_in_flight = False
            ok = damage == 0 and service_ratio <= self.readmit_ratio
            if ok:
                self._probe_streak += 1
                if self._probe_streak >= self.probe_successes:
                    self.detector.reset()
                    self.readmissions += 1
                    self._transition(
                        now, HealthState.ACTIVE, reason="readmitted"
                    )
                return
            self._quarantine(now, self.detector.phi(), "probe-failed")
            return
        self.detector.observe(
            service_ratio + self.damage_weight * damage
        )
        phi = self.detector.phi()
        if phi >= self.phi_quarantine:
            self._quarantine(now, phi, "phi")

    def record_audit_failure(self, now: float) -> None:
        """An integrity audit caught a wrong answer from this replica."""
        self.audit_failures += 1
        if not self.enabled or self.state is HealthState.QUARANTINED:
            return
        self._quarantine(now, self.detector.phi(), "audit")


def health_transition_records(
    health: "ReplicaHealth", replica_id: int
) -> List[tuple]:
    """One ``(ts_us, fields)`` record per lifecycle transition.

    The shape telemetry sinks ingest (``kind="health"`` events):
    flat fields, enum values as strings, phi rounded so downstream
    snapshots are platform-stable.  Shared by the serving host and
    the fleet router so host-level and fleet-level health events
    aggregate identically.
    """
    return [
        (
            t.time_us,
            {
                "replica": replica_id,
                "from_state": t.from_state.value,
                "to_state": t.to_state.value,
                "phi": round(t.phi, 4),
                "reason": t.reason,
            },
        )
        for t in health.transitions
    ]
