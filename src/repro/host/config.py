"""Serving-host configuration.

The host views the array as ``num_replicas`` independent **replica
groups** of ``clusters_per_replica`` clusters each, every group
holding a full copy of the knowledge base (the scale-out analogue of
the paper's single-host setup: queries are independent, so capacity
grows by replication rather than by partitioning one propagation
across more clusters).  Faults are injected per replica through the
PR 1 fault layer: a seed-driven subset of replicas receives a
:class:`repro.machine.faults.FaultConfig` derived from
``replica_fault_template``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from ..machine.faults import FaultConfig, RetryPolicy
from .admission import SHED_POLICIES, REJECT_NEWEST


class HostConfigError(ValueError):
    """Raised for inconsistent serving-host configurations."""


@dataclass(frozen=True)
class ReplicaFaultEvent:
    """One entry of a replica-level fault timeline.

    From ``time_us`` on (host clock), attempts dispatched to
    ``replica`` run against a machine built with ``faults``; ``None``
    means the replica is healthy from that instant (repair).  Work
    already in flight on the replica finishes under the old regime —
    the switch applies to the next dispatched attempt, matching how a
    real repair only helps queries that arrive after it.
    """

    time_us: float
    replica: int
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise HostConfigError(
                f"replica fault event time must be >= 0: {self.time_us}"
            )
        if self.replica < 0:
            raise HostConfigError(
                f"replica id must be >= 0: {self.replica}"
            )


def default_replica_faults() -> FaultConfig:
    """Template for a *degraded* replica: half its clusters offline,
    light transfer corruption and SCP flakiness, a tight retry budget
    (so damage actually reaches the query level and the breaker)."""
    return FaultConfig(
        failed_cluster_fraction=0.5,
        transfer_corrupt_prob=0.05,
        scp_timeout_prob=0.05,
        remap_nodes=False,
        retry=RetryPolicy(max_retries=1),
    )


@dataclass(frozen=True)
class HostConfig:
    """Everything the serving layer needs beyond the machine itself."""

    #: Replica groups the array is carved into.
    num_replicas: int = 4
    #: Clusters per replica group (each holds a full KB copy).
    clusters_per_replica: int = 4
    #: Marker units per cluster within each replica.
    mus_per_cluster: int = 2
    #: KB partition policy within each replica.
    partition_policy: str = "round-robin"
    # -- fleet identity ---------------------------------------------------
    #: Stable replica-group identifier when this host serves as one
    #: shard group of a fleet (``None`` = standalone host; behaviour
    #: is unchanged either way — identity is carried, not acted on).
    group_id: Optional[str] = None
    #: Failure domain (region) the group is deployed in.
    region: Optional[int] = None
    # -- admission control ----------------------------------------------
    #: Bounded admission-queue depth; ``None`` = unbounded (no shedding).
    queue_capacity: Optional[int] = 64
    #: ``reject-newest`` or ``reject-over-deadline``.
    shed_policy: str = REJECT_NEWEST
    #: Deadline applied to queries that carry none (``None`` = no
    #: default deadline).
    default_deadline_us: Optional[float] = None
    # -- retries and hedging ---------------------------------------------
    #: Primary + sequential retry attempts per query (hedges excluded).
    max_attempts: int = 2
    #: Re-issue a straggling attempt onto another replica once it has
    #: been in flight this long (``None`` disables hedging).
    hedge_after_us: Optional[float] = None
    #: Maximum hedge attempts per query.
    hedge_max: int = 1
    # -- circuit breakers -------------------------------------------------
    breakers_enabled: bool = True
    #: Consecutive failures that trip a replica's breaker.
    breaker_failure_threshold: int = 3
    #: Simulated µs a tripped breaker stays open.
    breaker_cooldown_us: float = 20_000.0
    #: Probe attempts admitted while half-open.
    breaker_probe_quota: int = 1
    # -- fault feed -------------------------------------------------------
    #: Fraction of replicas built degraded (seed-driven choice).
    faulty_replica_fraction: float = 0.0
    #: Fault pattern applied to each degraded replica (per-replica
    #: seeds are derived, so patterns differ across replicas).
    replica_fault_template: Optional[FaultConfig] = None
    #: Root seed for replica selection and per-replica fault seeds.
    fault_seed: int = 0
    #: Mid-run regime changes: each event swaps one replica's fault
    #: pattern at a host-clock instant (``None`` faults = repaired).
    replica_timeline: Tuple[ReplicaFaultEvent, ...] = ()
    # -- health lifecycle --------------------------------------------------
    #: Enable the phi-accrual health detector + quarantine lifecycle.
    health_enabled: bool = False
    #: Sliding-window length of the phi detector.
    health_window: int = 12
    #: Observations before the detector may accuse.
    health_min_samples: int = 4
    #: Spread floor so steady degradation still accrues suspicion.
    health_sigma_floor: float = 0.08
    #: Score added per unit of query-visible damage.
    health_damage_weight: float = 0.5
    #: Phi level at which a replica is quarantined.
    health_phi_quarantine: float = 8.0
    #: Simulated µs quarantined before probing begins.
    health_probe_after_us: float = 30_000.0
    #: Consecutive healthy probes required to readmit.
    health_probe_successes: int = 2
    #: Service ratio a probe must stay under to count as healthy.
    health_readmit_ratio: float = 1.5
    # -- answer-integrity auditing ----------------------------------------
    #: Shadow-re-execute every Nth served answer on a healthy replica
    #: and compare results (``None`` disables auditing).
    audit_interval: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("num_replicas", "clusters_per_replica",
                     "mus_per_cluster", "max_attempts", "hedge_max"):
            value = getattr(self, name)
            if name != "hedge_max" and value < 1:
                raise HostConfigError(f"{name} must be >= 1: {value}")
            if name == "hedge_max" and value < 0:
                raise HostConfigError(f"{name} must be >= 0: {value}")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise HostConfigError(
                f"queue_capacity must be >= 0: {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise HostConfigError(
                f"shed_policy must be one of {SHED_POLICIES}: "
                f"{self.shed_policy!r}"
            )
        if (self.default_deadline_us is not None
                and self.default_deadline_us <= 0):
            raise HostConfigError(
                f"default_deadline_us must be > 0: {self.default_deadline_us}"
            )
        if self.hedge_after_us is not None and self.hedge_after_us <= 0:
            raise HostConfigError(
                f"hedge_after_us must be > 0: {self.hedge_after_us}"
            )
        if not 0.0 <= self.faulty_replica_fraction <= 1.0:
            raise HostConfigError(
                "faulty_replica_fraction must be in [0, 1]: "
                f"{self.faulty_replica_fraction}"
            )
        bad = sorted(
            {e.replica for e in self.replica_timeline
             if e.replica >= self.num_replicas}
        )
        if bad:
            raise HostConfigError(
                "replica_timeline names replicas outside the "
                f"{self.num_replicas}-replica array: {bad}"
            )
        if self.health_window < 2:
            raise HostConfigError(
                f"health_window must be >= 2: {self.health_window}"
            )
        if not 1 <= self.health_min_samples <= self.health_window:
            raise HostConfigError(
                "health_min_samples must be in [1, health_window]: "
                f"{self.health_min_samples}"
            )
        for name in ("health_sigma_floor", "health_phi_quarantine",
                     "health_readmit_ratio"):
            value = getattr(self, name)
            if value <= 0:
                raise HostConfigError(f"{name} must be > 0: {value}")
        if self.health_damage_weight < 0:
            raise HostConfigError(
                "health_damage_weight must be >= 0: "
                f"{self.health_damage_weight}"
            )
        if self.health_probe_after_us < 0:
            raise HostConfigError(
                "health_probe_after_us must be >= 0: "
                f"{self.health_probe_after_us}"
            )
        if self.health_probe_successes < 1:
            raise HostConfigError(
                "health_probe_successes must be >= 1: "
                f"{self.health_probe_successes}"
            )
        if self.audit_interval is not None and self.audit_interval < 1:
            raise HostConfigError(
                f"audit_interval must be >= 1: {self.audit_interval}"
            )
        if self.region is not None and self.region < 0:
            raise HostConfigError(f"region must be >= 0: {self.region}")

    # ------------------------------------------------------------------
    def faulty_replicas(self) -> FrozenSet[int]:
        """Seed-driven set of degraded replica ids (may be empty)."""
        count = int(round(self.faulty_replica_fraction * self.num_replicas))
        if count <= 0:
            return frozenset()
        count = min(count, self.num_replicas)
        rng = random.Random(f"{self.fault_seed}/replicas")
        return frozenset(rng.sample(range(self.num_replicas), count))

    def fault_config_for(self, replica_id: int) -> Optional[FaultConfig]:
        """The fault pattern a replica is built with (``None`` = healthy)."""
        if replica_id not in self.faulty_replicas():
            return None
        template = self.replica_fault_template or default_replica_faults()
        return replace(template, seed=self.fault_seed * 1009 + replica_id + 1)
