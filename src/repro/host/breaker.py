"""Per-replica circuit breakers (closed → open → half-open).

Each replica of the array carries one breaker fed by the fault reports
of completed attempts (:class:`repro.machine.faults.FaultStats`): an
attempt whose run report shows query-visible damage counts as a
failure.  ``failure_threshold`` consecutive failures *trip* the
breaker — the dispatcher stops routing queries to the replica for
``cooldown_us`` of simulated time.  After the cooldown the breaker
goes **half-open**: up to ``probe_quota`` probe queries may be
dispatched; one success closes the breaker, one failure re-opens it
for another cooldown.

All timestamps are simulated microseconds supplied by the caller (the
host's DES clock), so breaker behaviour is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List


class BreakerError(ValueError):
    """Raised for invalid breaker parameters."""


class BreakerState(str, Enum):
    """The three states of the breaker state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, for the serving report's audit trail."""

    time_us: float
    from_state: BreakerState
    to_state: BreakerState


class CircuitBreaker:
    """Failure-counting breaker over one replica.

    A disabled breaker (``enabled=False``) admits everything and never
    changes state — the zero-overhead pass-through used by the serial
    equivalence mode.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_us: float = 20_000.0,
        probe_quota: int = 1,
        enabled: bool = True,
    ) -> None:
        if failure_threshold < 1:
            raise BreakerError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if cooldown_us < 0:
            raise BreakerError(f"cooldown_us must be >= 0: {cooldown_us}")
        if probe_quota < 1:
            raise BreakerError(f"probe_quota must be >= 1: {probe_quota}")
        self.failure_threshold = failure_threshold
        self.cooldown_us = cooldown_us
        self.probe_quota = probe_quota
        self.enabled = enabled
        self.state = BreakerState.CLOSED
        self.open_until_us = 0.0
        self.consecutive_failures = 0
        self.successes = 0
        self.failures = 0
        self.transitions: List[BreakerTransition] = []
        self._probes_in_flight = 0

    # ------------------------------------------------------------------
    @property
    def times_opened(self) -> int:
        """How often the breaker tripped."""
        return sum(
            1 for t in self.transitions if t.to_state is BreakerState.OPEN
        )

    def _transition(self, now: float, to_state: BreakerState) -> None:
        self.transitions.append(
            BreakerTransition(now, self.state, to_state)
        )
        self.state = to_state

    def _trip(self, now: float) -> None:
        self._transition(now, BreakerState.OPEN)
        self.open_until_us = now + self.cooldown_us
        self.consecutive_failures = 0
        self._probes_in_flight = 0

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether the dispatcher may route an attempt here at ``now``.

        Observing an expired cooldown lazily moves OPEN → HALF-OPEN.
        """
        if not self.enabled:
            return True
        if self.state is BreakerState.OPEN:
            if now < self.open_until_us:
                return False
            self._transition(now, BreakerState.HALF_OPEN)
            self._probes_in_flight = 0
        if self.state is BreakerState.HALF_OPEN:
            return self._probes_in_flight < self.probe_quota
        return True

    def acquire(self, now: float) -> None:
        """Reserve the dispatch slot :meth:`allow` granted.

        In half-open state this consumes one probe slot; in closed
        state it is a no-op.  Callers must pair it with exactly one of
        :meth:`record_success`, :meth:`record_failure`, or
        :meth:`release`.
        """
        if self.enabled and self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight += 1

    def release(self) -> None:
        """Return a reserved slot without a verdict (attempt cancelled)."""
        if self.enabled and self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_success(self, now: float) -> None:
        """An attempt on this replica completed undamaged."""
        self.successes += 1
        if not self.enabled:
            return
        if self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._transition(now, BreakerState.CLOSED)
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """An attempt completed with query-visible fault damage."""
        self.failures += 1
        if not self.enabled:
            return
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        if self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._trip(now)
