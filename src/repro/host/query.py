"""Queries and per-query outcome records.

A *query* is one marker-propagation program submitted to the serving
host at a simulated arrival time, optionally carrying a deadline (a
latency budget relative to arrival).  Every submitted query terminates
in **exactly one** of four outcome buckets:

``served``
    An attempt completed with an undamaged answer before the deadline.
``shed``
    Admission control rejected the query (queue full, or evicted as
    hopeless under the ``reject-over-deadline`` policy) — it never
    occupied array resources.
``timed-out``
    The deadline watchdog fired while the query was queued or in
    service; in-flight attempts were cancelled and their replicas
    freed.
``failed``
    Every permitted attempt completed with query-visible fault damage
    (lost/unreachable activation messages — see
    :meth:`repro.machine.faults.FaultStats.query_visible_failures`).

The invariant "every query lands in exactly one bucket" is checked by
:meth:`repro.host.report.ServingReport.accounted`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from ..isa.program import SnapProgram


class HostError(ValueError):
    """Raised for invalid queries or serving-host misuse."""


class QueryStatus(str, Enum):
    """Terminal disposition of one query."""

    SERVED = "served"
    SHED = "shed"
    TIMED_OUT = "timed-out"
    FAILED = "failed"


@dataclass(frozen=True)
class Query:
    """One marker-propagation request in the arrival stream."""

    query_id: int
    program: SnapProgram
    #: Simulated arrival time at the host, in µs.
    arrival_us: float = 0.0
    #: Latency budget relative to arrival (``None`` = no deadline).
    deadline_us: Optional[float] = None
    #: Cache key for repeated programs: queries sharing a template run
    #: the identical program, so one nested simulation per (template,
    #: replica) pair serves every repetition.  ``None`` disables
    #: caching for this query.
    template: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise HostError(f"arrival_us must be >= 0: {self.arrival_us}")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise HostError(f"deadline_us must be > 0: {self.deadline_us}")

    @property
    def absolute_deadline_us(self) -> Optional[float]:
        """Wall-clock (simulated) instant the deadline expires."""
        if self.deadline_us is None:
            return None
        return self.arrival_us + self.deadline_us


@dataclass(slots=True)
class QueryOutcome:
    """Structured record of one query's terminal disposition."""

    query_id: int
    status: QueryStatus
    arrival_us: float
    finish_us: float
    #: Arrival-to-terminal elapsed time (queueing + service), in µs.
    latency_us: float
    #: Array busy time of the winning attempt (0 when never served).
    service_us: float = 0.0
    #: Attempts dispatched to the array, hedges included.
    attempts: int = 0
    #: Hedge attempts among ``attempts``.
    hedges: int = 0
    #: Sequential retries after failed attempts (non-hedge re-issues).
    retries: int = 0
    #: Replica that produced the terminal attempt, if any.
    replica: Optional[int] = None
    #: Breaker state of that replica when the outcome was recorded.
    breaker_state: Optional[str] = None
    #: Why admission rejected the query (shed outcomes only).
    shed_reason: Optional[str] = None
    #: Collected retrieval results of the served run (program order).
    results: Optional[List[Any]] = field(default=None, repr=False)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly; results omitted)."""
        return {
            "query_id": self.query_id,
            "status": self.status.value,
            "arrival_us": self.arrival_us,
            "finish_us": self.finish_us,
            "latency_us": self.latency_us,
            "service_us": self.service_us,
            "attempts": self.attempts,
            "hedges": self.hedges,
            "retries": self.retries,
            "replica": self.replica,
            "breaker_state": self.breaker_state,
            "shed_reason": self.shed_reason,
        }
