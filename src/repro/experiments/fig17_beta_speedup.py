"""Fig. 17 — speedup under β-parallelism (overlapped PROPAGATEs).

*"As opposed to α-parallelism, increasing the degree of β-parallelism
above 16 had little impact on speedup ...  acceptable speedup rates
can be obtained for marker-propagation programs which have degrees of
parallelism α_ave ≈ 100 and β_ave ≈ 5."*
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.speedup import SpeedupCurve, SweepPoint, knee
from ..baselines.serial import SerialMachine
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, fmt_us, timed
from .workloads import make_beta_workload


@experiment("fig17")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep β on the 72-PE machine; speedup vs the serial baseline."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig17",
            title="Speedup vs degree of beta-parallelism "
                  "(overlapped PROPAGATE statements, 72-PE array)",
            paper_claim="speedup saturates: increasing beta above 16 has "
                        "little impact",
        )
        betas = [1, 2, 4, 8, 16, 24, 32]
        alpha_per_stream = 4 if fast else 8
        path_length = 10
        from dataclasses import replace

        config = replace(snap1_16cluster(), partition_policy="semantic")
        rows: List[Dict] = []
        curve = SpeedupCurve(label="beta sweep")
        result.add(
            f"{'beta':>5}{'serial':>12}{'SNAP-1':>12}{'speedup':>9}"
        )
        for beta in betas:
            workload = make_beta_workload(beta, alpha_per_stream, path_length)
            serial_time = SerialMachine(workload.network).run(
                workload.program
            ).total_time_us
            snap_time = SnapMachine(
                make_beta_workload(
                    beta, alpha_per_stream, path_length
                ).network,
                config,
            ).run(workload.program).total_time_us
            speedup = serial_time / snap_time if snap_time else 0.0
            rows.append(
                {"beta": beta, "serial_us": serial_time,
                 "snap_us": snap_time, "speedup": speedup}
            )
            curve.add(SweepPoint(beta, config.num_clusters, snap_time))
            result.add(
                f"{beta:>5}{fmt_us(serial_time):>12}"
                f"{fmt_us(snap_time):>12}{speedup:>9.2f}"
            )
        # Saturation check: marginal speedup gain above beta=16.
        by_beta = {r["beta"]: r["speedup"] for r in rows}
        gain_to_16 = by_beta[16] / by_beta[1]
        gain_past_16 = by_beta[32] / by_beta[16]
        result.add()
        result.add(
            f"speedup gain 1->16: x{gain_to_16:.2f}; "
            f"16->32: x{gain_past_16:.2f} "
            f"(saturation above 16: {gain_past_16 < gain_to_16})"
        )
        result.data = {"rows": rows}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
