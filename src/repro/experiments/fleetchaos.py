"""Extension study — fleetchaos: a regional outage under fleet load.

The chaos experiment degrades *replicas within one host*; this one
kills an entire **failure domain** of the sharded fleet and requires
the routing layer — not retries, not breakers — to keep answering:

* **failover** — shards homed in the dead region must serve from
  their surviving replica immediately (stale-flagged answers, the
  cross-region hop priced in);
* **re-replication** — the background rebalancer must restore the
  replication factor R while the outage is still in progress, then
  migrate serving home after the repair;
* **gray failure** — a later region-wide slowdown (nothing dies,
  everything is 3x slow) must be caught by the phi-accrual health
  lifecycle and routed around, then readmitted after it clears;
* **quorum-or-degrade** — every in-deadline query returns a correct
  answer throughout, COMPLETE when all legs are fresh and DEGRADED
  while any leg is served stale.

Everything is seed-driven and simulated-time deterministic: same
seed, same timeline, same failovers, same report.

Run with ``python -m repro experiments fleetchaos``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from ..fleet import FleetConfig, FleetRouter
from ..host import Query
from ..isa import assemble
from ..machine.faults import RegionEvent, RegionSchedule
from ..network.generator import generate_hierarchy_kb
from ..obs.live import TelemetrySink
from ..obs.live.monitor import fleetchaos_spec, run_pipeline
from .common import ExperimentResult, experiment, timed

FLEETCHAOS_SEED = 20260808

#: Search roots spread across the hierarchy so every shard owns some
#: and misses others (exercising both the answer and the miss path).
ROOTS = ("thing", "c1", "c2", "c5", "c17", "c40", "c80", "c120")

#: Outage/repair/gray timeline (fleet clock, µs).
FAIL_US = 30_000.0
REPAIR_US = 300_000.0
GRAY_ON_US = 330_000.0
GRAY_OFF_US = 400_000.0
GRAY_FACTOR = 3.0


def build_fleet_queries(
    count: int, mean_gap_us: float, deadline_us: float, seed: int
) -> List[Query]:
    """A Poisson stream of downward-closure queries over ``ROOTS``."""
    programs = {
        name: assemble(
            f"SEARCH-NODE {name} b0\n"
            "PROPAGATE b0 b1 chain(inverse:is-a)\n"
            "COLLECT-NODE b1\n"
        )
        for name in ROOTS
    }
    rng = random.Random(seed)
    queries = []
    now = 0.0
    for query_id in range(count):
        now += rng.expovariate(1.0) * mean_gap_us
        name = rng.choice(ROOTS)
        queries.append(Query(
            query_id=query_id, program=programs[name], arrival_us=now,
            deadline_us=deadline_us, template=name,
        ))
    return queries


def build_scenario(
    fast: bool = True,
) -> Tuple[Any, FleetConfig, List[Query], Dict[str, float]]:
    """(network, config, queries, profile) for the regional-outage run.

    Shared with the ``fleetchaos`` trace capture so the experiment,
    the golden, and CI all see the same scenario.  Region 0 (home to
    some shards by ring placement) dies early and is repaired late;
    region 2 then turns gray (3x slow) and recovers.  The query
    stream spans the whole timeline.
    """
    num_nodes = 240 if fast else 480
    count = 220 if fast else 440
    network = generate_hierarchy_kb(num_nodes, branching=3)
    config = FleetConfig(
        num_regions=3,
        num_shards=4,
        replication_factor=2,
        partition_policy="community",
        region_schedule=RegionSchedule((
            RegionEvent(FAIL_US, "region-fail", 0),
            RegionEvent(REPAIR_US, "region-repair", 0),
            RegionEvent(GRAY_ON_US, "region-slowdown", 2, GRAY_FACTOR),
            RegionEvent(GRAY_OFF_US, "region-slowdown", 2, 1.0),
        )),
        health_enabled=True,
        health_window=8,
        health_min_samples=3,
        health_phi_quarantine=4.0,
        health_probe_after_us=5_000.0,
        health_probe_successes=1,
        health_readmit_ratio=1.5,
    )
    mean_gap_us = 2_000.0
    deadline_us = 50_000.0
    queries = build_fleet_queries(
        count, mean_gap_us, deadline_us, seed=FLEETCHAOS_SEED
    )
    profile = {
        "mean_gap_us": mean_gap_us,
        "deadline_us": deadline_us,
        "fail_us": FAIL_US,
        "repair_us": REPAIR_US,
        "gray_on_us": GRAY_ON_US,
        "gray_off_us": GRAY_OFF_US,
    }
    return network, config, queries, profile


@experiment("fleetchaos")
def run(fast: bool = True) -> ExperimentResult:
    """Regional outage + gray region; failover, rebalance, degrade."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fleetchaos",
            title="EXTENSION: sharded fleet surviving a regional outage",
            paper_claim="(not a paper figure) the prototype was one "
                        "array; this shards the KB across regions and "
                        "requires answers through a full-region failure",
        )
        network, config, queries, profile = build_scenario(fast)
        sink = TelemetrySink()
        router = FleetRouter(network, config, sink=sink)
        result.add(
            f"{config.num_shards} shards x R={config.replication_factor} "
            f"over {config.num_regions} regions; "
            f"{len(queries)} queries, deadline "
            f"{profile['deadline_us'] / 1e3:.0f} ms"
        )
        result.add(
            f"timeline: region 0 fail @{FAIL_US / 1e3:.0f} ms, repair "
            f"@{REPAIR_US / 1e3:.0f} ms; region 2 gray x{GRAY_FACTOR:g} "
            f"@{GRAY_ON_US / 1e3:.0f}..{GRAY_OFF_US / 1e3:.0f} ms"
        )
        report = router.serve(queries)
        # Live monitoring rides the same run: window the telemetry
        # stream, fire burn-rate/symptom alerts, and score detection
        # against the region schedule's exact fault windows.
        horizon = max(
            report.total_time_us,
            max((e.ts_us for e in sink.events), default=0.0),
            profile["gray_off_us"],
        )
        mon = run_pipeline(
            fleetchaos_spec(), sink.ordered(),
            config.region_schedule.fault_windows(), horizon_us=horizon,
        )

        result.add()
        result.add(
            f"{'shard':>6}{'nodes':>7}{'home':>6}{'fresh':>7}"
            f"{'stale':>7}{'shed':>6}{'moves':>7}{'rebuilds':>9}"
        )
        for s in report.shards:
            result.add(
                f"{s.shard_id:>6}{s.num_nodes:>7}{s.home_region:>6}"
                f"{s.legs_fresh:>7}{s.legs_stale:>7}{s.legs_shed:>6}"
                f"{s.primary_changes:>7}{s.rebuilds:>9}"
            )
        latency = report.latency_summary()
        result.add()
        result.add(
            f"outcomes: {report.complete} complete / {report.degraded} "
            f"degraded / {report.failed} failed / {report.shed} shed / "
            f"{report.timed_out} timed out"
        )
        result.add(
            f"latency: mean {latency['mean']:.0f} us, p99 "
            f"{latency['p99']:.0f} us; {report.total_failovers} failover "
            f"hops, {len(report.primary_changes)} primary moves, "
            f"{report.rebuilds_completed} rebuild copies"
        )
        result.add(
            f"replication at end: {report.final_replication} "
            f"(R={config.replication_factor})"
        )
        score = mon.score
        result.add(
            f"monitor: {len(mon.alerts)} alert(s), recall "
            f"{score.recall:.2f}, precision {score.precision:.2f}, "
            f"worst ttd "
            + (
                f"{score.max_ttd_us / 1e3:.0f} ms"
                if score.max_ttd_us is not None else "n/a"
            )
        )

        stale_legs = sum(s.legs_stale for s in report.shards)
        checks = [
            ("accounted", report.accounted()),
            (
                ">= 99% of queries answered",
                report.answered_fraction >= 0.99,
            ),
            (
                "every answered query correct",
                report.correct_answered == report.answered,
            ),
            ("p99 under the deadline", latency["p99"] <= profile["deadline_us"]),
            ("failover served stale answers", stale_legs >= 1),
            (
                "re-replication restored R everywhere",
                report.replication_restored(),
            ),
            (
                "rebalancer actually copied",
                report.rebuilds_completed >= 1,
            ),
            (
                "serving returned home after repair",
                all(
                    s.serving_region == s.home_region
                    for s in report.shards
                ),
            ),
            (
                "monitor detected every fault in bound, no warmup "
                "alerts",
                not mon.gate_problems(),
            ),
            (
                "monitor raised no false alerts",
                not score.false_alerts,
            ),
        ]
        result.add()
        for label, ok in checks:
            result.add(f"  [{'ok' if ok else 'FAIL'}] {label}")
        broken = [label for label, ok in checks if not ok]
        if broken:
            raise RuntimeError(f"fleetchaos contract violated: {broken}")

        result.data = {
            **profile,
            "submitted": report.submitted,
            "complete": report.complete,
            "degraded": report.degraded,
            "failed": report.failed,
            "shed": report.shed,
            "timed_out": report.timed_out,
            "answered_fraction": report.answered_fraction,
            "correct_answered": report.correct_answered,
            "p99_latency_us": latency["p99"],
            "total_failovers": report.total_failovers,
            "primary_changes": len(report.primary_changes),
            "rebuilds_completed": report.rebuilds_completed,
            "rebuilds_aborted": report.rebuilds_aborted,
            "final_replication": list(report.final_replication),
            "stale_legs": stale_legs,
            "monitor_alerts": len(mon.alerts),
            "monitor_recall": score.recall,
            "monitor_precision": score.precision,
            "monitor_max_ttd_us": score.max_ttd_us,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
