"""Fig. 19 — per-class execution time vs knowledge-base size.

*"Fig. 19 shows the effect of increasing knowledge base size.  It
shows that in general propagation dominates.  Furthermore, the
relative time spent on nonpropagation instruction decreases slightly
as the knowledge base grows.  Collection is the next most significant
operation."*
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.profiles import CATEGORY_ORDER, category_latency
from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, nlu_config, timed


@experiment("fig19")
def run(fast: bool = True) -> ExperimentResult:
    """Parse the same sentence at growing KB sizes; split by class."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig19",
            title="Execution time per instruction class vs knowledge "
                  "base size (16-cluster NLU parse)",
            paper_claim="propagation dominates at every size; relative "
                        "non-propagation time shrinks as the KB grows; "
                        "collection is the next most significant class",
        )
        sizes = [2000, 4000, 8000] if fast else [1000, 2000, 4000, 8000, 12000]
        sentence = sentences()[1]
        categories = list(CATEGORY_ORDER)
        rows: List[Dict] = []
        result.add(
            f"{'nodes':>7}" + "".join(f"{c[:10]:>12}" for c in categories)
            + f"{'prop %':>8}   (per-class latency, ms)"
        )
        for size in sizes:
            kb = build_domain_kb(total_nodes=size)
            machine = SnapMachine(kb.network, nlu_config())
            parser = MemoryBasedParser(machine, kb, keep_trace=True)
            parser.parse(sentence)
            latency = category_latency(
                report for _program, report in parser.trace_log
            )
            total = sum(latency.values())
            prop_share = latency.get("propagate", 0.0) / total if total else 0
            rows.append(
                {"nodes": size, "latency_us": latency,
                 "propagate_share": prop_share}
            )
            result.add(
                f"{size:>7}"
                + "".join(
                    f"{latency.get(c, 0.0) / 1e3:>12.3f}" for c in categories
                )
                + f"{100 * prop_share:>7.1f}%"
            )
        result.add()
        shares = [r["propagate_share"] for r in rows]
        # Dominance at paper-representative sizes (the published KBs
        # were 5K-12K nodes); at toy sizes fixed set/clear costs win.
        dominant = all(
            r["latency_us"].get("propagate", 0.0)
            == max(r["latency_us"].values())
            for r in rows if r["nodes"] >= 4000
        )
        result.add(
            f"propagation dominant at paper-scale sizes (>=4K nodes): "
            f"{dominant}; propagate share {100 * shares[0]:.1f}% -> "
            f"{100 * shares[-1]:.1f}% as KB grows"
        )
        ranked = sorted(
            rows[-1]["latency_us"].items(), key=lambda kv: -kv[1]
        )
        result.add(
            "class ranking at largest KB: "
            + " > ".join(name for name, _v in ranked[:3])
        )
        result.data = {"rows": rows}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
