"""Synthetic workloads with controlled α and β parallelism.

The speedup studies of Figs. 16–17 vary the two parallelism degrees
independently:

* **α** — source activations per PROPAGATE: the workload KB contains
  exactly α independent chains of a given path length, all of whose
  head nodes carry a distinguished color, so one SEARCH-COLOR + one
  PROPAGATE activates exactly α simultaneous propagation streams;
* **β** — overlapped PROPAGATE statements: β disjoint chain families
  (separate relations and separate markers) give β data-independent
  PROPAGATEs the controller can keep in flight together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..isa.instructions import (
    ClearMarker,
    CollectNode,
    Propagate,
    SearchColor,
    binary_marker,
    complex_marker,
)
from ..isa.program import SnapProgram
from ..isa.rules import chain
from ..network.graph import SemanticNetwork
from ..network.node import Color

#: Color given to chain-head (seed) nodes; one per β stream.
SEED_COLOR_BASE = 100


def alpha_network(
    alpha: int, path_length: int = 10, streams: int = 1
) -> SemanticNetwork:
    """A KB of ``streams`` families × ``alpha`` chains × ``path_length``.

    Chain heads of stream ``s`` have color ``SEED_COLOR_BASE + s`` and
    links of relation ``link<s>`` with unit weights.
    """
    if alpha < 1 or path_length < 1 or streams < 1:
        raise ValueError("alpha, path_length, streams must be >= 1")
    network = SemanticNetwork()
    for s in range(streams):
        relation = f"link{s}"
        seed_color = SEED_COLOR_BASE + s
        for a in range(alpha):
            head = network.add_node(f"s{s}-head{a}", seed_color)
            previous = head.node_id
            for step_index in range(path_length):
                node = network.add_node(
                    f"s{s}-c{a}-n{step_index}", Color.GENERIC
                )
                network.add_link(previous, relation, node.node_id, 1.0)
                previous = node.node_id
    network.validate()
    return network


def alpha_program(streams: int = 1, collect: bool = False) -> SnapProgram:
    """One independent SEARCH + PROPAGATE pair per stream.

    All pairs are marker-disjoint, so the controller overlaps the
    propagates (β = ``streams``); with ``streams=1`` the program
    isolates pure α-parallelism.
    """
    if streams > 32:
        raise ValueError("at most 32 streams (marker pairs)")
    program = SnapProgram(name=f"alpha-x{streams}")
    for s in range(streams):
        src = complex_marker(s)
        dst = complex_marker(32 + s)
        program.append(ClearMarker(src))
        program.append(ClearMarker(dst))
    for s in range(streams):
        src = complex_marker(s)
        program.append(SearchColor(SEED_COLOR_BASE + s, src, 0.0))
    for s in range(streams):
        src = complex_marker(s)
        dst = complex_marker(32 + s)
        program.append(
            Propagate(src, dst, chain(f"link{s}"), "add-weight")
        )
    if collect:
        program.append(CollectNode(complex_marker(32)))
    return program


@dataclass(frozen=True)
class AlphaWorkload:
    """A bound (network, program) pair for one α/β setting."""

    alpha: int
    path_length: int
    streams: int
    network: SemanticNetwork
    program: SnapProgram

    @property
    def total_nodes(self) -> int:
        """Total nodes in the workload network."""
        return self.network.num_nodes


def make_alpha_workload(
    alpha: int, path_length: int = 10, streams: int = 1,
    collect: bool = False,
) -> AlphaWorkload:
    """Build a complete α-controlled workload."""
    return AlphaWorkload(
        alpha=alpha,
        path_length=path_length,
        streams=streams,
        network=alpha_network(alpha, path_length, streams),
        program=alpha_program(streams, collect=collect),
    )


def make_beta_workload(
    beta: int, alpha_per_stream: int = 8, path_length: int = 10
) -> AlphaWorkload:
    """Workload with β overlappable PROPAGATEs of equal size."""
    return AlphaWorkload(
        alpha=alpha_per_stream,
        path_length=path_length,
        streams=beta,
        network=alpha_network(alpha_per_stream, path_length, beta),
        program=alpha_program(beta),
    )
