"""§IV text statistics — α/β parallelism and path lengths.

The evaluation text reports: α between 10 and 1000 depending on path
length/breadth; β of 2.8–6 for the PASS speech program and 2.3–5 for
DMSNAP; maximum propagation path distances of 10–15 steps; and
400–900 SNAP instructions per sentence.
"""

from __future__ import annotations

from ..analysis.parallelism import parallelism_stats
from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, nlu_config, timed


@experiment("textstats")
def run(fast: bool = True) -> ExperimentResult:
    """Measure α, β, path length, and instruction counts for NLU."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="textstats",
            title="Workload parallelism statistics (alpha, beta, path "
                  "lengths, instructions/sentence)",
            paper_claim="alpha in 10..1000; beta 2.3-6; max path 10-15 "
                        "steps; 400-900 instructions per sentence",
        )
        kb = build_domain_kb(total_nodes=2000 if fast else 9000)
        machine = SnapMachine(kb.network, nlu_config())
        parser = MemoryBasedParser(machine, kb, keep_trace=True)
        parses = parser.parse_text(sentences())

        programs = [program for program, _report in parser.trace_log]
        reports = [report for _program, report in parser.trace_log]
        stats = parallelism_stats(reports, programs)
        max_path = max(r.max_propagation_distance() for r in reports)
        instr = [p.instruction_count for p in parses]

        result.add(
            f"alpha: min={stats.alpha_min} max={stats.alpha_max} "
            f"mean={stats.alpha_mean:.1f} over {stats.propagates} "
            f"propagates (paper: 10..1000)"
        )
        result.add(
            f"beta overlap runs (DMSNAP-style text parser): "
            f"min={stats.beta_min:.1f} max={stats.beta_max:.1f} "
            f"mean={stats.beta_mean:.2f} (paper DMSNAP: 2.3..5)"
        )

        # PASS-style speech workload: competing word hypotheses per
        # time slot give the higher β band the paper reports.
        from ..apps.speech import SpeechParser, synthesize_lattice

        speech = SpeechParser(machine, kb)
        speech_results = [
            speech.understand(
                synthesize_lattice(text, confusability=0.95, seed=i)
            )
            for i, text in enumerate(sentences())
        ]
        speech_runs = [
            run for r in speech_results for run in r.beta_runs
        ]
        result.add(
            f"beta overlap runs (PASS-style speech parser): "
            f"min={min(speech_runs):.1f} max={max(speech_runs):.1f} "
            f"mean={sum(speech_runs) / len(speech_runs):.2f} "
            f"(paper PASS: 2.8..6)"
        )
        result.add(
            f"max propagation path: {max_path} steps (paper: 10..15)"
        )
        result.add(
            f"instructions per sentence: {min(instr)}..{max(instr)} "
            f"(paper: 400..900)"
        )
        result.data = {
            "alpha": stats.as_dict(),
            "beta_speech_max": max(speech_runs),
            "max_path": max_path,
            "instructions_per_sentence": instr,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
