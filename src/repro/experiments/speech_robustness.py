"""Extension study — speech understanding under recognition noise.

The paper names Speech Processing as a primary SNAP application and
quotes the PASS program's parallelism, but publishes no speech
accuracy figures.  This extension measures what the architecture's
parallel hypothesis evaluation buys: how often the knowledge base
recovers the correct event reading as the word lattice gets noisier
(more competing hypotheses per slot), and how the workload's
β-parallelism grows with lattice branching.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..apps.speech import SpeechParser, synthesize_lattice
from ..machine import SnapMachine
from .common import ExperimentResult, experiment, nlu_config, timed

#: Utterances with unambiguous clean readings.
UTTERANCES = (
    "terrorists attacked the mayor in bogota",
    "guerrillas bombed the embassy",
    "several men kidnapped the ambassador in lima",
    "soldiers murdered two civilians yesterday",
    "the army reported three casualties today",
)


@experiment("speech")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep lattice confusability; measure reading accuracy and β."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="speech",
            title="EXTENSION: speech understanding vs recognition noise "
                  "(PASS-style workload)",
            paper_claim="(not a paper figure) SS I names Speech "
                        "Processing as a primary application; SS II-C "
                        "reports PASS beta of 2.8-6",
        )
        kb = build_domain_kb(total_nodes=2000 if fast else 5000)
        machine = SnapMachine(kb.network, nlu_config())
        parser = SpeechParser(machine, kb)

        # Reference readings from clean lattices.
        reference: Dict[str, str] = {}
        for utterance in UTTERANCES:
            clean = parser.understand(
                synthesize_lattice(utterance, confusability=0.0)
            )
            reference[utterance] = clean.winner

        levels = [0.0, 0.5, 1.0]
        seeds = range(3 if fast else 8)
        result.add(
            f"{'confusability':>14}{'branching':>11}{'accuracy':>10}"
            f"{'beta max':>10}{'time/utt':>12}"
        )
        rows: List[Dict] = []
        for level in levels:
            correct = 0
            total = 0
            branching = 0.0
            beta_max = 0.0
            time_us = 0.0
            for seed in seeds:
                for utterance in UTTERANCES:
                    lattice = synthesize_lattice(
                        utterance, confusability=level, seed=seed
                    )
                    outcome = parser.understand(lattice)
                    total += 1
                    branching += lattice.mean_branching
                    beta_max = max(beta_max, outcome.beta_max)
                    time_us += outcome.time_us
                    if outcome.winner == reference[utterance]:
                        correct += 1
            row = {
                "confusability": level,
                "accuracy": correct / total,
                "mean_branching": branching / total,
                "beta_max": beta_max,
                "time_us_per_utterance": time_us / total,
            }
            rows.append(row)
            result.add(
                f"{level:>14.1f}{row['mean_branching']:>11.2f}"
                f"{100 * row['accuracy']:>9.0f}%{beta_max:>10.0f}"
                f"{time_us / total / 1e3:>10.2f}ms"
            )
        result.add()
        result.add(
            f"knowledge-based disambiguation holds "
            f"{100 * rows[-1]['accuracy']:.0f}% of readings at full "
            f"confusability (clean baseline 100%); beta reaches "
            f"{rows[-1]['beta_max']:.0f} (paper PASS band: up to 6)"
        )
        result.data = {"rows": rows}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
