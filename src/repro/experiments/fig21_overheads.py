"""Fig. 21 — components of parallel overhead vs machine size.

*"Due to the global bus, the broadcast overhead is small and constant.
The overhead for message communication grows slowly, proportional to
log N for an array of N clusters.  The barrier synchronization
overhead is proportional to the number of processors, but the
dependency is small ...  The most expensive operation is COLLECT-NODE
which is proportional to the number of clusters used."*
"""

from __future__ import annotations

from ..analysis.overhead import OverheadSweep, format_overhead_table
from ..machine import SnapMachine, cluster_sweep
from .common import ExperimentResult, experiment, timed
from .workloads import make_alpha_workload


@experiment("fig21")
def run(fast: bool = True) -> ExperimentResult:
    """Fixed workload across 1..16 clusters; split overhead by source."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig21",
            title="Parallel overhead components vs number of clusters",
            paper_claim="broadcast constant; communication ~ log N; "
                        "synchronization ~ processors (small slope); "
                        "collection ~ clusters and dominant",
        )
        alpha = 32 if fast else 64
        sweep = OverheadSweep()
        for config in cluster_sweep():
            workload = make_alpha_workload(
                alpha, path_length=8, collect=True
            )
            machine = SnapMachine(workload.network, config)
            report = machine.run(workload.program)
            sweep.add(
                config.num_clusters, config.total_pes, report.overheads
            )
        result.add_table(format_overhead_table(sweep))
        result.add()
        result.add(
            f"broadcast roughly constant: "
            f"{sweep.is_roughly_constant('broadcast')}"
        )
        result.add(
            f"communication sublinear in clusters (hypercube log N): "
            f"{sweep.is_sublinear('communication')}"
        )
        result.add(
            f"synchronization grows with PEs, small slope: growth "
            f"x{sweep.growth_ratio('synchronization'):.2f} over "
            f"x{sweep.rows[-1][0] / sweep.rows[0][0]:.0f} clusters"
        )
        result.add(
            f"dominant overhead at 16 clusters: "
            f"{sweep.dominant_component()} (paper: collection)"
        )
        result.data = {
            "rows": [
                {
                    "clusters": clusters,
                    "pes": pes,
                    **breakdown.as_dict(),
                }
                for clusters, pes, breakdown in sweep.rows
            ]
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
