"""Extension study — chaos: rolling gray failure and repair under load.

The overload experiment degrades replicas *statically* and lets the
breaker route around query-visible damage.  This experiment exercises
the live-fault machinery end to end: replicas turn **gray** mid-run
(slow MUs, silent marker drop, a mid-propagation cluster flap from a
machine-level :class:`~repro.machine.faults.FaultSchedule`) and are
later repaired, while a sustained arrival stream keeps the array
busy.  The health lifecycle must do what the breaker cannot:

* **quarantine** gray replicas from the phi-accrual latency signal
  and from integrity-audit mismatches (silent marker drop produces
  *no* query-visible damage — a breaker never fires on it);
* **probe and readmit** replicas after their repair event, restoring
  capacity instead of abandoning it;
* **catch at least one silently-incomplete answer** by shadow
  re-execution on a healthy replica.

Everything is seed-driven and simulated-time deterministic: same
seed, same timeline, same lifecycle transitions, same report.

Run with ``python -m repro experiments chaos``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..host import HostConfig, Query, ReplicaFaultEvent, ServingHost
from ..machine.faults import (
    FaultConfig,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from ..network.generator import generate_hierarchy_kb
from ..obs.live import TelemetrySink, truth_from_replica_timeline
from ..obs.live.monitor import chaos_spec, run_pipeline
from .common import ExperimentResult, experiment, timed
from .overload import build_queries, uncontended_profile

CHAOS_SEED = 20260808


def gray_faults(seed: int) -> FaultConfig:
    """Gray degradation: nothing dies, everything lies.

    3x-slow marker units (caught by the phi-accrual latency signal)
    plus silent marker drop (no query-visible damage at all — caught
    only by the integrity audit).  The breaker never fires on either.
    """
    return FaultConfig(
        seed=seed,
        mu_slowdown_factor=3.0,
        marker_drop_prob=0.12,
        remap_nodes=False,
        retry=RetryPolicy(max_retries=1),
    )


def flap_faults(seed: int, mean_service_us: float) -> FaultConfig:
    """Loud mid-propagation failure, from the machine-level timeline.

    A :class:`~repro.machine.faults.FaultSchedule` crashes one cluster
    a quarter of the way through a typical query and repairs it at
    three quarters — routing, retry, and checkpoint replay see the
    world change *during* a PROPAGATE.  The damage is query-visible,
    so the breaker (and the health damage term) both react.
    """
    flap = FaultSchedule((
        FaultEvent(0.25 * mean_service_us, "cluster-fail", cluster=1),
        FaultEvent(0.75 * mean_service_us, "cluster-repair", cluster=1),
    ))
    return FaultConfig(
        seed=seed,
        remap_nodes=False,
        retry=RetryPolicy(max_retries=1),
        schedule=flap,
    )


def build_scenario(
    fast: bool = True,
) -> Tuple[Any, HostConfig, List[Query], Dict[str, float]]:
    """(network, config, queries, profile) for the rolling-gray run.

    Shared with the ``chaos`` trace capture so the experiment, the
    golden, and CI all see the same scenario.  The timeline is keyed
    to the measured mean service time, so the regimes land at the
    same *relative* points regardless of KB size: replica 1 goes gray
    early and is repaired mid-run; replica 3 goes gray mid-run and is
    repaired near the end.
    """
    num_nodes = 240 if fast else 480
    count = 140 if fast else 400
    network = generate_hierarchy_kb(num_nodes, branching=3)
    base = HostConfig(
        num_replicas=4,
        clusters_per_replica=4,
        mus_per_cluster=2,
        fault_seed=7,
    )
    mean_service, p99_0 = uncontended_profile(network, base)
    m = mean_service
    timeline = (
        ReplicaFaultEvent(2.0 * m, 1, gray_faults(101)),
        ReplicaFaultEvent(10.0 * m, 1, None),
        ReplicaFaultEvent(6.0 * m, 2, flap_faults(202, m)),
        ReplicaFaultEvent(14.0 * m, 2, None),
        ReplicaFaultEvent(12.0 * m, 3, gray_faults(303)),
        ReplicaFaultEvent(20.0 * m, 3, None),
    )
    config = HostConfig(
        num_replicas=base.num_replicas,
        clusters_per_replica=base.clusters_per_replica,
        mus_per_cluster=base.mus_per_cluster,
        queue_capacity=16,
        max_attempts=2,
        breaker_failure_threshold=2,
        breaker_cooldown_us=2.0 * m,
        fault_seed=base.fault_seed,
        replica_timeline=timeline,
        health_enabled=True,
        health_window=8,
        health_min_samples=3,
        health_phi_quarantine=4.0,
        health_probe_after_us=3.0 * m,
        health_probe_successes=1,
        health_readmit_ratio=1.3,
        audit_interval=3,
    )
    rate = 1.2 * config.num_replicas / mean_service
    deadline_us = 20.0 * p99_0
    queries = build_queries(count, rate, deadline_us, seed=CHAOS_SEED)
    profile = {
        "mean_service_us": mean_service,
        "uncontended_p99_us": p99_0,
        "deadline_us": deadline_us,
        "rate_per_us": rate,
    }
    return network, config, queries, profile


@experiment("chaos")
def run(fast: bool = True) -> ExperimentResult:
    """Rolling gray failure + repair; quarantine, readmit, audit."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="chaos",
            title="EXTENSION: rolling gray failure and repair under load",
            paper_claim="(not a paper figure) the prototype assumed a "
                        "healthy array; this degrades and repairs "
                        "replicas mid-stream and requires detection",
        )
        network, config, queries, profile = build_scenario(fast)
        m = profile["mean_service_us"]
        result.add(
            f"uncontended: mean service {m:.0f} us, p99 "
            f"{profile['uncontended_p99_us']:.0f} us; "
            f"{len(queries)} queries at "
            f"{profile['rate_per_us'] * 1e6:.0f} q/s"
        )
        result.add(
            "timeline (x = mean service): r1 gray @2.0x..10.0x, "
            "r2 cluster-flap @6.0x..14.0x, r3 gray @12.0x..20.0x"
        )
        sink = TelemetrySink()
        report = ServingHost(network, config, sink=sink).serve(queries)
        # Live monitoring rides the same run: window the telemetry
        # stream, fire burn-rate/symptom alerts, and score detection
        # against the replica timeline's exact fault windows.
        horizon = max(
            report.total_time_us,
            max((e.ts_us for e in sink.events), default=0.0),
        )
        truth = truth_from_replica_timeline(
            config.replica_timeline, horizon_us=horizon
        )
        mon = run_pipeline(
            chaos_spec(m), sink.ordered(), truth, horizon_us=horizon
        )

        # Replicas whose degradation is *silent* (slowdown + drop)
        # versus every replica the timeline touches at all.
        gray_ids = {1, 3}
        touched_ids = {e.replica for e in config.replica_timeline}
        quarantines = {
            r.replica_id: r.health_quarantines for r in report.replicas
        }
        readmissions = {
            r.replica_id: r.health_readmissions for r in report.replicas
        }
        result.add()
        result.add(
            f"{'replica':>8}{'attempts':>9}{'ok':>6}{'fail':>6}"
            f"{'quar':>6}{'readmit':>8}{'state':>13}"
        )
        for r in report.replicas:
            result.add(
                f"{r.replica_id:>8}{r.attempts:>9}{r.successes:>6}"
                f"{r.failures:>6}{r.health_quarantines:>6}"
                f"{r.health_readmissions:>8}{r.health_state:>13}"
            )
        result.add()
        result.add(
            f"outcomes: {report.served} served / {report.shed} shed / "
            f"{report.timed_out} timed out / {report.failed} failed; "
            f"audit {report.audit_checks} checks, "
            f"{report.audit_mismatches} mismatches"
        )
        score = mon.score
        result.add(
            f"monitor: {len(mon.alerts)} alert(s), recall "
            f"{score.recall:.2f}, precision {score.precision:.2f}, "
            f"worst ttd "
            + (
                f"{score.max_ttd_us / m:.1f}x mean service"
                if score.max_ttd_us is not None else "n/a"
            )
        )

        gray_quarantines = sum(quarantines[rid] for rid in gray_ids)
        total_readmissions = sum(readmissions.values())
        checks = [
            ("accounted", report.accounted()),
            ("quarantine fired on a gray replica", gray_quarantines >= 1),
            ("readmission after repair", total_readmissions >= 1),
            (
                "audit caught a silently-incomplete answer",
                report.audit_mismatches >= 1,
            ),
            (
                "healthy replicas never quarantined",
                all(
                    quarantines[r.replica_id] == 0
                    for r in report.replicas
                    if r.replica_id not in touched_ids
                ),
            ),
            (
                "monitor detected every fault in bound, no warmup "
                "alerts",
                not mon.gate_problems(),
            ),
            (
                "monitor raised no false alerts",
                not score.false_alerts,
            ),
        ]
        result.add()
        for label, ok in checks:
            result.add(f"  [{'ok' if ok else 'FAIL'}] {label}")
        broken = [label for label, ok in checks if not ok]
        if broken:
            raise RuntimeError(f"chaos contract violated: {broken}")

        result.data = {
            **profile,
            "submitted": report.submitted,
            "served": report.served,
            "shed": report.shed,
            "timed_out": report.timed_out,
            "failed": report.failed,
            "audit_checks": report.audit_checks,
            "audit_mismatches": report.audit_mismatches,
            "quarantines": quarantines,
            "readmissions": readmissions,
            "breaker_opens": sum(
                r.breaker_opens for r in report.replicas
            ),
            "monitor_alerts": len(mon.alerts),
            "monitor_recall": score.recall,
            "monitor_precision": score.precision,
            "monitor_max_ttd_us": score.max_ttd_us,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
