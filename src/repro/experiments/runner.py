"""Run every regenerated table/figure and print/save the results.

Usage::

    python -m repro.experiments.runner            # fast mode, all
    python -m repro.experiments.runner --full     # paper-scale sizes
    python -m repro.experiments.runner fig16 fig21  # selected only
    python -m repro.experiments.runner --out results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

# Importing the modules populates the registry.
from . import (  # noqa: F401
    chaos,
    fault_degradation,
    fig06_instruction_profile,
    fig08_marker_traffic,
    fig15_inheritance,
    fig16_alpha_speedup,
    fig17_beta_speedup,
    fig18_cluster_sweep,
    fig19_kb_sweep,
    fig20_propagation_counts,
    fig21_overheads,
    fleetchaos,
    overload,
    scaling_projection,
    speech_robustness,
    table04_parse_times,
    textstats_parallelism,
)
from .common import REGISTRY, ExperimentResult

#: Paper order.
DEFAULT_ORDER = (
    "fig06", "fig08", "table04", "fig15", "fig16", "fig17",
    "fig18", "fig19", "fig20", "fig21", "textstats", "scaling",
    "speech", "faultdeg", "overload", "chaos", "fleetchaos",
)


def run_experiments(
    ids: Optional[Sequence[str]] = None, fast: bool = True
) -> List[ExperimentResult]:
    """Run the selected experiments (all, in paper order, by default)."""
    selected = list(ids) if ids else list(DEFAULT_ORDER)
    results = []
    for experiment_id in selected:
        if experiment_id not in REGISTRY:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"available: {sorted(REGISTRY)}"
            )
        results.append(REGISTRY[experiment_id](fast=fast))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids to run (default: all of {DEFAULT_ORDER})",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale knowledge bases (slower)",
    )
    parser.add_argument("--out", help="also write results to this file")
    parser.add_argument(
        "--snapshot", metavar="PATH",
        help="write the runs' numeric data as a drift-gate snapshot "
             "(keys {id}.{field}) for `python -m repro analyze --compare`",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered experiment ids and exit",
    )
    parser.add_argument(
        "--backend", choices=["python", "vectorized"], default=None,
        help="process-wide propagation backend for every "
             "functional-engine run in the selected experiments",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="sample wall-clock stacks across the whole run and write "
             "flamegraph-compatible folded stacks here",
    )
    args = parser.parse_args(argv)

    if args.backend:
        from ..core.backends import set_default_backend

        set_default_backend(args.backend)

    if args.list:
        for experiment_id in DEFAULT_ORDER:
            print(experiment_id)
        for experiment_id in sorted(set(REGISTRY) - set(DEFAULT_ORDER)):
            print(experiment_id)
        return 0

    unknown = [e for e in args.experiments if e not in REGISTRY]
    if unknown:
        known = ", ".join(
            list(DEFAULT_ORDER)
            + sorted(set(REGISTRY) - set(DEFAULT_ORDER))
        )
        print(
            f"error: unknown experiment(s): {', '.join(unknown)}\n"
            f"usage: python -m repro experiments [IDS...] [--full]\n"
            f"known experiments: {known}\n"
            f"(use --list to print registered ids one per line)",
            file=sys.stderr,
        )
        return 2

    profiler = None
    if args.profile:
        from ..obs.perf import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        results = run_experiments(
            args.experiments or None, fast=not args.full
        )
    finally:
        if profiler is not None:
            profile = profiler.stop()
            with open(args.profile, "w") as handle:
                handle.write(profile.folded())
            print(
                f"wrote {args.profile} ({profile.sample_count} samples, "
                f"{len(profile.samples)} stacks)"
            )
    text = "\n\n".join(r.render() for r in results)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    if args.snapshot:
        import json

        from ..obs.analyze import make_snapshot

        snapshot = make_snapshot(
            {r.experiment_id: r.data for r in results},
            workload="experiments",
        )
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.snapshot}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
