"""Fig. 20 — instruction counts vs knowledge-base size.

*"There is some increase in the total number of propagations required
...  This occurs because more irrelevant candidates become activated
which must be removed by propagating cancel markers during the
multiple hypotheses resolution phase.  ...  Most other operations
remained relatively constant with processing dominated by marker
set/clear ..., boolean marker operations ..., and data collection."*
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.nlu import MemoryBasedParser, NEWSWIRE_PASSAGE, build_domain_kb
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, nlu_config, timed


@experiment("fig20")
def run(fast: bool = True) -> ExperimentResult:
    """Count executed instructions per class across KB sizes."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig20",
            title="Number of executed instructions per class vs KB size "
                  "(bulk newswire parsing)",
            paper_claim="propagation count grows with KB size (cancel "
                        "markers for irrelevant candidates); set/clear, "
                        "boolean, and collection counts stay roughly "
                        "constant; set/clear and boolean dominate counts",
        )
        sizes = [1000, 2000, 4000] if fast else [1000, 2000, 4000, 8000, 12000]
        passage = NEWSWIRE_PASSAGE if not fast else NEWSWIRE_PASSAGE[:5]
        rows: List[Dict] = []
        categories = ["setclear", "boolean", "search", "collect",
                      "marker-maint"]
        result.add(
            f"{'nodes':>7}{'propagations':>13}"
            + "".join(f"{c[:10]:>12}" for c in categories)
            + f"{'cancelled':>11}"
        )
        for size in sizes:
            kb = build_domain_kb(total_nodes=size)
            machine = SnapMachine(kb.network, nlu_config())
            parser = MemoryBasedParser(machine, kb)
            parses = parser.parse_text(list(passage))
            counts: Dict[str, int] = {}
            propagations = 0
            cancelled = 0
            for parse in parses:
                for category, n in parse.category_counts.items():
                    counts[category] = counts.get(category, 0) + n
                # "Number of propagations" = individual marker
                # propagation events, the unit that grows as cancel
                # markers sweep losing hypotheses.
                propagations += parse.propagation_events
                # Losing hypotheses = activated candidates beyond the
                # winner.
                cancelled += max(0, len(parse.candidates) - 1)
            rows.append(
                {"nodes": size, "counts": counts, "cancelled": cancelled,
                 "propagations": propagations}
            )
            result.add(
                f"{size:>7}{propagations:>13}"
                + "".join(f"{counts.get(c, 0):>12}" for c in categories)
                + f"{cancelled:>11}"
            )
        result.add()
        prop = [r["propagations"] for r in rows]
        setclear = [r["counts"].get("setclear", 0) for r in rows]
        boolean = [r["counts"].get("boolean", 0) for r in rows]
        result.add(
            f"propagations grow with KB: {prop[0]} -> {prop[-1]} "
            f"(x{prop[-1] / max(prop[0], 1):.2f}; driven by "
            f"{rows[0]['cancelled']} -> {rows[-1]['cancelled']} "
            f"cancelled candidates)"
        )
        result.add(
            f"set/clear constant: {setclear[0]} -> {setclear[-1]}; "
            f"boolean constant: {boolean[0]} -> {boolean[-1]}; "
            f"set/clear + boolean dominate instruction counts: "
            f"{setclear[-1] + boolean[-1]} of "
            f"{sum(rows[-1]['counts'].values())}"
        )
        result.data = {"rows": rows}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
