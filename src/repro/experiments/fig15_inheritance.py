"""Fig. 15 — inheritance time vs knowledge-base size, SNAP-1 vs CM-2.

*"Execution time for CM-2 is less than 10 s and SNAP-1 less than 1 s
for inheritance from root to leaf for up to a 6.4K node knowledge
base.  The low execution time on SNAP-1 was due to the MIMD capability
to perform selective propagation whereas CM-2 had to iterate between
the controller and array after each propagation step on the critical
path.  However, the slope of the increase is higher for SNAP-1 than
CM-2 and the lines will cross when larger knowledge bases are used."*
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.inheritance import inheritance_program
from ..baselines.simd import SimdMachine
from ..machine import MachineConfig, SnapMachine
from ..network.generator import generate_hierarchy_kb
from .common import ExperimentResult, experiment, fmt_us, timed


def _snap_config() -> MachineConfig:
    # Full 32-cluster prototype (inheritance KBs are small enough).
    from ..machine import snap1_full

    return snap1_full()


@experiment("fig15")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep hierarchy size; time root-to-leaf inheritance on both."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig15",
            title="Inheritance (root to leaf) execution time vs KB size: "
                  "SNAP-1 vs CM-2-style SIMD",
            paper_claim="SNAP-1 < 1 s and CM-2 < 10 s at 6.4K nodes; "
                        "SNAP-1's slope steeper; curves cross for larger KBs",
        )
        sizes = [400, 800, 1600, 3200, 6400]
        if not fast:
            sizes += [12800, 25600]
        rows: List[Dict] = []
        result.add(
            f"{'nodes':>7}{'SNAP-1':>12}{'CM-2':>12}"
            f"{'inherited':>11}{'ratio':>8}"
        )
        for size in sizes:
            network = generate_hierarchy_kb(size)
            snap = SnapMachine(network, _snap_config())
            snap_report = snap.run(inheritance_program())
            simd = SimdMachine(generate_hierarchy_kb(size))
            simd_report = simd.run(inheritance_program())
            inherited = len(snap_report.results()[-1])
            rows.append(
                {
                    "nodes": size,
                    "snap_us": snap_report.total_time_us,
                    "simd_us": simd_report.total_time_us,
                    "inherited": inherited,
                }
            )
            result.add(
                f"{size:>7}{fmt_us(snap_report.total_time_us):>12}"
                f"{fmt_us(simd_report.total_time_us):>12}"
                f"{inherited:>11}"
                f"{simd_report.total_time_us / snap_report.total_time_us:>8.1f}"
            )

        # Shape checks + crossover extrapolation.  SNAP-1's time is
        # linear in KB size (each cluster holds more nodes), while the
        # CM-2's grows only with hierarchy *depth* (one controller
        # round-trip per level, i.e. logarithmically) — so SNAP-1's
        # growth rate is the steeper one and the lines must cross.
        at64 = next(r for r in rows if r["nodes"] == 6400)
        snap_growth = rows[-1]["snap_us"] / rows[0]["snap_us"]
        simd_growth = rows[-1]["simd_us"] / rows[0]["simd_us"]
        result.add()
        result.add(
            f"at 6.4K nodes: SNAP-1 {fmt_us(at64['snap_us'])} (< 1 s: "
            f"{at64['snap_us'] < 1e6}), CM-2 {fmt_us(at64['simd_us'])} "
            f"(< 10 s: {at64['simd_us'] < 10e6})"
        )
        size_growth = rows[-1]["nodes"] / rows[0]["nodes"]
        result.add(
            f"growth over a x{size_growth:.0f} size increase: SNAP-1 "
            f"x{snap_growth:.1f} (linear in nodes) vs CM-2 "
            f"x{simd_growth:.1f} (logarithmic: per-level round-trips) "
            f"-> SNAP-1's slope steeper: {snap_growth > simd_growth}"
        )
        # Extrapolate: SNAP-1 linear fit vs CM-2 depth-based model.
        import math

        snap_slope = (rows[-1]["snap_us"] - rows[0]["snap_us"]) / (
            rows[-1]["nodes"] - rows[0]["nodes"]
        )
        step_cost = (rows[-1]["simd_us"] - rows[0]["simd_us"]) / max(
            math.log(rows[-1]["nodes"] / rows[0]["nodes"], 4), 1e-9
        )
        crossover = rows[-1]["nodes"]
        for _ in range(200):
            simd_at = rows[-1]["simd_us"] + step_cost * math.log(
                crossover / rows[-1]["nodes"], 4
            )
            snap_at = at64["snap_us"] + snap_slope * (crossover - 6400)
            if snap_at >= simd_at:
                break
            crossover *= 1.1
        result.add(
            f"extrapolated crossover near {crossover / 1000:.0f}K nodes "
            f"(paper: 'the lines will cross when larger knowledge bases "
            f"are used'; the authors' next target was a 1M-concept "
            f"machine)"
        )
        result.data.update({"rows": rows, "crossover_nodes": crossover})
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
