"""Fig. 6 — relative instruction frequency and execution time.

*"Instruction profiles were measured for NLU applications on a single
processor ... while the number of PROPAGATE operations is only 17.0%
of the total instructions executed, they consume 64.5% of the overall
processing time.  Thus propagation should be optimized since it
dominates execution time."*
"""

from __future__ import annotations

from ..analysis.profiles import (
    Profile,
    format_profile_table,
    profile_from_parse_results,
)
from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..baselines.serial import SerialMachine
from .common import ExperimentResult, experiment, timed


@experiment("fig06")
def run(fast: bool = True) -> ExperimentResult:
    """Profile the NLU workload on the single-processor baseline."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig06",
            title="Relative instruction frequency and execution time "
                  "(uniprocessor NLU profile)",
            paper_claim="PROPAGATE = 17.0% of instructions but 64.5% of "
                        "processing time; data movement and bitwise ops "
                        "dominate the instruction count",
        )
        kb = build_domain_kb(total_nodes=1500 if fast else 5000)
        machine = SerialMachine(kb.network)
        parser = MemoryBasedParser(machine, kb)
        parses = parser.parse_text(sentences())
        profile = profile_from_parse_results(parses)
        result.add_table(
            format_profile_table(profile, title="single-PE NLU profile")
        )
        freq = profile.frequency_share()
        share = profile.time_share()
        result.add()
        result.add(
            f"PROPAGATE: {100 * freq.get('propagate', 0):.1f}% of "
            f"instructions, {100 * share.get('propagate', 0):.1f}% of time "
            f"(paper: 17.0% / 64.5%)"
        )
        result.data = {
            "frequency_share": freq,
            "time_share": share,
            "counts": profile.counts,
            "time_us": profile.time_us,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
