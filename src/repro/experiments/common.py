"""Shared experiment infrastructure: results, registry, rendering."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class ExperimentResult:
    """Output of one regenerated table/figure."""

    experiment_id: str          # e.g. "fig16"
    title: str                  # paper caption summary
    paper_claim: str            # what the paper reports
    lines: List[str] = field(default_factory=list)  # rendered rows/series
    data: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def add(self, line: str = "") -> None:
        """Append one entry."""
        self.lines.append(line)

    def add_table(self, text: str) -> None:
        """Append a pre-rendered multi-line table."""
        self.lines.extend(text.splitlines())

    def render(self) -> str:
        """Human-readable text rendering."""
        header = [
            "=" * 72,
            f"{self.experiment_id}: {self.title}",
            f"paper: {self.paper_claim}",
            "-" * 72,
        ]
        footer = [f"(regenerated in {self.wall_seconds:.1f}s wall time)"]
        return "\n".join(header + self.lines + footer)


#: Registry of experiment run functions: id -> callable(fast) -> result.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment entry point."""

    def wrap(fn: Callable[..., ExperimentResult]):
        REGISTRY[experiment_id] = fn
        return fn

    return wrap


def timed(fn: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run an experiment body, stamping wall time."""
    start = time.time()
    result = fn()
    result.wall_seconds = time.time() - start
    return result


def nlu_config(base=None):
    """NLU machine configuration: semantically-based allocation.

    The paper's KB mapping is *"variable ... using sequential,
    round-robin, or semantically-based allocation"* (§II-A); locality-
    preserving allocation is what keeps parse-time marker traffic near
    the published levels, so the NLU experiments use it throughout.
    """
    from dataclasses import replace

    from ..machine import snap1_16cluster

    return replace(base or snap1_16cluster(), partition_policy="semantic")


def fmt_us(value_us: float) -> str:
    """Human-scaled time formatting."""
    if value_us >= 1e6:
        return f"{value_us / 1e6:.2f} s"
    if value_us >= 1e3:
        return f"{value_us / 1e3:.2f} ms"
    return f"{value_us:.1f} us"
