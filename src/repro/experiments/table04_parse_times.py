"""Tables III/IV — MUC-4 sentence parse times.

*"Results for parsing time for the sentences in Table III are shown in
Table IV.  Real-time performance is obtained and sentences can be
parsed more quickly than a human can read them.  Most sentences can be
processed with around 400–900 SNAP instructions ... Parsing times for
the memory based parser are shown for two knowledge base sizes (5K
nodes and 9K nodes).  The parsing time increases gradually as more
knowledge is added.  The overall execution time is roughly
proportional to the sentence length in words."*
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.nlu import (
    MUC4_SENTENCES,
    MemoryBasedParser,
    build_domain_kb,
)
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, fmt_us, nlu_config, timed


@experiment("table04")
def run(fast: bool = True) -> ExperimentResult:
    """Parse S1–S4 at two KB sizes on the 72-PE machine."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="table04",
            title="Execution times for MUC-4 sentences "
                  "(P.P. + M.B. at two KB sizes, 16-cluster/72-PE array)",
            paper_claim="real-time parsing; M.B. time grows gradually "
                        "5K->9K nodes; total roughly proportional to "
                        "sentence length; 400-900 SNAP instructions "
                        "per sentence",
        )
        kb_sizes = (2000, 3500) if fast else (5000, 9000)
        rows: List[Dict] = []
        per_size: Dict[int, List] = {}
        for size in kb_sizes:
            kb = build_domain_kb(total_nodes=size)
            machine = SnapMachine(kb.network, nlu_config())
            parser = MemoryBasedParser(machine, kb)
            per_size[size] = [
                parser.parse(text) for _sid, text in MUC4_SENTENCES
            ]

        small, large = kb_sizes
        result.add(
            f"{'input':<6}{'words':>6}{'P.P. time':>12}"
            f"{f'M.B. {small//1000}K':>12}{f'M.B. {large//1000}K':>12}"
            f"{'total':>12}{'instr':>7}{'winner':>18}"
        )
        for i, (sid, _text) in enumerate(MUC4_SENTENCES):
            p_small = per_size[small][i]
            p_large = per_size[large][i]
            total = p_large.pp_time_us + p_large.mb_time_us
            result.add(
                f"{sid:<6}{p_large.num_words:>6}"
                f"{fmt_us(p_large.pp_time_us):>12}"
                f"{fmt_us(p_small.mb_time_us):>12}"
                f"{fmt_us(p_large.mb_time_us):>12}"
                f"{fmt_us(total):>12}"
                f"{p_large.instruction_count:>7}"
                f"{str(p_large.winner):>18}"
            )
            rows.append(
                {
                    "id": sid,
                    "words": p_large.num_words,
                    "pp_us": p_large.pp_time_us,
                    "mb_small_us": p_small.mb_time_us,
                    "mb_large_us": p_large.mb_time_us,
                    "instructions": p_large.instruction_count,
                    "winner": p_large.winner,
                }
            )
        # Shape checks the paper states.
        growth = [
            r["mb_large_us"] / r["mb_small_us"]
            for r in rows if r["mb_small_us"] > 0
        ]
        words = [r["words"] for r in rows]
        totals = [r["pp_us"] + r["mb_large_us"] for r in rows]
        result.add()
        result.add(
            f"M.B. growth {small}->{large} nodes: "
            f"x{min(growth):.2f}..x{max(growth):.2f} (gradual increase)"
        )
        result.add(
            f"time vs length: {words[0]}w={fmt_us(totals[0])} ... "
            f"{words[-1]}w={fmt_us(totals[-1])} "
            f"(roughly proportional to words)"
        )
        result.data = {"rows": rows, "kb_sizes": kb_sizes}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
