"""Fig. 8 — time distribution of marker activation traffic.

*"Parsing generates bursts of marker activation.  ...  While on
average 11.49 messages are transmitted per synchronization point,
bursts of over 30 messages are typical."*
"""

from __future__ import annotations

from ..analysis.traffic import format_traffic_series, summarize_traffic
from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..machine import SnapMachine, snap1_16cluster
from .common import ExperimentResult, experiment, nlu_config, timed


@experiment("fig08")
def run(fast: bool = True) -> ExperimentResult:
    """Record messages per barrier-synchronization point during a parse."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig08",
            title="Marker activation messages at each barrier "
                  "synchronization point",
            paper_claim="bursty traffic; mean 11.49 messages/sync, "
                        "bursts of over 30 typical",
        )
        kb = build_domain_kb(total_nodes=2000 if fast else 5000)
        machine = SnapMachine(kb.network, nlu_config())
        parser = MemoryBasedParser(machine, kb, keep_trace=True)
        parser.parse(sentences()[1])

        series = []
        for _program, report in parser.trace_log:
            series.extend(report.sync_stats.messages_per_sync())
        summary = summarize_traffic(series)
        result.add_table(
            format_traffic_series(
                series, title="messages per sync point (one sentence parse)"
            )
        )
        result.add()
        result.add(
            f"mean={summary.mean:.2f} msgs/sync (paper: 11.49), "
            f"peak={summary.peak}, bursts>30={summary.bursts_over_30}, "
            f"bursty={summary.bursty}"
        )
        result.data = {
            "series": series,
            "mean": summary.mean,
            "peak": summary.peak,
            "bursts_over_30": summary.bursts_over_30,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
