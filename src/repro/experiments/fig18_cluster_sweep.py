"""Fig. 18 — per-class execution time vs number of clusters.

*"Propagation time was reduced by nearly an order of magnitude by
increasing the number of clusters from 1 to 16.  Even though some
instructions took slightly longer as the number of PE's was increased,
they contributed only second-order effects."*

Time per class here is summed instruction *latency* (issue→complete),
the quantity that shrinks as each instruction's work spreads over more
marker units.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.profiles import CATEGORY_ORDER, category_latency
from ..apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from ..machine import SnapMachine, cluster_sweep
from .common import ExperimentResult, experiment, nlu_config, timed


@experiment("fig18")
def run(fast: bool = True) -> ExperimentResult:
    """Parse the same sentence at 1..16 clusters; split time by class."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig18",
            title="Execution time per instruction class vs number of "
                  "clusters (NLU parse)",
            paper_claim="propagation time drops ~an order of magnitude "
                        "from 1 to 16 clusters; other classes change "
                        "only second-order",
        )
        kb_nodes = 4000 if fast else 9000
        sentence = sentences()[1]
        rows: List[Dict] = []
        categories = list(CATEGORY_ORDER)
        header = f"{'clusters':>8}" + "".join(
            f"{c[:10]:>12}" for c in categories
        ) + f"{'parse ms':>10}"
        result.add(header + "   (per-class latency, ms)")
        for config in cluster_sweep():
            kb = build_domain_kb(total_nodes=kb_nodes)
            machine = SnapMachine(kb.network, nlu_config(config))
            parser = MemoryBasedParser(machine, kb, keep_trace=True)
            parse = parser.parse(sentence)
            latency = category_latency(
                report for _program, report in parser.trace_log
            )
            rows.append(
                {
                    "clusters": config.num_clusters,
                    "latency_us": latency,
                    "parse_ms": parse.mb_time_us / 1e3,
                }
            )
            result.add(
                f"{config.num_clusters:>8}"
                + "".join(
                    f"{latency.get(c, 0.0) / 1e3:>12.3f}"
                    for c in categories
                )
                + f"{parse.mb_time_us / 1e3:>10.3f}"
            )
        prop_first = rows[0]["latency_us"].get("propagate", 0.0)
        prop_last = rows[-1]["latency_us"].get("propagate", 0.0)
        result.add()
        if prop_last > 0:
            result.add(
                f"propagation latency 1 -> {rows[-1]['clusters']} clusters: "
                f"x{prop_first / prop_last:.1f} reduction "
                f"(paper: ~order of magnitude)"
            )
        result.data = {"rows": rows}
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
