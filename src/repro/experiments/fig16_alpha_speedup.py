"""Fig. 16 — processor speedup under α-parallelism.

*"Fig. 16 shows that to obtain speedup of 20-fold, α-parallelism on
the order of 100 source activations was required.  For α = 1000,
nearly linear speedup was obtained up to the full processor
configuration.  Thus for typical values of α, namely 128 ≤ α ≤ 512,
speedup ranges from 18-fold to 33-fold in a 72 processor
configuration."*
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.speedup import SpeedupCurve, SweepPoint, format_speedup_table
from ..baselines.serial import SerialMachine
from ..machine import MachineConfig, SnapMachine, processor_sweep, snap1_16cluster
from .common import ExperimentResult, experiment, timed
from .workloads import make_alpha_workload


def _time_on(config: MachineConfig, alpha: int, path_length: int) -> float:
    from dataclasses import replace

    # Locality-preserving (semantic) allocation keeps each propagation
    # chain cluster-local, as the paper's KB mapping does (SS II-A).
    config = replace(config, partition_policy="semantic")
    workload = make_alpha_workload(alpha, path_length)
    machine = SnapMachine(workload.network, config)
    return machine.run(workload.program).total_time_us


def _serial_time(alpha: int, path_length: int) -> float:
    """True single-PE reference (no PU/CU pipeline assistance)."""
    workload = make_alpha_workload(alpha, path_length)
    return SerialMachine(workload.network).run(workload.program).total_time_us


@experiment("fig16")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep processors for α ∈ {10, 100, 1000}."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="fig16",
            title="Speedup vs number of processors for varying "
                  "alpha-parallelism",
            paper_claim="~20x speedup needs alpha~100; alpha=1000 nearly "
                        "linear to 72 PEs; alpha in [128,512] gives "
                        "18x-33x at 72 PEs",
        )
        path_length = 10
        alphas = [10, 100, 1000]
        configs = processor_sweep()
        if fast:
            configs = [c for c in configs if c.total_pes in
                       (3, 5, 10, 20, 40, 72)]
        curves: List[SpeedupCurve] = []
        for alpha in alphas:
            curve = SpeedupCurve(label=f"alpha={alpha}")
            # Reference point: one processor (the serial machine).
            curve.add(
                SweepPoint(
                    processors=1,
                    clusters=0,
                    time_us=_serial_time(alpha, path_length),
                )
            )
            for config in configs:
                time_us = _time_on(config, alpha, path_length)
                curve.add(
                    SweepPoint(
                        processors=config.total_pes,
                        clusters=config.num_clusters,
                        time_us=time_us,
                    )
                )
            curves.append(curve)
        result.add_table(format_speedup_table(curves))

        # Typical-α band at the full 72-PE configuration.
        result.add()
        band: Dict[int, float] = {}
        config72 = snap1_16cluster()
        for alpha in (128, 512):
            t72 = _time_on(config72, alpha, path_length)
            tbase = _serial_time(alpha, path_length)
            band[alpha] = tbase / t72
            result.add(
                f"alpha={alpha}: speedup at 72 PEs = {band[alpha]:.1f}x"
            )
        result.add(
            f"typical-alpha band at 72 PEs: "
            f"{min(band.values()):.1f}x .. {max(band.values()):.1f}x "
            f"(paper: 18x .. 33x)"
        )
        result.data = {
            "curves": {c.label: c.speedups() for c in curves},
            "band_72pe": band,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
