"""Extension study — toward the one-million-concept machine.

Not a figure in the paper, but its stated trajectory: SNAP-1 *"provides
a testbed for an architecture which is being designed to handle a
one-million concept knowledge base"* (§I-A).  This study measures how
inheritance-style inferencing scales on the simulated prototype as the
knowledge base grows toward the 32 K-node capacity, fits the scaling
law, and projects the cluster count a 1M-concept machine needs to keep
the paper's real-time budget.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.inheritance import inheritance_program
from ..machine import MachineConfig, SnapMachine
from ..network.generator import generate_hierarchy_kb
from .common import ExperimentResult, experiment, fmt_us, timed


@experiment("scaling")
def run(fast: bool = True) -> ExperimentResult:
    """KB-size and cluster-count scaling of a fixed inference."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="scaling",
            title="EXTENSION: scaling toward the 1M-concept machine",
            paper_claim="(not a paper figure) SNAP-1 is 'a testbed for "
                        "an architecture being designed to handle a "
                        "one-million concept knowledge base' (SS I-A)",
        )
        sizes = [2000, 8000, 24000] if fast else [2000, 8000, 32000]
        clusters_list = [16, 32] if fast else [16, 32, 64]
        properties = 2

        # --- KB scaling at fixed machine, split by bottleneck -----------
        result.add("KB scaling on the 32-cluster prototype "
                   "(2-attribute inheritance + retrieval):")
        result.add(
            f"{'nodes':>8}{'total':>12}{'collection':>12}"
            f"{'propagation+':>13}"
        )
        rows: List[Dict] = []
        for size in sizes:
            machine = SnapMachine(
                generate_hierarchy_kb(size),
                MachineConfig(num_clusters=32, mus_per_cluster=(3, 2)),
            )
            report = machine.run(
                inheritance_program(num_properties=properties)
            )
            collect_us = report.overheads.collection
            compute_us = report.total_time_us - collect_us
            rows.append(
                {"nodes": size, "time_us": report.total_time_us,
                 "collect_us": collect_us, "compute_us": compute_us}
            )
            result.add(
                f"{size:>8}{fmt_us(report.total_time_us):>12}"
                f"{fmt_us(collect_us):>12}{fmt_us(compute_us):>13}"
            )

        # --- cluster scaling at fixed KB --------------------------------
        kb_size = sizes[-1]
        result.add("")
        result.add(f"cluster scaling at {kb_size} nodes:")
        result.add(f"{'clusters':>9}{'PEs':>6}{'total':>12}"
                   f"{'non-collect':>12}")
        cluster_rows: List[Dict] = []
        for clusters in clusters_list:
            machine = SnapMachine(
                generate_hierarchy_kb(kb_size),
                MachineConfig(num_clusters=clusters,
                              mus_per_cluster=(3, 2)),
            )
            report = machine.run(
                inheritance_program(num_properties=properties)
            )
            non_collect = (
                report.total_time_us - report.overheads.collection
            )
            cluster_rows.append(
                {"clusters": clusters, "time_us": report.total_time_us,
                 "non_collect_us": non_collect}
            )
            result.add(
                f"{clusters:>9}{machine.total_pes:>6}"
                f"{fmt_us(report.total_time_us):>12}"
                f"{fmt_us(non_collect):>12}"
            )

        # --- projection -------------------------------------------------
        target_nodes = 1_000_000
        budget_us = 1e6  # the paper's real-time second
        compute_per_node = rows[-1]["compute_us"] / rows[-1]["nodes"]
        collect_per_node = rows[-1]["collect_us"] / rows[-1]["nodes"]
        compute_at_target = compute_per_node * target_nodes
        collect_at_target = collect_per_node * target_nodes
        # Propagation work divides across clusters (1K nodes each).
        clusters_for_compute = max(
            32, int(32 * compute_at_target / budget_us)
        )
        result.add("")
        result.add(
            f"1M-concept projection: propagation work "
            f"{fmt_us(compute_at_target)} at 32 clusters -> "
            f"~{clusters_for_compute} clusters keep inference under "
            f"1 s; but retrieval alone would take "
            f"{fmt_us(collect_at_target)} through the serial "
            f"controller port."
        )
        result.add(
            "conclusion: the 1M-concept machine is retrieval-bound, "
            "confirming the paper's §IV remark — 'more improvement "
            "could be made using interleaved memories at the "
            "controller' and reducing collection frequency."
        )
        result.data = {
            "kb_rows": rows,
            "cluster_rows": cluster_rows,
            "clusters_for_compute": clusters_for_compute,
            "collect_at_target_us": collect_at_target,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
