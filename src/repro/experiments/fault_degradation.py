"""Extension study — marker propagation under partial hardware failure.

The published SNAP-1 evaluation assumed a perfectly healthy 144-PE
array.  This experiment measures what the paper could not: how
marker-propagation *accuracy* (fraction of the fault-free marked set
still reached) and runtime degrade as clusters go offline and the
memory/ICN fault rate rises — and how much of the loss the recovery
stack (per-transfer retry, checkpoint replay, allocator remap) wins
back.

Two arms per sweep cell, averaged over fault seeds:

* **detect-only** — faults are detected but not recovered (no node
  remap, no checkpoint replay, a single retry): the raw degradation
  curve.  Accuracy falls smoothly and monotonically as the
  failed-cluster fraction rises — graceful degradation, not a crash.
* **recovered** — the full recovery stack: nodes evicted off failed
  clusters, lost messages replayed, corrupted transfers retried under
  the backoff budget.

Run with ``python -m repro experiments faultdeg``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Tuple

from ..isa import assemble
from ..machine import FaultConfig, MachineConfig, RetryPolicy, SnapMachine
from ..network.generator import generate_hierarchy_kb
from .common import ExperimentResult, experiment, timed

#: Inheritance workload: mark every concept below the hierarchy root.
PROGRAM = """
SEARCH-NODE thing b0
PROPAGATE b0 b1 chain(inverse:is-a)
COLLECT-NODE b1
"""

#: Failed-cluster fractions swept (0 → 25% of the machine).
FRACTIONS = (0.0, 0.0625, 0.125, 0.1875, 0.25)


def _machine_config(faults) -> MachineConfig:
    return MachineConfig(num_clusters=16, mus_per_cluster=2, faults=faults)


def _run_once(
    num_nodes: int, faults
) -> Tuple[float, FrozenSet]:
    """One full machine build + program run; (report, marked set)."""
    machine = SnapMachine(
        generate_hierarchy_kb(num_nodes, branching=3),
        _machine_config(faults),
    )
    report = machine.run(assemble(PROGRAM))
    marked = frozenset(
        tuple(item) if isinstance(item, list) else item
        for item in report.results()[0]
    )
    return report, marked


@experiment("faultdeg")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep failed-cluster fraction x fault rate; accuracy/slowdown."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="faultdeg",
            title="EXTENSION: graceful degradation under injected faults",
            paper_claim="(not a paper figure) the prototype's published "
                        "numbers assume a fault-free array; this sweeps "
                        "failed clusters x fault rate",
        )
        num_nodes = 300 if fast else 1200
        seeds = range(3 if fast else 8)
        rates = (0.02, 0.05) if fast else (0.01, 0.02, 0.05)

        ref_report, ref_marked = _run_once(num_nodes, None)
        ref_time = ref_report.total_time_us

        result.add(
            f"{'fault rate':>11}{'failed':>9}{'acc raw':>9}"
            f"{'acc rec':>9}{'slowdown':>10}{'retries':>9}"
            f"{'replays':>9}{'rerouted':>10}"
        )
        rows: List[Dict] = []
        for rate in rates:
            for fraction in FRACTIONS:
                raw_acc = rec_acc = slow = 0.0
                retries = replays = rerouted = 0
                retry_us = 0.0
                for seed in seeds:
                    # A deliberately tight retry budget (one retry per
                    # transfer) so the upper recovery layer — checkpoint
                    # replay — visibly engages in the counters.
                    base = FaultConfig(
                        seed=seed,
                        failed_cluster_fraction=fraction,
                        link_fail_prob=rate / 2,
                        transfer_corrupt_prob=rate,
                        scp_timeout_prob=rate / 2,
                        mu_loss_prob=rate,
                        retry=RetryPolicy(max_retries=1),
                    )
                    detect_only = replace(
                        base,
                        remap_nodes=False,
                        checkpoint_recovery=False,
                    )
                    raw_rep, raw_marked = _run_once(num_nodes, detect_only)
                    rec_rep, rec_marked = _run_once(num_nodes, base)
                    raw_acc += len(raw_marked & ref_marked) / len(ref_marked)
                    rec_acc += len(rec_marked & ref_marked) / len(ref_marked)
                    slow += rec_rep.total_time_us / ref_time
                    stats = rec_rep.fault_stats
                    retries += stats.transfer_retries
                    replays += stats.replays
                    rerouted += stats.messages_rerouted
                    retry_us += stats.retry_time_us
                n = len(seeds)
                row = {
                    "fault_rate": rate,
                    "failed_fraction": fraction,
                    "accuracy_detect_only": raw_acc / n,
                    "accuracy_recovered": rec_acc / n,
                    "slowdown_recovered": slow / n,
                    "transfer_retries": retries,
                    "retry_time_us": retry_us,
                    "replays": replays,
                    "messages_rerouted": rerouted,
                }
                rows.append(row)
                result.add(
                    f"{rate:>11.2f}{100 * fraction:>8.1f}%"
                    f"{100 * row['accuracy_detect_only']:>8.1f}%"
                    f"{100 * row['accuracy_recovered']:>8.1f}%"
                    f"{row['slowdown_recovered']:>10.2f}{retries:>9}"
                    f"{replays:>9}{rerouted:>10}"
                )
        result.add()
        worst = rows[len(FRACTIONS) * len(rates) - 1]
        result.add(
            f"detect-only accuracy declines smoothly to "
            f"{100 * worst['accuracy_detect_only']:.0f}% at 25% failed "
            f"clusters (no crash); the recovery stack holds "
            f"{100 * worst['accuracy_recovered']:.0f}%"
        )
        result.data = {
            "reference_marked": len(ref_marked),
            "reference_time_us": ref_time,
            "rows": rows,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
