"""Extension study — query serving under overload and partial failure.

The paper ran one query at a time from a Sun host; the ROADMAP north
star is sustained multi-query traffic.  This experiment drives the
:mod:`repro.host` serving layer with a Poisson-like arrival stream of
inheritance queries, sweeping **offered load** (as a multiple of the
array's sustainable throughput) × **fault injection** (a seed-driven
subset of replicas degraded through the PR 1 fault layer), and
measures the graceful-degradation contract:

* served p99 latency stays **bounded** (the deadline watchdogs cap it
  below 3× the uncontended p99) instead of growing without limit;
* the **shed fraction rises smoothly and monotonically** with offered
  load — overload costs capacity, never a crash or deadlock;
* every submitted query is accounted for in exactly one outcome
  bucket (served / shed / timed-out / failed).

Arrival streams reuse one unit-rate exponential gap sequence per seed,
scaled by the offered rate, so higher load strictly compresses the
same arrival pattern — the sweep is deterministic for a fixed seed.

Run with ``python -m repro experiments overload``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..host import HostConfig, Query, ServingHost
from ..isa import assemble
from ..network.generator import generate_hierarchy_kb
from .common import ExperimentResult, experiment, timed

#: Query templates: full-hierarchy inheritance plus two subtree scans.
TEMPLATES: Tuple[Tuple[str, str], ...] = (
    ("root", """
        SEARCH-NODE thing b0
        PROPAGATE b0 b1 chain(inverse:is-a)
        COLLECT-NODE b1
    """),
    ("sub1", """
        SEARCH-NODE c1 b2
        PROPAGATE b2 b3 chain(inverse:is-a)
        COLLECT-NODE b3
    """),
    ("sub2", """
        SEARCH-NODE c2 b4
        PROPAGATE b4 b5 chain(inverse:is-a)
        COLLECT-NODE b5
    """),
)

#: Offered load as multiples of sustainable throughput.
LOAD_FACTORS = (0.5, 1.0, 1.5, 2.0, 3.0)

#: Faulty-replica fractions swept (0.25 of 4 replicas × half their
#: clusters offline ≈ 10% of the array's clusters faulty).
FAULT_ARMS = (0.0, 0.25)

ARRIVAL_SEED = 20260805


def build_queries(
    count: int,
    rate_per_us: float,
    deadline_us: float,
    seed: int = ARRIVAL_SEED,
) -> List[Query]:
    """A deterministic Poisson-like arrival stream over the templates.

    Gap and template-mix streams are drawn independently so scaling
    the rate changes *when* queries arrive, never *which* query
    arrives — the monotone-load comparison stays apples-to-apples.
    """
    programs = {name: assemble(text) for name, text in TEMPLATES}
    gap_rng = random.Random(f"{seed}/gaps")
    mix_rng = random.Random(f"{seed}/mix")
    queries: List[Query] = []
    arrival = 0.0
    names = [name for name, _ in TEMPLATES]
    for qid in range(count):
        arrival += gap_rng.expovariate(1.0) / rate_per_us
        name = mix_rng.choice(names)
        queries.append(
            Query(
                query_id=qid,
                program=programs[name],
                arrival_us=arrival,
                deadline_us=deadline_us,
                template=name,
            )
        )
    return queries


def uncontended_profile(
    network, config: HostConfig
) -> Tuple[float, float]:
    """(mean, p99) service time of the query mix on a healthy replica."""
    from ..host import ReplicaArray
    from ..host.report import percentile
    from dataclasses import replace

    array = ReplicaArray(
        network, replace(config, faulty_replica_fraction=0.0)
    )
    programs = {name: assemble(text) for name, text in TEMPLATES}
    mix_rng = random.Random(f"{ARRIVAL_SEED}/mix")
    names = [name for name, _ in TEMPLATES]
    services = [
        array.healthy_service_us(
            Query(query_id=i, program=programs[name], template=name)
        )
        for i, name in enumerate(mix_rng.choice(names) for _ in range(200))
    ]
    return sum(services) / len(services), percentile(services, 99)


@experiment("overload")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep offered load × fault rate; bounded p99, smooth shedding."""

    def body() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="overload",
            title="EXTENSION: serving under overload and partial failure",
            paper_claim="(not a paper figure) the prototype served one "
                        "query at a time; this sweeps offered load x "
                        "degraded replicas through the host layer",
        )
        num_nodes = 240 if fast else 720
        count = 150 if fast else 500
        network = generate_hierarchy_kb(num_nodes, branching=3)

        base = HostConfig(
            num_replicas=4,
            clusters_per_replica=4,
            mus_per_cluster=2,
            queue_capacity=8,
            shed_policy="reject-newest",
            max_attempts=2,
            breaker_failure_threshold=2,
            breaker_cooldown_us=10_000.0,
            fault_seed=3,
        )
        mean_service, p99_0 = uncontended_profile(network, base)
        #: Queries/µs the 4 replicas can absorb at 100% utilization.
        sustainable = base.num_replicas / mean_service
        deadline_us = 2.5 * p99_0

        result.add(
            f"uncontended: mean service {mean_service:.0f} us, "
            f"p99 {p99_0:.0f} us; sustainable "
            f"{sustainable * 1e6:.0f} q/s; deadline {deadline_us:.0f} us"
        )
        result.add()
        result.add(
            f"{'faulty':>7}{'load':>6}{'served':>8}{'shed':>6}"
            f"{'timeout':>8}{'failed':>7}{'shed%':>7}{'p50 us':>8}"
            f"{'p99 us':>8}{'hedges':>7}{'opens':>6}"
        )
        rows: List[Dict] = []
        for fault_fraction in FAULT_ARMS:
            for factor in LOAD_FACTORS:
                config = HostConfig(
                    num_replicas=base.num_replicas,
                    clusters_per_replica=base.clusters_per_replica,
                    mus_per_cluster=base.mus_per_cluster,
                    queue_capacity=base.queue_capacity,
                    shed_policy=base.shed_policy,
                    max_attempts=base.max_attempts,
                    hedge_after_us=0.75 * p99_0,
                    breaker_failure_threshold=base.breaker_failure_threshold,
                    breaker_cooldown_us=base.breaker_cooldown_us,
                    faulty_replica_fraction=fault_fraction,
                    fault_seed=base.fault_seed,
                )
                queries = build_queries(
                    count, factor * sustainable, deadline_us
                )
                report = ServingHost(network, config).serve(queries)
                row = {
                    "fault_fraction": fault_fraction,
                    "load_factor": factor,
                    "submitted": report.submitted,
                    "served": report.served,
                    "shed": report.shed,
                    "timed_out": report.timed_out,
                    "failed": report.failed,
                    "shed_fraction": report.shed_fraction,
                    "p50_us": report.latency_percentile(50),
                    "p99_us": report.latency_percentile(99),
                    "hedges": sum(o.hedges for o in report.outcomes),
                    "breaker_opens": sum(
                        r.breaker_opens for r in report.replicas
                    ),
                    "accounted": report.accounted(),
                    "uncontended_p99_us": p99_0,
                }
                rows.append(row)
                result.add(
                    f"{100 * fault_fraction:>6.0f}%{factor:>6.1f}"
                    f"{row['served']:>8}{row['shed']:>6}"
                    f"{row['timed_out']:>8}{row['failed']:>7}"
                    f"{100 * row['shed_fraction']:>6.1f}%"
                    f"{row['p50_us']:>8.0f}{row['p99_us']:>8.0f}"
                    f"{row['hedges']:>7}{row['breaker_opens']:>6}"
                )
            result.add()
        overloaded = [
            r for r in rows
            if r["fault_fraction"] == FAULT_ARMS[-1]
            and r["load_factor"] == 2.0
        ][0]
        result.add(
            f"at 2.0x load with degraded replicas: p99 "
            f"{overloaded['p99_us']:.0f} us "
            f"({overloaded['p99_us'] / p99_0:.2f}x uncontended p99, "
            f"bound 3.0x), shed {100 * overloaded['shed_fraction']:.1f}% "
            "-- bounded latency, no collapse"
        )
        result.data = {
            "mean_service_us": mean_service,
            "uncontended_p99_us": p99_0,
            "sustainable_per_us": sustainable,
            "deadline_us": deadline_us,
            "rows": rows,
        }
        return result

    return timed(body)


if __name__ == "__main__":
    print(run(fast=True).render())
