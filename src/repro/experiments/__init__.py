"""Regeneration of every table and figure in the paper's evaluation.

Each ``figNN_*`` / ``tableNN_*`` module regenerates one artifact of
§IV and is runnable standalone (``python -m
repro.experiments.fig16_alpha_speedup``) or through the runner
(``python -m repro.experiments.runner``).  See DESIGN.md for the
per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
"""

from .common import REGISTRY, ExperimentResult, experiment
from .workloads import (
    AlphaWorkload,
    alpha_network,
    alpha_program,
    make_alpha_workload,
    make_beta_workload,
)

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "experiment",
    "AlphaWorkload",
    "alpha_network",
    "alpha_program",
    "make_alpha_workload",
    "make_beta_workload",
]
