"""Layered organization of the linguistic knowledge base (paper Fig. 1).

The SNAP knowledge base is organized hierarchically into layers:

1. the **lexical layer** at the bottom — all words in the vocabulary;
2. **semantic and syntactic constraints** in the middle;
3. **concept sequences** at the highest layer.

This module gives those layers a first-class representation used by the
synthetic generator and by KB statistics/validation: which colors
belong to which layer, the paper's published layer proportions, and
checks that a knowledge base respects the layering (e.g. lexical nodes
only link upward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from .graph import SemanticNetwork
from .node import Color


@dataclass(frozen=True)
class Layer:
    """A named knowledge-base layer covering a set of node colors."""

    name: str
    colors: Tuple[int, ...]
    level: int  # 0 = bottom (lexical)

    def contains(self, color: int) -> bool:
        """Whether a color belongs to this layer."""
        return color in self.colors


#: The three layers of Fig. 1, bottom to top.
LEXICAL_LAYER = Layer("lexical", (Color.LEXICAL,), 0)
CONSTRAINT_LAYER = Layer(
    "constraints", (Color.SYNTAX, Color.SEMANTIC, Color.PROPERTY), 1
)
CONCEPT_SEQUENCE_LAYER = Layer(
    "concept-sequences",
    (Color.CS_ROOT, Color.CS_ELEMENT, Color.CS_AUX),
    2,
)

LAYERS: Tuple[Layer, ...] = (
    LEXICAL_LAYER,
    CONSTRAINT_LAYER,
    CONCEPT_SEQUENCE_LAYER,
)

#: Paper §I-B: proportions of the ~20K *nonlexical* concepts.
#: "Roughly 15K nodes (75%) represent basic concept sequences, 3K (15%)
#: compose the concept-type hierarchy, 1K (5%) form syntactic patterns,
#: and 1K (5%) are used for auxiliary concept storage."
PAPER_NONLEXICAL_PROPORTIONS: Mapping[str, float] = {
    "concept-sequences": 0.75,
    "hierarchy": 0.15,
    "syntax": 0.05,
    "auxiliary": 0.05,
}


def layer_of_color(color: int) -> Layer:
    """The layer a node color belongs to (generic colors → constraints)."""
    for layer in LAYERS:
        if layer.contains(color):
            return layer
    return CONSTRAINT_LAYER


def layer_histogram(network: SemanticNetwork) -> Dict[str, int]:
    """Node counts per layer (subnodes counted with their layer's parent)."""
    hist: Dict[str, int] = {layer.name: 0 for layer in LAYERS}
    hist["subnodes"] = 0
    for node in network.nodes():
        if node.is_subnode:
            hist["subnodes"] += 1
        else:
            hist[layer_of_color(node.color).name] += 1
    return hist


def nonlexical_proportions(network: SemanticNetwork) -> Dict[str, float]:
    """Measured proportions comparable to the paper's published mix."""
    counts = {
        "concept-sequences": 0,
        "hierarchy": 0,
        "syntax": 0,
        "auxiliary": 0,
    }
    for node in network.nodes():
        if node.is_subnode or node.color == Color.LEXICAL:
            continue
        if node.color in (Color.CS_ROOT, Color.CS_ELEMENT):
            counts["concept-sequences"] += 1
        elif node.color == Color.CS_AUX:
            counts["auxiliary"] += 1
        elif node.color == Color.SYNTAX:
            counts["syntax"] += 1
        else:
            counts["hierarchy"] += 1
    total = sum(counts.values())
    if total == 0:
        return {k: 0.0 for k in counts}
    return {k: v / total for k, v in counts.items()}


def layering_violations(network: SemanticNetwork) -> List[str]:
    """Return descriptions of links that break the layer discipline.

    The discipline checked: lexical nodes never receive ``is-a`` links
    (they are the bottom of the hierarchy).
    """
    violations: List[str] = []
    is_a = network.relations.get("is-a")
    if is_a is None:
        return violations
    for link in network.links():
        dest = network.node(link.dest)
        if link.relation == is_a and dest.color == Color.LEXICAL:
            src = network.node(link.source)
            violations.append(
                f"is-a link into lexical layer: {src.name} -> {dest.name}"
            )
    return violations
