"""Partitioning the semantic network across clusters.

The knowledge base is stored distributed: *"A partitioning function is
applied to divide the network into regions.  Each region is allocated
to a cluster which processes all of its concepts, relations, and
markers.  The mapping function is variable with up to 1024 nodes per
cluster using sequential, round-robin, or semantically-based
allocation"* (paper §II-A).

All three allocation policies are implemented.  A
:class:`Partitioning` resolves global node ids to (cluster, local id)
pairs — the two fields of the relation table's destination-node entry.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from .graph import SemanticNetwork

#: Paper §II-A: granularity is at most 1024 nodes per cluster.
MAX_NODES_PER_CLUSTER = 1024


class PartitionError(ValueError):
    """Raised when a network cannot be partitioned as requested."""


class Partitioning:
    """An assignment of every node to exactly one cluster.

    Provides O(1) translation between global node ids and the
    (cluster, local-id) addressing used by the machine's relation
    table.
    """

    def __init__(self, assignment: Sequence[int], num_clusters: int) -> None:
        if num_clusters < 1:
            raise PartitionError("need at least one cluster")
        self.num_clusters = num_clusters
        self._cluster_of: List[int] = list(assignment)
        self._members: List[List[int]] = [[] for _ in range(num_clusters)]
        self._local_of: List[int] = [0] * len(self._cluster_of)
        for nid, cluster in enumerate(self._cluster_of):
            if not 0 <= cluster < num_clusters:
                raise PartitionError(
                    f"node {nid} assigned to invalid cluster {cluster}"
                )
            self._local_of[nid] = len(self._members[cluster])
            self._members[cluster].append(nid)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._cluster_of)

    def cluster_of(self, node_id: int) -> int:
        """Cluster holding ``node_id``."""
        return self._cluster_of[node_id]

    def local_id(self, node_id: int) -> int:
        """Local index of ``node_id`` within its cluster."""
        return self._local_of[node_id]

    def address_of(self, node_id: int) -> Tuple[int, int]:
        """(cluster, local id) — the relation-table destination fields."""
        return self._cluster_of[node_id], self._local_of[node_id]

    def global_id(self, cluster: int, local: int) -> int:
        """Inverse of :meth:`address_of`."""
        return self._members[cluster][local]

    def members(self, cluster: int) -> List[int]:
        """Global ids of the nodes stored on ``cluster``."""
        return list(self._members[cluster])

    def sizes(self) -> List[int]:
        """Node count per cluster."""
        return [len(m) for m in self._members]

    def imbalance(self) -> float:
        """max/mean cluster occupancy (1.0 = perfectly balanced)."""
        sizes = self.sizes()
        mean = sum(sizes) / len(sizes)
        return (max(sizes) / mean) if mean else 1.0

    def cut_links(self, network: SemanticNetwork) -> int:
        """Number of links crossing cluster boundaries.

        Cross-cluster links generate activation-message traffic during
        propagation, so a good semantic partition minimizes this.
        """
        return sum(
            1
            for link in network.links()
            if self._cluster_of[link.source] != self._cluster_of[link.dest]
        )


def _check_capacity(
    num_nodes: int, num_clusters: int, capacity: int
) -> None:
    if num_clusters < 1:
        raise PartitionError("need at least one cluster")
    if num_nodes > num_clusters * capacity:
        raise PartitionError(
            f"{num_nodes} nodes exceed capacity of "
            f"{num_clusters} clusters x {capacity} nodes"
        )


def sequential_partition(
    network: SemanticNetwork,
    num_clusters: int,
    capacity: int = MAX_NODES_PER_CLUSTER,
) -> Partitioning:
    """Contiguous blocks of node ids per cluster."""
    n = network.num_nodes
    _check_capacity(n, num_clusters, capacity)
    if n == 0:
        return Partitioning([], num_clusters)
    block = -(-n // num_clusters)  # ceil division
    block = min(block, capacity) if block else 1
    if block * num_clusters < n:
        block = -(-n // num_clusters)
    assignment = [min(nid // block, num_clusters - 1) for nid in range(n)]
    return Partitioning(assignment, num_clusters)


def round_robin_partition(
    network: SemanticNetwork,
    num_clusters: int,
    capacity: int = MAX_NODES_PER_CLUSTER,
) -> Partitioning:
    """Node ``i`` goes to cluster ``i mod num_clusters`` (best balance)."""
    n = network.num_nodes
    _check_capacity(n, num_clusters, capacity)
    return Partitioning([nid % num_clusters for nid in range(n)], num_clusters)


def semantic_partition(
    network: SemanticNetwork,
    num_clusters: int,
    capacity: int = MAX_NODES_PER_CLUSTER,
) -> Partitioning:
    """Locality-preserving allocation by breadth-first region growing.

    Grows connected regions so that semantically related concepts (which
    exchange the most markers) land on the same cluster, reducing
    cross-cluster activation traffic.  Regions are capped at
    ``ceil(n / num_clusters)`` nodes to stay balanced.
    """
    n = network.num_nodes
    _check_capacity(n, num_clusters, capacity)
    if n == 0:
        return Partitioning([], num_clusters)
    target = min(-(-n // num_clusters), capacity)
    assignment = [-1] * n
    # Undirected adjacency for region growing.
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for link in network.links():
        neighbors[link.source].append(link.dest)
        neighbors[link.dest].append(link.source)

    cluster = 0
    filled = 0
    queue: deque = deque()
    for seed in range(n):
        if assignment[seed] != -1:
            continue
        queue.append(seed)
        while queue:
            nid = queue.popleft()
            if assignment[nid] != -1:
                continue
            if filled >= target and cluster < num_clusters - 1:
                cluster += 1
                filled = 0
            assignment[nid] = cluster
            filled += 1
            for nb in neighbors[nid]:
                if assignment[nb] == -1:
                    queue.append(nb)
    return Partitioning(assignment, num_clusters)


#: Label-propagation rounds before the detector gives up on full
#: convergence (asynchronous LPA converges in a handful of rounds on
#: the KB generators' graphs; the cap only bounds adversarial inputs).
MAX_LPA_ROUNDS = 16


def detect_communities(network: SemanticNetwork) -> List[List[int]]:
    """Deterministic community detection by label propagation.

    Asynchronous label propagation over the undirected link structure
    (the GraphRAG-style community-clustering recipe): every node starts
    as its own community and repeatedly adopts the most frequent label
    among its neighbours.  All tie-breaks are by **lowest label**, and
    nodes are visited in ascending id order, so the result is a pure
    function of the graph — no RNG is drawn and repeated runs (with or
    without a seed anywhere upstream) produce identical communities.

    Returns member lists (each ascending by node id), ordered largest
    community first with ties broken by smallest member id.  An empty
    network yields no communities; a fully connected one yields exactly
    one (single-community inputs are legal — the partitioners split
    them by BFS order instead of raising).
    """
    n = network.num_nodes
    if n == 0:
        return []
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for link in network.links():
        neighbors[link.source].append(link.dest)
        neighbors[link.dest].append(link.source)
    labels = list(range(n))
    for _ in range(MAX_LPA_ROUNDS):
        changed = False
        for nid in range(n):
            if not neighbors[nid]:
                continue
            tally: Dict[int, int] = {}
            for nb in neighbors[nid]:
                label = labels[nb]
                tally[label] = tally.get(label, 0) + 1
            # Most frequent neighbour label; ties -> lowest label (the
            # deterministic tie-break that keeps partitions stable).
            best = min(
                tally, key=lambda label: (-tally[label], label)
            )
            if best != labels[nid]:
                labels[nid] = best
                changed = True
        if not changed:
            break
    members: Dict[int, List[int]] = {}
    for nid, label in enumerate(labels):
        members.setdefault(label, []).append(nid)
    return sorted(members.values(), key=lambda m: (-len(m), m[0]))


def _bfs_order(members: List[int], neighbors: List[List[int]]) -> List[int]:
    """Members of one community in BFS order from its lowest id.

    Used to split an oversized community into locality-preserving
    chunks: consecutive BFS positions are graph-adjacent, so a chunk
    boundary cuts as few intra-community links as a greedy sweep can.
    """
    member_set = set(members)
    order: List[int] = []
    seen: Set[int] = set()
    for seed in members:  # ascending; covers disconnected parts
        if seed in seen:
            continue
        queue: deque = deque((seed,))
        seen.add(seed)
        while queue:
            nid = queue.popleft()
            order.append(nid)
            for nb in sorted(neighbors[nid]):
                if nb in member_set and nb not in seen:
                    seen.add(nb)
                    queue.append(nb)
    return order


def community_partition(
    network: SemanticNetwork,
    num_clusters: int,
    capacity: int = MAX_NODES_PER_CLUSTER,
) -> Partitioning:
    """Community-aligned allocation (label propagation + bin packing).

    Detects communities with :func:`detect_communities`, splits any
    community larger than the balanced target into BFS-ordered chunks,
    and packs chunks onto clusters largest-first, least-loaded-first
    (ties by lowest cluster id).  A chunk that would overflow the
    least-loaded cluster's remaining capacity is split at the
    boundary, so packing always succeeds whenever
    ``n <= num_clusters * capacity``.

    Handles the degenerate inputs explicitly: an **empty network**
    partitions into ``num_clusters`` empty clusters, and a
    **single-community network** is split by BFS order rather than
    raising.  Everything is deterministic — same graph, same
    partition, run after run.
    """
    n = network.num_nodes
    _check_capacity(n, num_clusters, capacity)
    if n == 0:
        return Partitioning([], num_clusters)
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for link in network.links():
        neighbors[link.source].append(link.dest)
        neighbors[link.dest].append(link.source)
    target = min(-(-n // num_clusters), capacity)
    chunks: List[List[int]] = []
    for community in detect_communities(network):
        if len(community) <= target:
            chunks.append(community)
            continue
        ordered = _bfs_order(community, neighbors)
        chunks.extend(
            ordered[i:i + target] for i in range(0, len(ordered), target)
        )
    chunks.sort(key=lambda chunk: (-len(chunk), chunk[0]))
    assignment = [-1] * n
    loads = [0] * num_clusters
    for chunk in chunks:
        rest = chunk
        while rest:
            cluster = min(
                range(num_clusters), key=lambda c: (loads[c], c)
            )
            room = capacity - loads[cluster]
            placed, rest = rest[:room], rest[room:]
            for nid in placed:
                assignment[nid] = cluster
            loads[cluster] += len(placed)
    return Partitioning(assignment, num_clusters)


def evict_clusters(
    partitioning: Partitioning, excluded: Iterable[int]
) -> Tuple[Partitioning, int]:
    """Remap every node off the ``excluded`` clusters onto survivors.

    The graceful-degradation allocator: when clusters fail, their
    region of the semantic network is evicted onto the surviving
    clusters, least-loaded first (ties broken by lowest cluster id),
    instead of crashing the machine.  Nodes are visited in global-id
    order, so the remap is deterministic.

    Returns ``(new_partitioning, nodes_moved)``.  Capacity is *not*
    re-enforced — a heavily degraded machine may pack survivors past
    the prototype's per-cluster limit, which the simulator surfaces as
    slowdown rather than failure.
    """
    excluded_set = set(excluded)
    survivors = [
        c for c in range(partitioning.num_clusters) if c not in excluded_set
    ]
    if not survivors:
        raise PartitionError("cannot evict every cluster")
    sizes = partitioning.sizes()
    assignment = [
        partitioning.cluster_of(nid) for nid in range(partitioning.num_nodes)
    ]
    heap = [(sizes[c], c) for c in survivors]
    heapq.heapify(heap)
    moved = 0
    for nid in range(len(assignment)):
        if assignment[nid] not in excluded_set:
            continue
        size, cid = heapq.heappop(heap)
        assignment[nid] = cid
        heapq.heappush(heap, (size + 1, cid))
        moved += 1
    return Partitioning(assignment, partitioning.num_clusters), moved


#: Registry of allocation policies by name (paper §II-A).
PARTITIONERS: Dict[str, Callable[..., Partitioning]] = {
    "sequential": sequential_partition,
    "round-robin": round_robin_partition,
    "semantic": semantic_partition,
    "community": community_partition,
}


def make_partition(
    network: SemanticNetwork,
    num_clusters: int,
    policy: str = "round-robin",
    capacity: int = MAX_NODES_PER_CLUSTER,
) -> Partitioning:
    """Partition ``network`` using a named policy."""
    try:
        partitioner = PARTITIONERS[policy]
    except KeyError:
        raise PartitionError(
            f"unknown partition policy {policy!r}; "
            f"choose from {sorted(PARTITIONERS)}"
        ) from None
    return partitioner(network, num_clusters, capacity)
