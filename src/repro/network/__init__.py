"""Semantic-network substrate: nodes, relations, graphs, partitioning.

This package implements the *static infrastructure* of the SNAP
reasoning system (paper §I-B/§I-C): the semantic network itself, its
layered linguistic organization, the fanout pre-processor that fits
nodes into 16-slot relation-table rows, the cluster partitioning
policies, and a synthetic generator reproducing the statistics of the
paper's evaluation knowledge base.
"""

from .node import Color, Link, Node, NodeError, MAX_FANOUT, NUM_COLORS
from .relation import (
    MAX_RELATION_TYPES,
    RelationError,
    RelationRegistry,
    STANDARD_RELATIONS,
)
from .graph import GraphError, NodeRef, SemanticNetwork
from .builder import (
    CONT_RELATION,
    KnowledgeBaseBuilder,
    logical_fanout,
    preprocess_fanout,
)
from .partition import (
    MAX_NODES_PER_CLUSTER,
    PARTITIONERS,
    PartitionError,
    Partitioning,
    community_partition,
    detect_communities,
    make_partition,
    round_robin_partition,
    semantic_partition,
    sequential_partition,
)
from .layers import (
    CONCEPT_SEQUENCE_LAYER,
    CONSTRAINT_LAYER,
    LAYERS,
    LEXICAL_LAYER,
    Layer,
    PAPER_NONLEXICAL_PROPORTIONS,
    layer_histogram,
    layer_of_color,
    layering_violations,
    nonlexical_proportions,
)
from .generator import (
    GeneratorSpec,
    HIERARCHY_ROOT,
    generate_hierarchy_kb,
    generate_kb,
    kb_size_sweep,
)
from .io import (
    FormatError,
    load_network,
    loads,
    save_network,
    saves,
)
from .nx import from_networkx, kb_graph_metrics, to_networkx

__all__ = [
    "Color",
    "Link",
    "Node",
    "NodeError",
    "MAX_FANOUT",
    "NUM_COLORS",
    "MAX_RELATION_TYPES",
    "RelationError",
    "RelationRegistry",
    "STANDARD_RELATIONS",
    "GraphError",
    "NodeRef",
    "SemanticNetwork",
    "CONT_RELATION",
    "KnowledgeBaseBuilder",
    "logical_fanout",
    "preprocess_fanout",
    "MAX_NODES_PER_CLUSTER",
    "PARTITIONERS",
    "PartitionError",
    "Partitioning",
    "community_partition",
    "detect_communities",
    "make_partition",
    "round_robin_partition",
    "semantic_partition",
    "sequential_partition",
    "CONCEPT_SEQUENCE_LAYER",
    "CONSTRAINT_LAYER",
    "LAYERS",
    "LEXICAL_LAYER",
    "Layer",
    "PAPER_NONLEXICAL_PROPORTIONS",
    "layer_histogram",
    "layer_of_color",
    "layering_violations",
    "nonlexical_proportions",
    "GeneratorSpec",
    "HIERARCHY_ROOT",
    "generate_hierarchy_kb",
    "generate_kb",
    "kb_size_sweep",
    "FormatError",
    "load_network",
    "loads",
    "save_network",
    "saves",
    "from_networkx",
    "kb_graph_metrics",
    "to_networkx",
]
