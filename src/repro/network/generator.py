"""Synthetic knowledge-base generator.

Produces layered linguistic knowledge bases with the statistical
profile of the paper's hand-built KB (§I-B): a lexicon at the bottom, a
concept-type hierarchy and syntactic patterns in the middle, and
concept sequences on top, with nonlexical proportions of roughly
75 % concept sequences / 15 % hierarchy / 5 % syntax / 5 % auxiliary
and a mean fanout near 4 (the evaluation KB had 12 000 nodes and
48 000 links).

Generation is deterministic for a given seed (``random.Random``), so
every experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .builder import KnowledgeBaseBuilder, preprocess_fanout
from .graph import SemanticNetwork
from .node import Color


@dataclass
class GeneratorSpec:
    """Parameters controlling synthetic KB generation.

    Defaults reproduce the statistical shape of the paper's
    "terrorism in Latin America" evaluation knowledge base.
    """

    #: Total node budget (lexical + nonlexical), before fanout split.
    total_nodes: int = 12_000
    #: Fraction of nodes that are lexical (10K words / ~30K total ≈ 1/3).
    lexical_fraction: float = 0.33
    #: Nonlexical mix (paper §I-B).
    cs_fraction: float = 0.75
    hierarchy_fraction: float = 0.15
    syntax_fraction: float = 0.05
    aux_fraction: float = 0.05
    #: Branching factor of the concept-type hierarchy.
    hierarchy_branching: int = 4
    #: Elements per basic concept sequence (min, max), inclusive.
    cs_elements: Tuple[int, int] = (2, 5)
    #: Constraints per concept-sequence element (min, max).
    constraints_per_element: Tuple[int, int] = (1, 2)
    #: ``is-a`` parents per word (min, max).
    classes_per_word: Tuple[int, int] = (1, 3)
    #: Random seed.
    seed: int = 1991

    def __post_init__(self) -> None:
        total = (
            self.cs_fraction
            + self.hierarchy_fraction
            + self.syntax_fraction
            + self.aux_fraction
        )
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"nonlexical fractions must sum to 1.0 (got {total})"
            )
        if self.total_nodes < 50:
            raise ValueError("total_nodes too small for a layered KB")


#: Root of every generated concept-type hierarchy.
HIERARCHY_ROOT = "thing"

#: Core syntactic classes every generated KB contains.
BASE_SYNTAX_CLASSES = (
    "noun-phrase",
    "verb-phrase",
    "prep-phrase",
    "determiner",
    "adjective",
    "adverb",
    "noun",
    "verb",
    "preposition",
)


def _make_hierarchy(
    builder: KnowledgeBaseBuilder, count: int, branching: int, rng: random.Random
) -> List[str]:
    """Build a concept-type tree of ``count`` nodes; return leaf names."""
    builder.add_class(HIERARCHY_ROOT, (), color=Color.SEMANTIC)
    names = [HIERARCHY_ROOT]
    children: Dict[str, int] = {HIERARCHY_ROOT: 0}
    frontier = [HIERARCHY_ROOT]
    for i in range(1, count):
        parent = frontier[0]
        name = f"concept-{i}"
        builder.add_class(name, (parent,), color=Color.SEMANTIC)
        names.append(name)
        children[parent] = children.get(parent, 0) + 1
        children[name] = 0
        frontier.append(name)
        if children[parent] >= branching:
            frontier.pop(0)
    leaves = [n for n in names if children.get(n, 0) == 0]
    return leaves or names


def _make_syntax(
    builder: KnowledgeBaseBuilder, count: int, rng: random.Random
) -> List[str]:
    """Build syntactic pattern classes; return all class names."""
    classes = list(BASE_SYNTAX_CLASSES)
    builder.add_syntax_class("syntax-root")
    for cls in BASE_SYNTAX_CLASSES:
        builder.add_syntax_class(cls, ("syntax-root",))
    for i in range(max(0, count - len(BASE_SYNTAX_CLASSES) - 1)):
        parent = rng.choice(classes)
        name = f"syn-{i}"
        builder.add_syntax_class(name, (parent,))
        classes.append(name)
    return classes


def generate_kb(spec: Optional[GeneratorSpec] = None) -> SemanticNetwork:
    """Generate a layered knowledge base matching ``spec``.

    The returned network is *logical*; callers load it into a machine,
    which applies the fanout pre-processor.
    """
    spec = spec or GeneratorSpec()
    rng = random.Random(spec.seed)
    builder = KnowledgeBaseBuilder()

    num_lexical = int(spec.total_nodes * spec.lexical_fraction)
    nonlexical = spec.total_nodes - num_lexical
    num_hierarchy = max(2, int(nonlexical * spec.hierarchy_fraction))
    num_syntax = max(
        len(BASE_SYNTAX_CLASSES) + 1, int(nonlexical * spec.syntax_fraction)
    )
    num_cs_nodes = max(3, int(nonlexical * spec.cs_fraction))
    num_aux_nodes = max(3, int(nonlexical * spec.aux_fraction))

    leaves = _make_hierarchy(
        builder, num_hierarchy, spec.hierarchy_branching, rng
    )
    syntax_classes = _make_syntax(builder, num_syntax, rng)

    # Basic concept sequences: each consumes 1 root + k element nodes.
    def add_sequences(prefix: str, budget: int, auxiliary: bool) -> List[str]:
        roots: List[str] = []
        used = 0
        index = 0
        while used + 1 + spec.cs_elements[0] <= budget:
            k = rng.randint(*spec.cs_elements)
            k = min(k, budget - used - 1)
            if k < 1:
                break
            elements = []
            for e in range(k):
                n_constraints = rng.randint(*spec.constraints_per_element)
                constraints = [rng.choice(leaves)]
                if n_constraints > 1:
                    constraints.append(rng.choice(syntax_classes))
                elements.append((f"e{e}", constraints))
            name = f"{prefix}-{index}"
            builder.add_concept_sequence(
                name,
                elements,
                auxiliary=auxiliary,
                cost=round(rng.uniform(0.5, 2.0), 3),
            )
            roots.append(name)
            used += 1 + k
            index += 1
        return roots

    cs_roots = add_sequences("cs", num_cs_nodes, auxiliary=False)
    aux_roots = add_sequences("aux", num_aux_nodes, auxiliary=True)

    # Attach auxiliary sequences to basic ones (e.g. time-case modifies
    # seeing-event).
    for aux in aux_roots:
        target = rng.choice(cs_roots) if cs_roots else HIERARCHY_ROOT
        builder.network.add_link(aux, "aux", target)

    # Lexicon: each word is-a one or more hierarchy leaves + a syntax
    # class, mirroring "the word *we* connects to *animate* and
    # *noun-phrase*".
    for i in range(num_lexical):
        n_classes = rng.randint(*spec.classes_per_word)
        classes = [rng.choice(leaves)]
        classes.append(rng.choice(syntax_classes))
        for _ in range(max(0, n_classes - 2)):
            classes.append(rng.choice(leaves))
        builder.add_word(f"word{i}", classes, weight=round(rng.uniform(0, 1), 3))

    network = builder.build(physical=False)
    network.validate()
    return network


def generate_hierarchy_kb(
    num_nodes: int,
    branching: int = 4,
    properties_at_root: int = 4,
    seed: int = 7,
) -> SemanticNetwork:
    """A pure concept hierarchy for inheritance workloads (Fig. 15).

    ``num_nodes`` concepts in a ``branching``-ary tree; the root holds
    ``properties_at_root`` property nodes whose values leaves inherit.
    Every node links ``is-a`` to its parent, and the *root-to-leaf*
    inheritance propagates along the inverse direction installed here
    as ``inverse:is-a`` links.
    """
    builder = KnowledgeBaseBuilder()
    builder.add_class(HIERARCHY_ROOT, (), color=Color.SEMANTIC)
    network = builder.network
    names = [HIERARCHY_ROOT]
    for i in range(1, num_nodes):
        parent = names[(i - 1) // branching]
        name = f"c{i}"
        builder.add_class(name, (parent,), color=Color.SEMANTIC)
        network.add_link(parent, "inverse:is-a", name)
        names.append(name)
    for p in range(properties_at_root):
        builder.add_property(HIERARCHY_ROOT, f"attr{p}")
    network.validate()
    return network


def kb_size_sweep(
    sizes: Sequence[int], base_spec: Optional[GeneratorSpec] = None
) -> List[SemanticNetwork]:
    """Generate a family of KBs of increasing size with identical mix.

    Used by the KB-size sweeps of Figs. 15, 19, and 20.
    """
    base_spec = base_spec or GeneratorSpec()
    networks = []
    for size in sizes:
        spec = GeneratorSpec(
            total_nodes=size,
            lexical_fraction=base_spec.lexical_fraction,
            cs_fraction=base_spec.cs_fraction,
            hierarchy_fraction=base_spec.hierarchy_fraction,
            syntax_fraction=base_spec.syntax_fraction,
            aux_fraction=base_spec.aux_fraction,
            hierarchy_branching=base_spec.hierarchy_branching,
            cs_elements=base_spec.cs_elements,
            constraints_per_element=base_spec.constraints_per_element,
            classes_per_word=base_spec.classes_per_word,
            seed=base_spec.seed,
        )
        networks.append(generate_kb(spec))
    return networks
