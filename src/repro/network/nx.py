"""NetworkX interoperability.

Bridges SNAP semantic networks to :mod:`networkx` multidigraphs so the
wider graph-analysis ecosystem (centrality, components, drawing, ...)
can inspect knowledge bases, and externally authored graphs can be
loaded into the machine.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from .graph import SemanticNetwork
from .node import Color


def to_networkx(network: SemanticNetwork) -> "nx.MultiDiGraph":
    """Convert to a MultiDiGraph.

    Nodes keep ``name``/``color``/``function`` attributes and are keyed
    by global id; edges carry ``relation`` (name) and ``weight``.
    """
    graph = nx.MultiDiGraph()
    for node in network.nodes():
        graph.add_node(
            node.node_id,
            name=node.name,
            color=node.color,
            function=node.function,
        )
    for link in network.links():
        graph.add_edge(
            link.source,
            link.dest,
            relation=network.relations.name_of(link.relation),
            weight=link.weight,
        )
    return graph


def from_networkx(graph: "nx.Graph") -> SemanticNetwork:
    """Convert any networkx graph to a semantic network.

    Node keys become names unless a ``name`` attribute is present;
    edges need a ``relation`` attribute (defaulting to ``"related-to"``)
    and an optional ``weight``.  Directed edges map one-to-one;
    undirected edges produce links in both directions.
    """
    network = SemanticNetwork()
    key_to_name = {}
    for key, attrs in graph.nodes(data=True):
        name = str(attrs.get("name", key))
        key_to_name[key] = name
        network.ensure_node(
            name,
            color=int(attrs.get("color", Color.GENERIC)),
            function=int(attrs.get("function", 0)),
        )
    directed = graph.is_directed()
    for u, v, attrs in graph.edges(data=True):
        relation = str(attrs.get("relation", "related-to"))
        weight = float(attrs.get("weight", 0.0))
        network.add_link(key_to_name[u], relation, key_to_name[v], weight)
        if not directed:
            network.add_link(key_to_name[v], relation, key_to_name[u], weight)
    network.validate()
    return network


def kb_graph_metrics(network: SemanticNetwork) -> dict:
    """Structural metrics of a knowledge base via networkx.

    Useful for validating synthetic KBs against the paper's published
    statistics (connectivity, hierarchy depth).
    """
    graph = to_networkx(network)
    undirected = graph.to_undirected()
    components = nx.number_connected_components(undirected)
    largest = max(nx.connected_components(undirected), key=len, default=set())
    metrics = {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "connected_components": components,
        "largest_component_fraction": (
            len(largest) / graph.number_of_nodes()
            if graph.number_of_nodes() else 0.0
        ),
    }
    # Depth of the is-a hierarchy (longest shortest-path to a root).
    is_a_edges = [
        (u, v) for u, v, a in graph.edges(data=True)
        if a.get("relation") == "is-a"
    ]
    if is_a_edges:
        dag = nx.DiGraph(is_a_edges)
        if nx.is_directed_acyclic_graph(dag):
            metrics["is_a_depth"] = nx.dag_longest_path_length(dag)
    return metrics
