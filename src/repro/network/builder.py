"""Knowledge-base construction utilities and the fanout pre-processor.

The paper (§II-B, *Capacity*) fixes the physical relation table at 16
outgoing slots per node: *"Nodes with fanout greater than 16 are
divided into subnodes by a pre-processor when the knowledge base is
created."*  :func:`preprocess_fanout` implements that pre-processor —
it rewrites a logical :class:`~repro.network.graph.SemanticNetwork`
into a physical one where every node fits its relation-table row, by
chaining overflow links through continuation subnodes.

Continuation links use the reserved relation :data:`CONT_RELATION`; the
machine's relation table walks them transparently, so propagation
semantics always see the *logical* fanout.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .graph import SemanticNetwork
from .node import MAX_FANOUT, Color, Link

#: Reserved relation used to chain subnodes; never visible to programs.
CONT_RELATION = "__cont__"

#: Links kept per physical row when a continuation slot is needed.
_LINKS_PER_ROW = MAX_FANOUT - 1


def preprocess_fanout(
    network: SemanticNetwork, max_fanout: int = MAX_FANOUT
) -> SemanticNetwork:
    """Return a physical network where every node has ≤ ``max_fanout`` slots.

    Original node ids are preserved; subnodes are appended after all
    original nodes so existing links (and any partitioning of the
    originals) remain valid.  If no node exceeds the limit the input is
    returned unchanged (already physical).
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must allow a continuation slot (>= 2)")
    if all(network.fanout(n.node_id) <= max_fanout for n in network.nodes()):
        return network

    physical = SemanticNetwork()
    # Recreate all original nodes first so ids are preserved.
    for node in network.nodes():
        physical.add_node(node.name, node.color, node.function, node.parent_id)
    # Pre-register all relation names in original id order so relation
    # ids survive the rewrite.
    for name in network.relations:
        physical.relations.register(name)

    links_per_row = max_fanout - 1
    for node in network.nodes():
        out = network.outgoing(node.node_id)
        if len(out) <= max_fanout:
            for link in out:
                physical.add_link(
                    link.source,
                    network.relations.name_of(link.relation),
                    link.dest,
                    link.weight,
                )
            continue
        # Split: each row keeps links_per_row links + one continuation.
        rows: List[List[Link]] = [
            out[i: i + links_per_row]
            for i in range(0, len(out), links_per_row)
        ]
        current = node.node_id
        for row_index, row in enumerate(rows):
            last_row = row_index == len(rows) - 1
            for link in row:
                physical.add_link(
                    current,
                    network.relations.name_of(link.relation),
                    link.dest,
                    link.weight,
                )
            if not last_row:
                sub = physical.add_node(
                    f"{node.name}#{row_index + 1}",
                    Color.SUBNODE,
                    node.function,
                    parent_id=node.node_id,
                )
                physical.add_link(current, CONT_RELATION, sub.node_id)
                current = sub.node_id
    physical.validate()
    return physical


def logical_fanout(physical: SemanticNetwork, node_ref) -> int:
    """Fanout of a node counting through its continuation chain."""
    cont_id = physical.relations.get(CONT_RELATION)
    nid = physical.resolve(node_ref)
    count = 0
    while True:
        nxt = None
        for link in physical.outgoing(nid):
            if cont_id is not None and link.relation == cont_id:
                nxt = link.dest
            else:
                count += 1
        if nxt is None:
            return count
        nid = nxt


class KnowledgeBaseBuilder:
    """Fluent helper for authoring layered linguistic knowledge bases.

    Provides the vocabulary of Fig. 1: words in the lexical layer,
    syntactic and semantic classes in the middle, and concept sequences
    (root + ordered, constrained elements) at the top.
    """

    def __init__(self) -> None:
        self.network = SemanticNetwork()

    # -- middle layers --------------------------------------------------
    def add_class(
        self, name: str, parents: Iterable[str] = (), color: int = Color.SEMANTIC
    ) -> str:
        """Add a semantic/syntactic class with ``is-a`` links to parents."""
        self.network.ensure_node(name, color)
        for parent in parents:
            self.network.ensure_node(parent, color)
            self.network.add_link(name, "is-a", parent)
        return name

    def add_syntax_class(self, name: str, parents: Iterable[str] = ()) -> str:
        """Add a syntactic category (NP, VP, ...)."""
        return self.add_class(name, parents, color=Color.SYNTAX)

    # -- lexical layer ---------------------------------------------------
    def add_word(
        self,
        word: str,
        classes: Iterable[str],
        weight: float = 0.0,
    ) -> str:
        """Add a lexical node linked ``is-a`` to its classes.

        e.g. the word *we* connects to *animate* and *noun-phrase*.
        """
        name = f"w:{word}"
        self.network.ensure_node(name, Color.LEXICAL)
        for cls in classes:
            self.network.ensure_node(cls)
            self.network.add_link(name, "is-a", cls, weight)
        return name

    # -- concept sequences -------------------------------------------------
    def add_concept_sequence(
        self,
        name: str,
        elements: Iterable[Tuple[str, Iterable[str]]],
        auxiliary: bool = False,
        cost: float = 1.0,
    ) -> str:
        """Add a concept sequence: a root plus ordered constrained elements.

        ``elements`` is a sequence of ``(element_name, constraints)``
        pairs; constraints are class names each element must satisfy
        (e.g. the *experiencer* element of *seeing-event* must be
        ``animate`` and ``noun-phrase``).  The root links ``first`` to
        the first element; elements chain via ``next``; the final
        element links ``last`` back to the root (which is how the
        ``spread(is-a, last)`` rule of Fig. 5 reaches roots).
        """
        root_color = Color.CS_AUX if auxiliary else Color.CS_ROOT
        root = self.network.ensure_node(name, root_color)
        element_list = list(elements)
        if not element_list:
            raise ValueError(f"concept sequence {name!r} has no elements")
        previous = None
        for index, (el_name, constraints) in enumerate(element_list):
            full = f"{name}.{el_name}"
            self.network.ensure_node(full, Color.CS_ELEMENT)
            self.network.add_link(full, "element-of", root.node_id)
            for constraint in constraints:
                self.network.ensure_node(constraint)
                # Constraint classes point down to the elements they
                # license, so markers propagated up the is-a hierarchy
                # can be reflected onto candidate elements.
                self.network.add_link(constraint, "syntax-of", full)
                self.network.add_link(full, "is-a", constraint)
            if index == 0:
                self.network.add_link(root.node_id, "first", full, cost)
            if previous is not None:
                self.network.add_link(previous, "next", full, cost)
            previous = full
        self.network.add_link(previous, "last", root.node_id, cost)
        return name

    # -- properties (inheritance workloads) -------------------------------
    def add_property(self, owner: str, prop: str, weight: float = 1.0) -> str:
        """Attach a property node to a concept."""
        name = f"p:{prop}"
        self.network.ensure_node(name, Color.PROPERTY)
        self.network.ensure_node(owner)
        self.network.add_link(owner, "has-property", name, weight)
        return name

    def build(self, physical: bool = True) -> SemanticNetwork:
        """Finalize; optionally run the fanout pre-processor."""
        self.network.validate()
        if physical:
            return preprocess_fanout(self.network)
        return self.network
