"""The semantic network: nodes + typed weighted links.

This is the *logical* knowledge base authored by applications.  It
allows arbitrary fanout; the pre-processor in
:mod:`repro.network.builder` converts it to the machine's physical form
where every node holds at most :data:`~repro.network.node.MAX_FANOUT`
relation slots (splitting large nodes into subnode chains, paper
§II-B).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .node import Color, Link, Node, NodeError
from .relation import RelationRegistry

NodeRef = Union[int, str, Node]


class GraphError(ValueError):
    """Raised for malformed graph operations."""


class SemanticNetwork:
    """A directed multigraph of concepts and typed weighted relations.

    Node ids are dense integers assigned in creation order — they become
    the physical node-ID indexes of the machine tables.  Names are
    unique and resolvable in O(1).
    """

    def __init__(self) -> None:
        self.relations = RelationRegistry()
        self._nodes: List[Node] = []
        self._by_name: Dict[str, int] = {}
        self._out: List[List[Link]] = []
        self._in_degree: List[int] = []
        self._num_links = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        color: int = Color.GENERIC,
        function: int = 0,
        parent_id: Optional[int] = None,
    ) -> Node:
        """Create a node; names must be unique within the network."""
        if name in self._by_name:
            raise GraphError(f"duplicate node name: {name!r}")
        node = Node(len(self._nodes), name, color, function, parent_id)
        self._nodes.append(node)
        self._by_name[name] = node.node_id
        self._out.append([])
        self._in_degree.append(0)
        return node

    def add_link(
        self,
        source: NodeRef,
        relation: str,
        dest: NodeRef,
        weight: float = 0.0,
    ) -> Link:
        """Add a directed link; registers the relation name on demand."""
        src_id = self.resolve(source)
        dst_id = self.resolve(dest)
        rid = self.relations.register(relation)
        link = Link(src_id, rid, dst_id, weight)
        self._out[src_id].append(link)
        self._in_degree[dst_id] += 1
        self._num_links += 1
        return link

    def ensure_node(
        self, name: str, color: int = Color.GENERIC, function: int = 0
    ) -> Node:
        """Return the node named ``name``, creating it if absent."""
        nid = self._by_name.get(name)
        if nid is not None:
            return self._nodes[nid]
        return self.add_node(name, color, function)

    def remove_link(self, source: NodeRef, relation: str, dest: NodeRef) -> bool:
        """Remove the first matching link; return whether one existed.

        Supports the DELETE instruction of Table II.
        """
        src_id = self.resolve(source)
        dst_id = self.resolve(dest)
        rid = self.relations.get(relation)
        if rid is None:
            return False
        links = self._out[src_id]
        for i, link in enumerate(links):
            if link.relation == rid and link.dest == dst_id:
                del links[i]
                self._in_degree[dst_id] -= 1
                self._num_links -= 1
                return True
        return False

    def set_color(self, node: NodeRef, color: int) -> None:
        """Recolor a node (SET-COLOR instruction)."""
        nid = self.resolve(node)
        old = self._nodes[nid]
        self._nodes[nid] = Node(
            old.node_id, old.name, color, old.function, old.parent_id
        )

    def rename_node(self, node: NodeRef, new_name: str) -> Node:
        """Rename a node in place (id unchanged).

        Used by the controller's garbage collector to recycle result
        nodes: a reclaimed physical slot gets the next logical name.
        """
        nid = self.resolve(node)
        if new_name in self._by_name and self._by_name[new_name] != nid:
            raise GraphError(f"duplicate node name: {new_name!r}")
        old = self._nodes[nid]
        del self._by_name[old.name]
        self._by_name[new_name] = nid
        self._nodes[nid] = Node(
            nid, new_name, old.color, old.function, old.parent_id
        )
        return self._nodes[nid]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def resolve(self, ref: NodeRef) -> int:
        """Resolve a node reference (id, name, or Node) to its id."""
        if isinstance(ref, Node):
            return ref.node_id
        if isinstance(ref, int):
            if not 0 <= ref < len(self._nodes):
                raise GraphError(f"node id out of range: {ref}")
            return ref
        nid = self._by_name.get(ref)
        if nid is None:
            raise GraphError(f"unknown node: {ref!r}")
        return nid

    def node(self, ref: NodeRef) -> Node:
        """Return the :class:`Node` for a reference."""
        return self._nodes[self.resolve(ref)]

    def __contains__(self, ref: NodeRef) -> bool:
        if isinstance(ref, Node):
            ref = ref.node_id
        if isinstance(ref, int):
            return 0 <= ref < len(self._nodes)
        return ref in self._by_name

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of links."""
        return self._num_links

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes in id order."""
        return iter(self._nodes)

    def outgoing(self, node: NodeRef) -> List[Link]:
        """All outgoing links of a node."""
        return list(self._out[self.resolve(node)])

    def outgoing_by_relation(self, node: NodeRef, relation: str) -> List[Link]:
        """Outgoing links of a node with the given relation name."""
        rid = self.relations.get(relation)
        if rid is None:
            return []
        return [l for l in self._out[self.resolve(node)] if l.relation == rid]

    def fanout(self, node: NodeRef) -> int:
        """Number of outgoing relation slots the node requires."""
        return len(self._out[self.resolve(node)])

    def in_degree(self, node: NodeRef) -> int:
        """Number of incoming links."""
        return self._in_degree[self.resolve(node)]

    def nodes_with_color(self, color: int) -> List[Node]:
        """All nodes of a given color (SEARCH-COLOR support)."""
        return [n for n in self._nodes if n.color == color]

    def links(self) -> Iterator[Link]:
        """Iterate every link in the network."""
        for out in self._out:
            yield from out

    # ------------------------------------------------------------------
    # Validation / statistics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`GraphError` if broken."""
        if len(self._out) != len(self._nodes):
            raise GraphError("adjacency/node count mismatch")
        count = 0
        for nid, out in enumerate(self._out):
            for link in out:
                if link.source != nid:
                    raise GraphError(f"link source mismatch at node {nid}")
                if not 0 <= link.dest < len(self._nodes):
                    raise GraphError(f"dangling link from node {nid}")
                count += 1
        if count != self._num_links:
            raise GraphError("link count mismatch")

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the knowledge base."""
        fanouts = [len(out) for out in self._out]
        colors: Dict[int, int] = {}
        for n in self._nodes:
            colors[n.color] = colors.get(n.color, 0) + 1
        return {
            "nodes": self.num_nodes,
            "links": self.num_links,
            "max_fanout": max(fanouts) if fanouts else 0,
            "mean_fanout": (
                sum(fanouts) / len(fanouts) if fanouts else 0.0
            ),
            "relation_types": len(self.relations),
            "colors": len(colors),
        }

    def color_histogram(self) -> Dict[int, int]:
        """Node counts per color."""
        hist: Dict[int, int] = {}
        for n in self._nodes:
            hist[n.color] = hist.get(n.color, 0) + 1
        return hist
