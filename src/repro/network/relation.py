"""Relation types for semantic-network links.

SNAP-1 supports ``R = 64K`` distinct relation types (paper Fig. 4).  Each
relation is identified by a 16-bit type id; human-readable names are kept
in a registry so that knowledge bases can be authored symbolically while
the machine tables store compact integer ids.

The registry pre-defines the standard linguistic relations used by the
SNAP knowledge-base layers of Fig. 1: subsumption (``is-a``), concept
sequence ordering (``first``, ``next``, ``last``), case roles
(``agent``, ``object``, ``experiencer`` ...) and their inverses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: Maximum number of distinct relation types (16-bit field, paper Fig. 4).
MAX_RELATION_TYPES = 64 * 1024

#: Relations predefined by the linguistic knowledge-base layers (Fig. 1).
STANDARD_RELATIONS = (
    # Concept-type hierarchy.
    "is-a",
    "instance-of",
    # Concept sequence structure (root and ordered elements).
    "first",
    "next",
    "last",
    "root",
    "element-of",
    # Case roles / semantic constraints.
    "agent",
    "object",
    "experiencer",
    "recipient",
    "instrument",
    "location",
    "time",
    # Lexical layer attachment.
    "word-of",
    "syntax-of",
    # Auxiliary concept sequences (e.g. time-case).
    "aux",
    # Generic property attachment for inheritance workloads.
    "has-property",
    "part-of",
    # Marker-created bindings (MARKER-CREATE default relations).
    "binding",
    "binding-inverse",
    # Result / cancellation bookkeeping used by the NLU application.
    "cancels",
)


class RelationError(ValueError):
    """Raised for invalid relation registrations or lookups."""


@dataclass
class RelationRegistry:
    """Bidirectional mapping between relation names and 16-bit type ids.

    A registry instance is owned by a :class:`~repro.network.graph.
    SemanticNetwork`; ids are dense and assigned in registration order so
    that the machine's relation table can use them directly as packed
    integer fields.
    """

    _name_to_id: Dict[str, int] = field(default_factory=dict)
    _id_to_name: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in STANDARD_RELATIONS:
            self.register(name)

    def register(self, name: str) -> int:
        """Register ``name`` and return its type id (idempotent)."""
        if name in self._name_to_id:
            return self._name_to_id[name]
        if len(self._name_to_id) >= MAX_RELATION_TYPES:
            raise RelationError(
                f"relation type capacity exceeded ({MAX_RELATION_TYPES})"
            )
        rid = len(self._name_to_id)
        self._name_to_id[name] = rid
        self._id_to_name[rid] = name
        return rid

    def id_of(self, name: str) -> int:
        """Return the type id for ``name``; raise if unregistered."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise RelationError(f"unknown relation type: {name!r}") from None

    def name_of(self, rid: int) -> str:
        """Return the name for type id ``rid``; raise if unregistered."""
        try:
            return self._id_to_name[rid]
        except KeyError:
            raise RelationError(f"unknown relation id: {rid}") from None

    def get(self, name: str) -> Optional[int]:
        """Return the type id for ``name`` or ``None``."""
        return self._name_to_id.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._name_to_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self._name_to_id)

    def inverse_name(self, name: str) -> str:
        """Return the conventional inverse-relation name.

        SNAP programs frequently traverse relations in both directions
        (MARKER-CREATE installs forward and reverse relations).  The
        convention used throughout this codebase is an ``-of`` /
        ``inverse:`` pairing.
        """
        if name.startswith("inverse:"):
            return name[len("inverse:"):]
        return f"inverse:{name}"

    def register_inverse(self, name: str) -> int:
        """Register and return the id of ``name``'s inverse relation."""
        return self.register(self.inverse_name(name))
